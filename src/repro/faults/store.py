"""Faulty storage wrappers: inject a :class:`~repro.faults.plan.FaultPlan`
underneath the verified read paths.

Both wrappers sit at the *read seam* their clean counterparts expose
(``BlockFileReader._read_raw``, ``HeapFile._read_page_payloads``): the bytes
a read returns — not the stored data — are what the plan corrupts, so a
retry really does observe a clean re-read, exactly like a transient torn
read on real hardware.  Checksum verification and bounded retry live in the
clean classes; the wrappers only decide each attempt's fate and record the
injections into a shared :class:`~repro.obs.StorageMetrics`.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any

from ..storage.blockfile import BlockFileReader, BlockIndexEntry
from ..storage.columnar import ChunkRef
from ..storage.heapfile import HeapFile
from ..storage.index import IndexFileReader
from ..storage.retry import RetryPolicy, TransientReadError
from .plan import FaultDecision, FaultPlan

__all__ = [
    "corrupt_bytes",
    "chunk_fault_target",
    "FaultyBlockFileReader",
    "FaultyHeapFile",
    "FaultyIndexReader",
]


def chunk_fault_target(block_id: int, col: int) -> int:
    """The ``chunk``-unit target id addressing one column chunk of one block.

    Column codes are small (1..6 today, < 8 by construction), so packing as
    ``block_id * 8 + col`` keeps targets unique and stable across plans —
    a spec can pin "block 3's values chunk tears once" independently of how
    many columns the read prunes down to.
    """
    return int(block_id) * 8 + int(col)


def corrupt_bytes(payload: bytes, salt: int = 0) -> bytes:
    """Deterministically flip bytes of ``payload`` (a torn read).

    Flips one byte per 64-byte stripe, offset by ``salt`` so distinct
    attempts can tear differently.  Guaranteed to differ from the input for
    any non-empty payload, so a CRC32 check always catches it.
    """
    if not payload:
        return payload
    torn = bytearray(payload)
    for pos in range(salt % 64, len(torn), 64):
        torn[pos] ^= 0xA5
    if bytes(torn) == payload:  # pragma: no cover - 0xA5 flip always differs
        torn[0] ^= 0xFF
    return bytes(torn)


class _InjectorMixin:
    """Shared decide-and-act logic for the two faulty stores."""

    fault_plan: FaultPlan
    storage_stats: Any | None
    _sleep = staticmethod(time.sleep)

    def _apply_decision(
        self, decision: FaultDecision, unit: str, target: int
    ) -> bool:
        """Sleep/raise per the decision; returns True when bytes must be torn."""
        stats = self.storage_stats
        if decision.delay_s > 0:
            if stats is not None:
                stats.record_latency(decision.delay_s)
            self._sleep(decision.delay_s)
        if decision.crash:
            if stats is not None:
                stats.record_crash()
            self.fault_plan.fire_crash(f"{unit} {target} read")
        if decision.transient:
            raise TransientReadError(f"injected transient fault on {unit} {target}")
        return decision.corrupt


class FaultyBlockFileReader(_InjectorMixin, BlockFileReader):
    """A :class:`BlockFileReader` whose raw reads obey a fault plan.

    Defaults to a retry budget sized to the plan's worst case
    (``max_consecutive_failures + 1`` attempts, instant backoff), so a plan
    with only transient/torn faults is invisible above the reader.
    """

    def __init__(
        self,
        path: str | Path,
        plan: FaultPlan,
        retry: RetryPolicy | None = None,
        storage_stats: Any | None = None,
    ):
        if retry is None:
            retry = RetryPolicy(max_attempts=plan.max_consecutive_failures + 1)
        super().__init__(path, retry=retry, storage_stats=storage_stats)
        self.fault_plan = plan

    def _read_raw(self, entry: BlockIndexEntry, attempt: int) -> bytes:
        decision = self.fault_plan.decide("block", entry.block_id, attempt)
        tear = self._apply_decision(decision, "block", entry.block_id)
        buffer = super()._read_raw(entry, attempt)
        if tear:
            buffer = corrupt_bytes(buffer, salt=attempt)
        return buffer

    def _read_chunk_raw(self, entry: BlockIndexEntry, ref: ChunkRef, attempt: int) -> bytes:
        """Chunk-pruned columnar reads consult the plan per column chunk.

        A pruned read never touches the whole block, so the ``block`` unit
        would be the wrong granularity: plans address ``("chunk",
        chunk_fault_target(block_id, col))`` and can tear a single column's
        bytes while the others decode cleanly.
        """
        target = chunk_fault_target(entry.block_id, ref.col)
        decision = self.fault_plan.decide("chunk", target, attempt)
        tear = self._apply_decision(decision, "chunk", target)
        buffer = super()._read_chunk_raw(entry, ref, attempt)
        if tear:
            buffer = corrupt_bytes(buffer, salt=attempt)
        return buffer


class FaultyHeapFile(_InjectorMixin, HeapFile):
    """A fault-injecting *view* over an existing heap file.

    Shares the underlying pages and tuple directory with ``inner`` (no data
    copy); only the read path differs: page payload reads consult the fault
    plan, and checksum verification is switched on so torn reads surface as
    :class:`~repro.storage.retry.ChecksumError` instead of decoding garbage.
    Construct a :class:`~repro.storage.bufferpool.BufferPool` with a
    :class:`~repro.storage.retry.RetryPolicy` over it to get the full
    verified, retrying read stack.
    """

    def __init__(
        self,
        inner: HeapFile,
        plan: FaultPlan,
        storage_stats: Any | None = None,
    ):
        inner.flush()  # columnar heaps buffer appends; a view needs them paged
        super().__init__(
            inner.schema,
            page_bytes=inner.page_bytes,
            compress=inner.compress,
            layout=inner.layout,
        )
        # Alias (not copy) the inner heap's storage: the fault plane changes
        # what reads *return*, never what is stored.
        inner._ensure_refs()  # DML may have left the directory stale
        self.pages = inner.pages
        self._refs = inner._refs
        self.inner = inner
        self.fault_plan = plan
        self.storage_stats = storage_stats
        self.verify_checksums = True

    def _read_page_payloads(self, page_id: int, attempt: int = 1) -> list[bytes]:
        decision = self.fault_plan.decide("page", page_id, attempt)
        tear = self._apply_decision(decision, "page", page_id)
        payloads = super()._read_page_payloads(page_id, attempt)
        if tear and payloads:
            payloads = list(payloads)
            victim = page_id % len(payloads)
            payloads[victim] = corrupt_bytes(payloads[victim], salt=attempt)
        return payloads

    def recommended_retry(self) -> RetryPolicy:
        """A retry budget sized to this plan's worst consecutive failures."""
        return RetryPolicy(max_attempts=self.fault_plan.max_consecutive_failures + 1)


class FaultyIndexReader(_InjectorMixin, IndexFileReader):
    """An :class:`IndexFileReader` whose node reads obey a fault plan.

    Plans address ``("index_node", node_id)`` — one B+tree node per target,
    so a spec can tear exactly the leaf a range scan will walk through while
    the descent path above it reads clean.  Torn node bytes fail the
    per-node CRC (:class:`~repro.storage.retry.ChecksumError`), which the
    reader's retry policy absorbs by re-reading — same contract as block
    and heap-page faults.
    """

    def __init__(
        self,
        path,
        plan: FaultPlan,
        retry: RetryPolicy | None = None,
        storage_stats: Any | None = None,
    ):
        if retry is None:
            retry = RetryPolicy(max_attempts=plan.max_consecutive_failures + 1)
        super().__init__(path, retry=retry, storage_stats=storage_stats)
        self.fault_plan = plan

    def _read_node_raw(self, node_id: int, attempt: int = 1) -> bytes:
        decision = self.fault_plan.decide("index_node", node_id, attempt)
        tear = self._apply_decision(decision, "index_node", node_id)
        raw = super()._read_node_raw(node_id, attempt)
        if tear:
            raw = corrupt_bytes(raw, salt=attempt)
        return raw
