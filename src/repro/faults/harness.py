"""Wiring helpers: thread a fault plan through a whole training stack.

The fault plane's unit wrappers (:mod:`repro.faults.store`) inject at one
read seam each; real chaos scenarios need the *stack* built over them — a
catalog table whose buffer pool retries over a faulty heap, or a loader
whose ``CorgiPileDataset`` reads through a faulty block-file reader.  These
helpers do that plumbing in one call, and :func:`chaos_report` renders the
resulting counters for the CLI and the tests.
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path
from typing import Any, Callable

from ..obs import StorageMetrics
from ..storage.blockfile import BlockFileReader
from ..storage.retry import RetryPolicy
from .plan import FaultPlan
from .store import FaultyBlockFileReader, FaultyHeapFile

__all__ = ["faulty_reader_factory", "faulty_table", "chaos_report"]


def faulty_reader_factory(
    plan: FaultPlan,
    stats: StorageMetrics | None = None,
    retry: RetryPolicy | None = None,
) -> Callable[[str | Path], BlockFileReader]:
    """A ``reader_factory`` for :class:`~repro.core.dataset.CorgiPileDataset`.

    Every dataset view (one per loader worker) gets its own
    :class:`FaultyBlockFileReader` over the *shared* plan and stats, so
    multi-worker chaos runs keep one deterministic fault schedule and one
    aggregate counter set.
    """

    def factory(path: str | Path) -> BlockFileReader:
        return FaultyBlockFileReader(path, plan, retry=retry, storage_stats=stats)

    return factory


def faulty_table(
    table: Any,
    plan: FaultPlan,
    stats: StorageMetrics | None = None,
    retry: RetryPolicy | None = None,
) -> tuple[Any, StorageMetrics]:
    """Rebuild a catalog ``TableInfo`` over a fault-injecting heap.

    Returns ``(faulty_table, stats)``: the same logical table whose page
    reads now go FaultyHeapFile → checksum verify → BufferPool bounded
    retry.  The original table (and its heap pages) are untouched; swap the
    returned info into the catalog (or use ``MiniDB.inject_faults``) to run
    queries under the plan.
    """
    if stats is None:
        stats = StorageMetrics(f"{table.name}-faults")
    heap = FaultyHeapFile(table.heap, plan, storage_stats=stats)
    if retry is None:
        retry = heap.recommended_retry()
    pool = table.pool
    new_pool = type(pool)(
        heap,
        capacity_pages=pool.capacity_pages,
        retry=retry,
        storage_stats=stats,
    )
    return replace(table, heap=heap, pool=new_pool), stats


def chaos_report(stats: StorageMetrics | dict, plan: FaultPlan | None = None) -> dict:
    """One flat row of fault/retry counters (for ``format_table``).

    Accepts a live :class:`~repro.obs.StorageMetrics` or its ``as_dict()``
    snapshot — so the CLI can re-render a report from an exported metrics
    file without reconstructing the stats object.
    """
    d = stats.as_dict() if hasattr(stats, "as_dict") else dict(stats)
    row = {
        "store": d["name"],
        "attempts": d["read_attempts"],
        "ok": d["reads_ok"],
        "transient": d["transient_errors"],
        "checksum": d["checksum_failures"],
        "retries": d["retries"],
        "exhausted": d["exhausted_reads"],
        "latency(ms)": round(1e3 * d["latency_injected_s"], 3),
        "invalidated": d["cache_invalidations"],
        "crashes": d["crashes_injected"],
    }
    if plan is not None:
        row["plan"] = (
            f"seed={plan.seed} pT={plan.p_transient} pTorn={plan.p_torn} "
            f"pLat={plan.p_latency}"
        )
    return row
