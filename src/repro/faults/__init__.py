"""Deterministic fault injection for the storage and execution layers.

``repro.faults`` is the chaos plane of the reproduction: a seeded,
declarative :class:`FaultPlan` describes *exactly which* reads fail (and
how), wrapper stores (:class:`FaultyBlockFileReader`, :class:`FaultyHeapFile`)
inject those faults underneath the verified read paths, and the harness
helpers wire a plan through a whole training stack so the chaos tests and
``python -m repro chaos`` can assert two guarantees:

* **transparency** — transient faults are absorbed by checksums + bounded
  retries; the trained model is bit-identical to a fault-free run;
* **resumability** — a run killed mid-epoch resumes from its last
  checkpoint with the exact remaining visit order, so final weights match
  an uninterrupted run.
"""

from .plan import FaultDecision, FaultPlan, FaultSpec, InjectedCrash
from .store import (
    FaultyBlockFileReader,
    FaultyHeapFile,
    chunk_fault_target,
    corrupt_bytes,
)
from .harness import chaos_report, faulty_reader_factory, faulty_table

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "FaultDecision",
    "InjectedCrash",
    "FaultyBlockFileReader",
    "FaultyHeapFile",
    "chunk_fault_target",
    "corrupt_bytes",
    "faulty_reader_factory",
    "faulty_table",
    "chaos_report",
]
