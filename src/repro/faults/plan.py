"""Fault plans: seeded, declarative schedules of storage/execution faults.

A :class:`FaultPlan` answers one question for the storage wrappers: *what
happens to attempt ``a`` of a read of unit ``u`` (block/page) ``i``?* — and
one for the training loop: *after how many tuples does the process "die"?*

Two ways to build a plan:

* **explicit** — a list of :class:`FaultSpec` entries pinning faults to
  concrete reads ("page 3 fails its checksum once, starting from its second
  read"), used by regression tests that need a surgical fault;
* **random** — :meth:`FaultPlan.random` draws a fault schedule from a seed
  and per-unit probabilities.  Crucially the draw for a unit is a *pure
  function of ``(seed, unit, id)``*: the same plan produces the same fault
  schedule no matter how reads interleave across loader threads, which is
  what makes the chaos suite deterministic under real concurrency.

Faults come in four kinds:

* ``transient`` — the read attempt raises
  :class:`~repro.storage.retry.TransientReadError`;
* ``torn`` — the attempt returns corrupted bytes; the reader's checksum
  verification catches it and retries;
* ``latency`` — the read sleeps ``delay_s`` (spike injection);
* ``crash`` — an :class:`InjectedCrash` is raised, simulating a killed
  worker.  Read-level crashes fire on a specific read call; tuple-level
  crashes (``crash_at_tuple``) fire in the training loop after exactly N
  model updates, and fire *once* per plan so a resumed run survives.

``transient``/``torn`` specs bound their failing attempts (``times``), so a
retry budget of ``times + 1`` always succeeds — the invariant behind the
"retries are invisible" property test.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..core.seeding import FAULT_UNIT_CODES as _UNIT_CODES
from ..core.seeding import fault_unit_rng

__all__ = ["InjectedCrash", "FaultSpec", "FaultDecision", "FaultPlan"]

KINDS = ("transient", "torn", "latency", "crash")


class InjectedCrash(RuntimeError):
    """A simulated process kill (crash fault).

    Deliberately *not* an ``IOError``: the storage retry loop only retries
    :class:`~repro.storage.retry.RetryableIOError`, so a crash always
    propagates — through retry loops, prefetch threads, and operators —
    exactly like a real ``kill -9`` would end the epoch.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One pinned fault: *what* happens to *which* reads of *which* unit.

    ``times`` bounds how many consecutive attempts fail (transient/torn);
    ``from_read`` selects which read *call* of the unit the fault starts on
    (1-based), so a test can let a page be read cleanly (and cached) before
    the fault window opens — the stale-cache regression scenario.
    """

    kind: str
    unit: str = "block"
    target: int = 0
    times: int = 1
    delay_s: float = 0.0
    from_read: int = 1

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; one of {KINDS}")
        if self.unit not in _UNIT_CODES:
            raise ValueError(f"unknown unit {self.unit!r}; one of {tuple(_UNIT_CODES)}")
        if self.times < 1:
            raise ValueError("times must be at least 1")
        if self.from_read < 1:
            raise ValueError("from_read is 1-based")
        if self.delay_s < 0:
            raise ValueError("delay_s must be non-negative")


@dataclass(frozen=True)
class FaultDecision:
    """The plan's verdict for one read attempt."""

    transient: bool = False
    corrupt: bool = False
    crash: bool = False
    delay_s: float = 0.0

    @property
    def clean(self) -> bool:
        return not (self.transient or self.corrupt or self.crash or self.delay_s)


@dataclass
class _UnitDraw:
    """The random fault schedule of one (unit, id): drawn once, pure."""

    transient_fails: int = 0
    torn_fails: int = 0
    delay_s: float = 0.0


class FaultPlan:
    """A seeded, declarative schedule of faults.

    Thread-safe: the random side is a pure function of ``(seed, unit, id)``
    (memoised under a lock), and the per-unit read-call counters used by
    explicit ``from_read`` specs are lock-protected.
    """

    def __init__(
        self,
        seed: int = 0,
        specs: list[FaultSpec] | None = None,
        *,
        p_transient: float = 0.0,
        p_torn: float = 0.0,
        p_latency: float = 0.0,
        latency_s: float = 0.0,
        max_failures: int = 2,
        crash_at_tuple: int | None = None,
    ):
        for name, p in (("p_transient", p_transient), ("p_torn", p_torn), ("p_latency", p_latency)):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if max_failures < 1:
            raise ValueError("max_failures must be at least 1")
        if latency_s < 0:
            raise ValueError("latency_s must be non-negative")
        if crash_at_tuple is not None and crash_at_tuple < 0:
            raise ValueError("crash_at_tuple must be non-negative")
        self.seed = int(seed)
        self.specs = list(specs or [])
        self.p_transient = float(p_transient)
        self.p_torn = float(p_torn)
        self.p_latency = float(p_latency)
        self.latency_s = float(latency_s)
        self.max_failures = int(max_failures)
        self.crash_at_tuple = crash_at_tuple if crash_at_tuple is None else int(crash_at_tuple)
        self._lock = threading.Lock()
        self._draws: dict[tuple[str, int], _UnitDraw] = {}
        self._read_calls: dict[tuple[str, int], int] = {}
        self._crash_fired = False

    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Pickle support: drop the lock, keep schedule + latch state.

        The multi-process engine ships plans to spawned workers; random
        draws are pure functions of ``(seed, unit, id)`` so the memo cache
        travels harmlessly (it would be re-derived identically anyway).
        """
        with self._lock:
            state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    @classmethod
    def random(
        cls,
        seed: int,
        *,
        p_transient: float = 0.2,
        p_torn: float = 0.0,
        p_latency: float = 0.0,
        latency_s: float = 0.0002,
        max_failures: int = 2,
        crash_at_tuple: int | None = None,
    ) -> "FaultPlan":
        """A purely random plan (no pinned specs) from probabilities."""
        return cls(
            seed,
            p_transient=p_transient,
            p_torn=p_torn,
            p_latency=p_latency,
            latency_s=latency_s,
            max_failures=max_failures,
            crash_at_tuple=crash_at_tuple,
        )

    @property
    def transient_only(self) -> bool:
        """True when every possible fault is invisible under retry.

        Transient errors, torn reads (caught by checksum), and latency
        spikes are all absorbed; crashes are not.
        """
        return self.crash_at_tuple is None and not any(s.kind == "crash" for s in self.specs)

    @property
    def max_consecutive_failures(self) -> int:
        """Worst-case failing attempts for any single read under this plan.

        A random draw can stack transient failures *followed by* torn reads
        on the same unit, so the random side budgets ``max_failures`` per
        enabled fault family, not overall.
        """
        pinned = max((s.times for s in self.specs if s.kind in ("transient", "torn")), default=0)
        families = (self.p_transient > 0) + (self.p_torn > 0)
        return max(pinned, self.max_failures * families)

    # ------------------------------------------------------------------
    def _draw(self, unit: str, target: int) -> _UnitDraw:
        key = (unit, int(target))
        with self._lock:
            cached = self._draws.get(key)
            if cached is not None:
                return cached
        rng = fault_unit_rng(self.seed, unit, int(target))
        # One uniform per fault family keeps the stream layout stable as
        # probabilities change (the same seed afflicts the same units).
        u_transient, u_torn, u_latency, u_count = rng.random(4)
        draw = _UnitDraw()
        n_fails = 1 + int(u_count * self.max_failures) if self.max_failures > 1 else 1
        if u_transient < self.p_transient:
            draw.transient_fails = min(n_fails, self.max_failures)
        if u_torn < self.p_torn:
            draw.torn_fails = min(n_fails, self.max_failures)
        if u_latency < self.p_latency:
            draw.delay_s = self.latency_s
        with self._lock:
            return self._draws.setdefault(key, draw)

    def _spec_window(self, spec: FaultSpec, read_call: int, attempt: int) -> bool:
        if read_call < spec.from_read:
            return False
        if spec.kind == "latency":
            return True
        if spec.kind == "crash":
            return read_call == spec.from_read
        # transient / torn: fail attempts 1..times of every read in the window
        return attempt <= spec.times

    def decide(self, unit: str, target: int, attempt: int) -> FaultDecision:
        """The fate of ``attempt`` (1-based) of the current read of a unit.

        The first attempt of a read advances the unit's read-call counter;
        retries (attempt > 1) belong to the same read call.
        """
        if unit not in _UNIT_CODES:
            raise ValueError(f"unknown unit {unit!r}")
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        key = (unit, int(target))
        with self._lock:
            if attempt == 1:
                self._read_calls[key] = self._read_calls.get(key, 0) + 1
            read_call = self._read_calls.get(key, 1)

        transient = corrupt = crash = False
        delay = 0.0
        for spec in self.specs:
            if spec.unit != unit or spec.target != int(target):
                continue
            if not self._spec_window(spec, read_call, attempt):
                continue
            if spec.kind == "transient":
                transient = True
            elif spec.kind == "torn":
                corrupt = True
            elif spec.kind == "latency":
                delay = max(delay, spec.delay_s)
            elif spec.kind == "crash":
                crash = True

        draw = self._draw(unit, target)
        # Random transient failures come first, then torn ones: attempt
        # 1..t raises, t+1..t+k corrupts, t+k+1.. is clean.
        if attempt <= draw.transient_fails:
            transient = True
        elif attempt <= draw.transient_fails + draw.torn_fails:
            corrupt = True
        if draw.delay_s and attempt == 1:
            delay = max(delay, draw.delay_s)
        return FaultDecision(transient=transient, corrupt=corrupt, crash=crash, delay_s=delay)

    # -- execution-side crash scheduling ---------------------------------
    def tuples_before_crash(self, tuples_done: int) -> int | None:
        """How many more tuples may be processed before the crash fires.

        ``None`` means no crash is scheduled (or it already fired — a plan
        crashes at most once, so a resumed run under the same plan
        survives).  ``0`` means the crash is due immediately.
        """
        with self._lock:
            if self.crash_at_tuple is None or self._crash_fired:
                return None
            return max(0, self.crash_at_tuple - int(tuples_done))

    def fire_crash(self, where: str = "training loop") -> None:
        """Raise the scheduled :class:`InjectedCrash` (once)."""
        with self._lock:
            self._crash_fired = True
        raise InjectedCrash(f"injected crash in {where} at tuple {self.crash_at_tuple}")

    def reset(self) -> None:
        """Forget read-call counters and the crash latch (fresh run)."""
        with self._lock:
            self._read_calls.clear()
            self._crash_fired = False

    def describe(self) -> dict:
        """A JSON-able summary (used by ``python -m repro chaos``)."""
        return {
            "seed": self.seed,
            "p_transient": self.p_transient,
            "p_torn": self.p_torn,
            "p_latency": self.p_latency,
            "latency_s": self.latency_s,
            "max_failures": self.max_failures,
            "crash_at_tuple": self.crash_at_tuple,
            "specs": len(self.specs),
            "transient_only": self.transient_only,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"{k}={v}" for k, v in self.describe().items())
        return f"FaultPlan({body})"
