"""Figure 9 — text classification on the clustered yelp-like corpus.

HAN/TextCNN on yelp-review-full becomes an MLP over sparse bag-of-words
documents in 5 classes.  Paper shape: No Shuffle ≈ 20 % (chance for 5
classes), Sliding Window ≈ 40 %, MRS in between, CorgiPile ≈ Shuffle Once.
"""

from __future__ import annotations

from conftest import report_table

from repro.bench import run_convergence_sweep
from repro.data import DATASETS, clustered_by_label
from repro.ml import MLPClassifier

STRATEGIES = ("shuffle_once", "corgipile", "mrs", "sliding_window", "no_shuffle")


def test_fig09_text_classification(benchmark):
    train, test = DATASETS["yelp-like"].build_split(seed=0)
    clustered = clustered_by_label(train, seed=0)

    def run():
        return run_convergence_sweep(
            clustered,
            test,
            lambda: MLPClassifier(train.n_features, 24, train.n_classes, seed=0),
            STRATEGIES,
            epochs=10,
            learning_rate=0.1,
            tuples_per_block=30,
            batch_size=16,
            seed=1,
            dataset_name="yelp-like-clustered",
        )

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    report_table(sweep.rows(), title="Figure 9: MLP on clustered yelp-like", json_name="fig09.json")

    scores = sweep.final_scores()
    assert abs(scores["corgipile"] - scores["shuffle_once"]) < 0.06
    # No Shuffle hovers near 5-class chance.
    assert scores["no_shuffle"] < 0.6
    assert scores["sliding_window"] < scores["shuffle_once"] - 0.08
    assert scores["mrs"] < scores["shuffle_once"] - 0.08
    assert scores["no_shuffle"] <= scores["sliding_window"]
