"""Figure 2 — convergence of all five baseline strategies on clustered vs
shuffled data, for a GLM (criteo-like) and a deep model (cifar-like).

Shape: on shuffled data every strategy converges alike; on clustered data
Shuffle Once ≈ Epoch Shuffle at the top, No Shuffle at the bottom, the
partial shuffles in between.
"""

from __future__ import annotations

from conftest import TUPLES_PER_BLOCK, emit, report_table

from repro.bench import format_curve, run_convergence_sweep
from repro.data import DATASETS, clustered_by_label
from repro.ml import LogisticRegression, MLPClassifier

STRATEGIES = ("epoch_shuffle", "shuffle_once", "no_shuffle", "sliding_window", "mrs")


def test_fig02_glm_clustered_vs_shuffled(benchmark, glm_problems):
    clustered, test = glm_problems["criteo"]
    shuffled = clustered.shuffled(seed=7)

    def run():
        sweeps = {}
        for label, train in (("clustered", clustered), ("shuffled", shuffled)):
            sweeps[label] = run_convergence_sweep(
                train,
                test,
                lambda: LogisticRegression(train.n_features),
                STRATEGIES,
                epochs=10,
                learning_rate=0.05,
                tuples_per_block=TUPLES_PER_BLOCK,
                seed=1,
                dataset_name=f"criteo-{label}",
            )
        return sweeps

    sweeps = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [r for sweep in sweeps.values() for r in sweep.rows()]
    report_table(rows, title="Figure 2 (GLM): LR on criteo-like", json_name="fig02_glm.json")
    for label, sweep in sweeps.items():
        emit(f"  [{label}]")
        for name, history in sweep.histories.items():
            emit(format_curve(name, history.test_scores))

    clustered_scores = sweeps["clustered"].final_scores()
    shuffled_scores = sweeps["shuffled"].final_scores()
    # Shuffled data: all strategies comparable.
    spread = max(shuffled_scores.values()) - min(shuffled_scores.values())
    assert spread < 0.06, f"on shuffled data all strategies should agree, spread={spread}"
    # Clustered data: the paper's ordering.
    assert clustered_scores["no_shuffle"] < clustered_scores["shuffle_once"] - 0.05
    assert clustered_scores["sliding_window"] < clustered_scores["shuffle_once"] - 0.02
    assert abs(clustered_scores["epoch_shuffle"] - clustered_scores["shuffle_once"]) < 0.04


def test_fig02_deep_model_clustered(benchmark):
    spec = DATASETS["cifar10-like"]
    train, test = spec.build_split(seed=0)
    clustered = clustered_by_label(train, seed=0)

    def run():
        return run_convergence_sweep(
            clustered,
            test,
            lambda: MLPClassifier(train.n_features, 32, train.n_classes, seed=0),
            ("shuffle_once", "no_shuffle", "sliding_window", "mrs"),
            epochs=12,
            learning_rate=0.1,
            tuples_per_block=TUPLES_PER_BLOCK // 2,
            batch_size=16,
            seed=1,
            dataset_name="cifar10-like-clustered",
        )

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    report_table(sweep.rows(), title="Figure 2 (DL): MLP on cifar-like", json_name="fig02_dl.json")

    scores = sweep.final_scores()
    assert scores["no_shuffle"] < scores["shuffle_once"] - 0.15
    assert scores["sliding_window"] < scores["shuffle_once"] - 0.05
    assert scores["mrs"] < scores["shuffle_once"] - 0.05
