"""Figure 14 — sensitivity to buffer size (a) and block size (b).

(a) CorgiPile with 1 %, 2 %, 5 % buffers vs Shuffle Once on the two largest
datasets: a 2 % buffer already matches Shuffle Once; 1 % converges slightly
slower but to the same accuracy.
(b) Per-epoch time falls as the block size grows (higher effective I/O
throughput) and flattens once blocks amortise the access latency (the
paper's 10 MB point; scaled here).
"""

from __future__ import annotations

from conftest import TUPLES_PER_BLOCK, report_table

from repro.bench import run_convergence_sweep
from repro.core import CorgiPileShuffle
from repro.db import run_in_db_system
from repro.ml import ExponentialDecay, LogisticRegression, Trainer
from repro.storage import HDD_SCALED

BUFFERS = (0.01, 0.02, 0.05)
BLOCK_SIZES = (2 * 1024, 8 * 1024, 32 * 1024)  # scaled 2 MB / 10 MB / 50 MB


def test_fig14a_buffer_size(benchmark, glm_problems):
    def run():
        rows = []
        for dataset in ("criteo", "yfcc"):
            train, test = glm_problems[dataset]
            layout = train.layout(max(10, train.n_tuples // 200))
            once = run_convergence_sweep(
                train, test, lambda: LogisticRegression(train.n_features),
                ("shuffle_once",), epochs=12, learning_rate=0.05,
                tuples_per_block=layout.tuples_per_block, seed=6,
            ).converged_scores()["shuffle_once"]
            for fraction in BUFFERS:
                cp = CorgiPileShuffle.from_buffer_fraction(layout, fraction, seed=6)
                history = Trainer(
                    LogisticRegression(train.n_features), train, cp,
                    epochs=12, schedule=ExponentialDecay(0.05), test=test,
                ).run()
                rows.append(
                    {
                        "dataset": dataset,
                        "buffer": f"{fraction:.0%}",
                        "corgipile_acc": round(history.converged_test_score(), 4),
                        "shuffle_once_acc": round(once, 4),
                        "gap": round(history.converged_test_score() - once, 4),
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report_table(rows, title="Figure 14(a): buffer-size sensitivity", json_name="fig14a.json")

    for row in rows:
        # Even the 1 % buffer lands within a few points of Shuffle Once...
        assert row["gap"] > -0.05, row
    # ...and 2 %+ buffers are statistically indistinguishable.
    for row in rows:
        if row["buffer"] in ("2%", "5%"):
            assert abs(row["gap"]) < 0.04, row


def test_fig14b_block_size(benchmark, glm_problems):
    train, test = glm_problems["criteo"]

    def run():
        rows = []
        for block_bytes in BLOCK_SIZES:
            result = run_in_db_system(
                "corgipile", "corgipile", train, test, "svm", HDD_SCALED,
                epochs=2, block_size=block_bytes, seed=0,
            )
            first_epoch = result.timeline.points[0].time_s - result.timeline.setup_s
            rows.append(
                {
                    "block_size": f"{block_bytes // 1024}KB (scaled {block_bytes // 1024 // 2}0MB-ish)",
                    "cold_epoch_s": round(first_epoch, 5),
                    "io_s": round(result.resources.io_seconds, 5),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report_table(rows, title="Figure 14(b): block-size sweep", json_name="fig14b.json")

    cold = [r["cold_epoch_s"] for r in rows]
    # Time falls (or stays flat) as blocks grow...
    assert cold[0] >= cold[1] >= cold[2] * 0.95
    # ...but the 10MB-equivalent already achieves most of the gain: the
    # further improvement to 50MB-equivalent is small (paper: under 10%).
    assert (cold[1] - cold[2]) / cold[1] < 0.15
