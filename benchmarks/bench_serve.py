#!/usr/bin/env python
"""Throughput bench for the multi-client training daemon.

Boots a real :class:`repro.serve.ReproServer` in-process, drives it with
concurrent :class:`repro.serve.ReproClient` connections, and measures:

* **statement throughput** — inline SELECTs per second at 1 and 4
  concurrent sessions (protocol + dispatch overhead);
* **job throughput** — TRAIN jobs per second through the bounded queue at
  1 and 2 job workers, with queue-wait percentiles from the live
  ``serve.queue.wait_s`` histogram;
* **admission control** — rejected submissions per second against a
  deliberately saturated one-slot queue (the daemon must answer fast with
  ``retry_after_s`` rather than hang).

Results go to ``benchmarks/results/bench_serve.json`` plus the repo-root
``BENCH_serve.json`` snapshot that travels with the PR.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py --quick          # default
    PYTHONPATH=src python benchmarks/bench_serve.py --full
    PYTHONPATH=src python benchmarks/bench_serve.py --quick --check  # CI gate

``--check`` exits non-zero if inline SELECT throughput falls below 50
statements/s or any TRAIN job fails.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import obs  # noqa: E402
from repro.serve import ReproClient, ReproServer, SaturatedError  # noqa: E402

RESULTS_PATH = Path(__file__).resolve().parent / "results" / "bench_serve.json"
SNAPSHOT_PATH = REPO_ROOT / "BENCH_serve.json"

TRAIN_SQL = (
    "SELECT * FROM susy TRAIN BY lr "
    "WITH max_epoch_num = 2, block_size = 16KB, buffer_fraction = 0.2"
)
SLOW_TRAIN_SQL = TRAIN_SQL.replace("max_epoch_num = 2", "max_epoch_num = 300")


def _sessions(server, n):
    return [ReproClient(server.host, server.port) for _ in range(n)]


def bench_statements(server, n_sessions: int, statements_per_session: int) -> dict:
    """Inline SELECT round-trips per second across concurrent sessions."""
    clients = _sessions(server, n_sessions)
    try:
        for c in clients:
            c.load("susy", table="t")
        barrier = threading.Barrier(n_sessions + 1)
        walls = [0.0] * n_sessions

        def run(i: int) -> None:
            c = clients[i]
            barrier.wait()
            t0 = time.perf_counter()
            for _ in range(statements_per_session):
                c.sql("SELECT * FROM t LIMIT 5")
            walls[i] = time.perf_counter() - t0

        threads = [
            threading.Thread(target=run, args=(i,)) for i in range(n_sessions)
        ]
        for t in threads:
            t.start()
        barrier.wait()
        t0 = time.perf_counter()
        for t in threads:
            t.join()
        wall = time.perf_counter() - t0
        total = n_sessions * statements_per_session
        return {
            "sessions": n_sessions,
            "statements": total,
            "wall_s": round(wall, 4),
            "statements_per_s": round(total / wall, 1),
            "mean_latency_ms": round(1000 * sum(walls) / total, 3),
        }
    finally:
        for c in clients:
            c.close()


def bench_jobs(server, n_sessions: int, jobs_per_session: int) -> dict:
    """End-to-end TRAIN jobs per second (submit -> done), queue waits."""
    clients = _sessions(server, n_sessions)
    try:
        for c in clients:
            c.load("susy", table="susy")
        t0 = time.perf_counter()
        ids = [
            [c.submit(TRAIN_SQL, retries=100) for _ in range(jobs_per_session)]
            for c in clients
        ]
        finals = [
            c.wait(job_id, timeout=600)
            for c, session_ids in zip(clients, ids)
            for job_id in session_ids
        ]
        wall = time.perf_counter() - t0
        states = sorted({f["state"] for f in finals})
        waits = obs.get_registry().histogram("serve.queue.wait_s") or {}
        total = n_sessions * jobs_per_session
        return {
            "sessions": n_sessions,
            "job_workers": server.jobs.n_workers,
            "jobs": total,
            "states": states,
            "wall_s": round(wall, 4),
            "jobs_per_s": round(total / wall, 2),
            "queue_wait_p50_s": round(waits.get("p50", 0.0), 4),
            "queue_wait_p95_s": round(waits.get("p95", 0.0), 4),
        }
    finally:
        for c in clients:
            c.close()


def bench_saturation(data_dir: Path, probes: int) -> dict:
    """Rejection latency against a full one-slot queue."""
    server = ReproServer(data_dir, job_workers=1, max_queued=1).start()
    try:
        with ReproClient(server.host, server.port) as c:
            c.load("susy")
            running = c.submit(SLOW_TRAIN_SQL)
            while c.status(running)["state"] == "queued":
                time.sleep(0.01)
            queued = c.submit(SLOW_TRAIN_SQL)
            rejected = 0
            retry_hints = []
            t0 = time.perf_counter()
            for _ in range(probes):
                try:
                    c.submit(SLOW_TRAIN_SQL)
                except SaturatedError as exc:
                    rejected += 1
                    retry_hints.append(exc.retry_after_s)
            wall = time.perf_counter() - t0
            c.cancel(queued)
            c.cancel(running)
            return {
                "probes": probes,
                "rejected": rejected,
                "wall_s": round(wall, 4),
                "rejections_per_s": round(rejected / wall, 1),
                "mean_retry_after_s": round(
                    sum(retry_hints) / max(1, len(retry_hints)), 3
                ),
            }
    finally:
        server.stop()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--quick", action="store_true", default=True,
        help="small workload, seconds to run (default)",
    )
    mode.add_argument(
        "--full", action="store_true",
        help="more statements/jobs for more stable numbers",
    )
    parser.add_argument("--seed", type=int, default=0, help="RNG seed (default 0)")
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero below 50 SELECT/s or on any failed TRAIN job",
    )
    parser.add_argument(
        "--no-snapshot", action="store_true",
        help="skip writing the repo-root BENCH_serve.json",
    )
    args = parser.parse_args(argv)

    statements = 200 if args.full else 50
    jobs = 4 if args.full else 2
    probes = 200 if args.full else 50

    obs.reset()
    results: dict = {
        "bench": "serve",
        "mode": "full" if args.full else "quick",
        "seed": args.seed,
    }
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        server = ReproServer(tmp / "a", job_workers=2, max_queued=16).start()
        try:
            results["statements_1_session"] = bench_statements(server, 1, statements)
            results["statements_4_sessions"] = bench_statements(server, 4, statements)
            results["jobs_1_session"] = bench_jobs(server, 1, jobs)
            results["jobs_2_sessions"] = bench_jobs(server, 2, jobs)
        finally:
            server.stop()
        obs.reset()
        results["saturation"] = bench_saturation(tmp / "b", probes)

    for name in (
        "statements_1_session",
        "statements_4_sessions",
        "jobs_1_session",
        "jobs_2_sessions",
        "saturation",
    ):
        print(f"{name}: {json.dumps(results[name])}")

    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {RESULTS_PATH}")
    if not args.no_snapshot:
        SNAPSHOT_PATH.write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {SNAPSHOT_PATH}")

    if args.check:
        failures = []
        if results["statements_4_sessions"]["statements_per_s"] < 50:
            failures.append("inline SELECT throughput below 50/s")
        for key in ("jobs_1_session", "jobs_2_sessions"):
            if results[key]["states"] != ["done"]:
                failures.append(f"{key} has non-done jobs: {results[key]['states']}")
        if results["saturation"]["rejected"] != results["saturation"]["probes"]:
            failures.append("saturated queue accepted a probe")
        if failures:
            print("CHECK FAILED: " + "; ".join(failures))
            return 1
        print("check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
