"""Table 1 — the measured summary of all shuffling strategies.

The paper's Table 1 is qualitative; here each cell is *measured*:
convergence behaviour from a clustered-higgs LR run, I/O efficiency as
epoch trace time relative to No Shuffle on the scaled HDD, buffer/extra-disk
from the strategy traits and traces.
"""

from __future__ import annotations

from conftest import TUPLES_PER_BLOCK, report_table

from repro.bench import run_convergence_sweep
from repro.ml import LogisticRegression
from repro.shuffle import make_strategy
from repro.storage import HDD_SCALED

STRATEGIES = (
    "no_shuffle",
    "epoch_shuffle",
    "shuffle_once",
    "mrs",
    "sliding_window",
    "corgipile",
)


def test_tab01_summary(benchmark, glm_problems):
    train, test = glm_problems["higgs"]
    layout = train.layout(TUPLES_PER_BLOCK)
    tuple_bytes = 8.0 * train.n_features + 20

    def run():
        return run_convergence_sweep(
            train,
            test,
            lambda: LogisticRegression(train.n_features),
            STRATEGIES,
            epochs=10,
            learning_rate=0.05,
            tuples_per_block=TUPLES_PER_BLOCK,
            seed=2,
        )

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)

    base_epoch_io = make_strategy("no_shuffle", layout).epoch_trace(tuple_bytes).time_on(HDD_SCALED)
    rows = []
    for name in STRATEGIES:
        strategy = make_strategy(name, layout, buffer_fraction=0.1, seed=2)
        epoch_io = strategy.epoch_trace(tuple_bytes).time_on(HDD_SCALED)
        setup_io = strategy.setup_trace(tuple_bytes).time_on(HDD_SCALED)
        rows.append(
            {
                "strategy": name,
                "final_acc": round(sweep.final_scores()[name], 4),
                "epoch_io_vs_noshuffle": round(epoch_io / base_epoch_io, 2),
                "setup_io_s": round(setup_io, 4),
                "needs_buffer": strategy.traits.needs_buffer,
                "extra_disk": f"{strategy.traits.extra_disk_copies + 1}x data size"
                if strategy.traits.extra_disk_copies
                else "no",
            }
        )
    report_table(rows, title="Table 1 (measured)", json_name="tab01.json")

    by_name = {r["strategy"]: r for r in rows}
    scores = sweep.final_scores()
    # Convergence column: No Shuffle low; Once/Epoch/CorgiPile high.
    assert scores["no_shuffle"] < scores["shuffle_once"] - 0.05
    assert abs(scores["corgipile"] - scores["shuffle_once"]) < 0.05
    assert abs(scores["epoch_shuffle"] - scores["shuffle_once"]) < 0.04
    # I/O column: every "fast" strategy within 2x of No Shuffle's epoch I/O;
    # Epoch Shuffle pays the sort every epoch.
    for name in ("sliding_window", "mrs", "corgipile"):
        assert by_name[name]["epoch_io_vs_noshuffle"] < 2.0
    assert by_name["epoch_shuffle"]["epoch_io_vs_noshuffle"] > 3.0
    # Disk column: only Once/Epoch need the 2x copy.
    assert by_name["shuffle_once"]["extra_disk"] == "2x data size"
    assert by_name["corgipile"]["extra_disk"] == "no"
    # Setup column: only Shuffle Once pays a one-time cost.
    assert by_name["shuffle_once"]["setup_io_s"] > 0
    assert by_name["corgipile"]["setup_io_s"] == 0
