"""Figure 20 (Appendix A) — random-block throughput vs block size.

Random tuple-level access is orders of magnitude slower than sequential
scanning, but random block access approaches sequential bandwidth once
blocks reach ~10 MB on both device models.  This bench also measures the
real CPU cost of CorgiPile's index generation as the block size varies.
"""

from __future__ import annotations

from conftest import report_table

from repro.core import CorgiPileShuffle
from repro.data import BlockLayout
from repro.storage import HDD, SSD, random_vs_sequential_curve

BLOCK_SIZES = [4 * 1024, 64 * 1024, 1024**2, 10 * 1024**2, 100 * 1024**2]


def test_fig20_random_vs_sequential(benchmark):
    def run():
        rows = []
        for device in (HDD, SSD):
            rows.extend(random_vs_sequential_curve(device, BLOCK_SIZES))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    printable = [
        {
            "device": r["device"],
            "block": f"{int(r['block_bytes']) // 1024}KB",
            "random MB/s": round(r["random_mb_per_s"], 2),
            "seq MB/s": round(r["sequential_mb_per_s"], 1),
            "ratio": round(r["ratio"], 3),
        }
        for r in rows
    ]
    report_table(printable, title="Figure 20: random vs sequential throughput", json_name="fig20.json")

    for device_rows in (rows[: len(BLOCK_SIZES)], rows[len(BLOCK_SIZES) :]):
        ratios = [r["ratio"] for r in device_rows]
        # Monotone in block size; tiny blocks catastrophic; 10 MB blocks
        # within ~15 % of sequential; 100 MB essentially equal.
        assert ratios == sorted(ratios)
        assert ratios[0] < 0.31
        assert ratios[3] > 0.85
        assert ratios[4] > 0.98


def test_fig20_shuffle_cpu_cost(benchmark):
    """Real (measured) CPU cost of one CorgiPile epoch's index generation."""
    layout = BlockLayout(100_000, 100)
    cp = CorgiPileShuffle(layout, buffer_blocks=100, seed=0)

    order = benchmark(lambda: cp.epoch_indices(0))
    assert order.size == 100_000
