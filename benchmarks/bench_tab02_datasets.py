"""Table 2 — the dataset inventory (scaled stand-ins vs paper originals)."""

from __future__ import annotations

from conftest import report_table

from repro.data import DATASETS, load


def test_tab02_dataset_registry(benchmark):
    datasets = benchmark.pedantic(
        lambda: {name: load(name, seed=0) for name in DATASETS},
        rounds=1,
        iterations=1,
    )
    rows = []
    for name, spec in DATASETS.items():
        ds = datasets[name]
        rows.append(
            {
                "name": name,
                "type": spec.kind,
                "tuples (scaled)": ds.n_tuples,
                "features (scaled)": ds.n_features,
                "paper tuples": spec.paper_tuples,
                "paper features": spec.paper_features,
                "paper size": spec.paper_size,
            }
        )
    report_table(rows, title="Table 2: datasets", json_name="tab02.json")

    assert len(rows) >= 8
    # Structural spot checks mirroring the paper's table.
    by_name = {r["name"]: r for r in rows}
    assert by_name["criteo"]["type"] == "sparse"
    assert by_name["higgs"]["paper size"] == "2.8 GB"
    assert datasets["criteo"].is_sparse and not datasets["higgs"].is_sparse
    assert datasets["yelp-like"].n_classes == 5
    assert datasets["yearpred-like"].task == "regression"
