"""Ablations beyond the paper's figures (design choices called out in
DESIGN.md and the text):

* **Sampled vs full-pass CorgiPile** — Algorithm 1 literally samples only
  ``n`` blocks per epoch; the deployed integrations stream all blocks
  buffer-by-buffer.  At equal *tuples processed*, both modes should reach
  comparable accuracy (the theory analyses the sampled mode; the systems
  ship the full pass).
* **Tuple-level shuffle ablation at varying block sizes** — the larger the
  blocks, the more Block-Only Shuffle suffers relative to CorgiPile (bigger
  homogeneous runs), while CorgiPile stays flat: the tuple-level shuffle is
  what buys block-size robustness.
* **Distributed scaling** — the segmented engine matches the single engine
  statistically while its (parallel) epoch wall-clock does not grow with
  segment count.
"""

from __future__ import annotations

from conftest import emit, report_table

from repro.core import CorgiPileShuffle
from repro.data import BlockLayout
from repro.db import MiniDB, SegmentedMiniDB, TrainQuery
from repro.ml import ExponentialDecay, LogisticRegression, Trainer
from repro.shuffle import BlockOnlyShuffle
from repro.storage import SSD_SCALED


def test_ablation_sampled_vs_full_pass(benchmark, glm_problems):
    train, test = glm_problems["susy"]
    layout = train.layout(40)
    n = max(1, layout.n_blocks // 10)

    def run():
        results = {}
        # Full pass: every epoch covers all tuples => E epochs.
        full = CorgiPileShuffle(layout, n, seed=1, mode="full-pass")
        results["full-pass"] = Trainer(
            LogisticRegression(train.n_features), train, full,
            epochs=6, schedule=ExponentialDecay(0.05), test=test,
        ).run()
        # Sampled: each epoch covers n/N of the data => 10x the epochs for
        # the same number of SGD steps.
        sampled = CorgiPileShuffle(layout, n, seed=1, mode="sampled")
        results["sampled"] = Trainer(
            LogisticRegression(train.n_features), train, sampled,
            epochs=6 * (layout.n_blocks // n), schedule=ExponentialDecay(0.05, 0.995),
            test=test,
        ).run()
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "mode": mode,
            "tuples_processed": history.final.tuples_seen,
            "final_acc": round(history.converged_test_score(), 4),
        }
        for mode, history in results.items()
    ]
    report_table(rows, title="Ablation: Algorithm-1 sampled vs deployed full-pass",
                 json_name="ablation_sampled.json")

    full_acc = results["full-pass"].converged_test_score()
    sampled_acc = results["sampled"].converged_test_score()
    assert abs(full_acc - sampled_acc) < 0.05
    # Comparable work: integer division of epochs leaves at most a ~10%
    # difference in total tuples processed.
    seen = [r["tuples_processed"] for r in rows]
    assert abs(seen[0] - seen[1]) / seen[0] < 0.1


def test_ablation_tuple_shuffle_vs_block_size(benchmark, glm_problems):
    train, test = glm_problems["susy"]

    def run():
        rows = []
        for per_block in (20, 60, 160):
            layout = BlockLayout(train.n_tuples, per_block)
            buffer_blocks = max(2, round(0.2 * layout.n_blocks))
            corgi = Trainer(
                LogisticRegression(train.n_features), train,
                CorgiPileShuffle(layout, buffer_blocks, seed=2),
                epochs=8, schedule=ExponentialDecay(0.05), test=test,
            ).run()
            block_only = Trainer(
                LogisticRegression(train.n_features), train,
                BlockOnlyShuffle(layout, seed=2),
                epochs=8, schedule=ExponentialDecay(0.05), test=test,
            ).run()
            rows.append(
                {
                    "tuples_per_block": per_block,
                    "corgipile": round(corgi.converged_test_score(), 4),
                    "block_only": round(block_only.converged_test_score(), 4),
                    "gap": round(
                        corgi.converged_test_score() - block_only.converged_test_score(), 4
                    ),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report_table(rows, title="Ablation: tuple-level shuffle vs block size",
                 json_name="ablation_blockonly.json")

    # Both degrade as blocks grow coarser, but the tuple-level shuffle
    # makes CorgiPile far more robust: its drop is less than half of
    # Block-Only's, and the gap widens with block size.
    corgi_drop = rows[0]["corgipile"] - rows[-1]["corgipile"]
    block_only_drop = rows[0]["block_only"] - rows[-1]["block_only"]
    assert corgi_drop < 0.55 * block_only_drop
    assert rows[-1]["gap"] > rows[0]["gap"]
    assert rows[-1]["gap"] > 0.02


def test_ablation_distributed_scaling(benchmark, glm_problems):
    train, test = glm_problems["susy"]
    query = TrainQuery(
        table="t", model="lr", learning_rate=0.5, max_epoch_num=5,
        block_size=4096, batch_size=64, strategy="corgipile",
    )

    def run():
        single = MiniDB(device=SSD_SCALED, page_bytes=1024)
        single.create_table("t", train)
        rows = [
            {
                "segments": 1,
                "final_acc": round(
                    single.train(query, test=test).history.final.test_score, 4
                ),
            }
        ]
        for n_segments in (2, 4):
            db = SegmentedMiniDB(n_segments, device=SSD_SCALED)
            db.create_table("t", train, distribution_block=40)
            result = db.train(query, test=test)
            rows.append(
                {
                    "segments": n_segments,
                    "final_acc": round(result.history.final.test_score, 4),
                    "wall_s": round(result.timeline.total_time_s, 5),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report_table(rows, title="Ablation: segmented-engine scaling",
                 json_name="ablation_distributed.json")

    accs = [r["final_acc"] for r in rows]
    assert max(accs) - min(accs) < 0.06
    # Parallel epochs: more segments never slower (each holds less data).
    walls = [r["wall_s"] for r in rows if "wall_s" in r]
    assert walls[-1] <= walls[0] * 1.1
