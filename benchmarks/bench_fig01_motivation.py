"""Figure 1 — the motivating experiment.

SVM on the clustered higgs dataset: (a) existing strategies (No Shuffle,
Sliding-Window, MRS) converge to lower accuracy than Shuffle Once; (b) a
full pre-shuffle fixes convergence but its up-front cost rivals the training
itself on HDD.
"""

from __future__ import annotations

from conftest import ENGINE_BLOCK_BYTES, TUPLES_PER_BLOCK, emit, report_table

from repro.bench import format_curve, run_convergence_sweep
from repro.db import run_in_db_system
from repro.ml import LinearSVM
from repro.storage import HDD_SCALED as HDD

STRATEGIES = ("no_shuffle", "sliding_window", "mrs", "shuffle_once", "corgipile")


def test_fig01_convergence_and_shuffle_cost(benchmark, glm_problems):
    train, test = glm_problems["higgs"]

    def run():
        sweep = run_convergence_sweep(
            train,
            test,
            lambda: LinearSVM(train.n_features),
            STRATEGIES,
            epochs=12,
            learning_rate=0.05,
            tuples_per_block=TUPLES_PER_BLOCK,
            buffer_fraction=0.1,
            seed=0,
        )
        corgi = run_in_db_system(
            "corgipile", "corgipile", train, test, "svm", HDD,
            epochs=3, block_size=ENGINE_BLOCK_BYTES,
        )
        once = run_in_db_system(
            "bismarck", "shuffle_once", train, test, "svm", HDD,
            epochs=3, block_size=ENGINE_BLOCK_BYTES,
        )
        return sweep, corgi, once

    sweep, corgi, once = benchmark.pedantic(run, rounds=1, iterations=1)

    emit("\nFigure 1(a): SVM on clustered higgs, accuracy per epoch")
    for name, history in sweep.histories.items():
        emit(format_curve(name, history.test_scores))
    report_table(sweep.rows(), title="final accuracies", json_name="fig01.json")
    report_table(
        [
            {
                "system": once.timeline.system,
                "shuffle_setup_s": round(once.timeline.setup_s, 4),
                "total_s": round(once.timeline.total_time_s, 4),
            },
            {
                "system": corgi.timeline.system,
                "shuffle_setup_s": 0.0,
                "total_s": round(corgi.timeline.total_time_s, 4),
            },
        ],
        title="Figure 1(b): shuffle-once overhead vs CorgiPile (HDD)",
    )

    scores = sweep.final_scores()
    # Shape: partial strategies fall short of Shuffle Once on clustered data.
    assert scores["no_shuffle"] < scores["shuffle_once"] - 0.05
    assert scores["sliding_window"] < scores["shuffle_once"] - 0.03
    # CorgiPile matches Shuffle Once.
    assert abs(scores["corgipile"] - scores["shuffle_once"]) < 0.05
    # The pre-shuffle alone costs more than one epoch of CorgiPile training.
    per_epoch_corgi = corgi.timeline.total_time_s / 3
    assert once.timeline.setup_s > per_epoch_corgi
