"""Figure 19 — datasets ordered by features instead of the label.

For higgs/susy-like data the paper sorts by individual features (picking
high/median/low label-correlation features for the high-dimensional sets)
and shows No Shuffle converging below Shuffle Once while CorgiPile matches
Shuffle Once on every ordering.

Scale note (also recorded in EXPERIMENTS.md): the *converged-accuracy* drop
of No Shuffle under feature ordering is a large-m effect — the paper's
epochs make millions of label-imbalanced tail updates, ours thousands — so
at 10³-scale the drop shows up as a first-epoch convergence penalty plus a
never-better converged accuracy, which is what this bench asserts.  The
full-magnitude clustered extreme is covered by Figures 11/12.
"""

from __future__ import annotations

import numpy as np
from conftest import TUPLES_PER_BLOCK, report_table

from repro.bench import run_convergence_sweep
from repro.data import feature_label_correlations, make_binary_dense, ordered_by_feature
from repro.ml import LogisticRegression

STRATEGIES = ("shuffle_once", "corgipile", "no_shuffle")

# higgs/susy stand-ins with the class signal concentrated on a few
# coordinates, so that single features carry label correlation (physics
# features do; an isotropic random direction would not).
PROBLEMS = {
    "higgs-like": dict(n=6000, d=28, separation=0.5, predictive_features=3),
    "susy-like": dict(n=5000, d=18, separation=0.9, predictive_features=2),
}


def _feature_picks(train) -> list[int]:
    corr = np.abs(feature_label_correlations(train))
    order = np.argsort(corr)
    return [int(order[-1]), int(order[len(order) // 2]), int(order[0])]


def _run():
    rows = []
    for name, cfg in PROBLEMS.items():
        ds = make_binary_dense(
            cfg["n"], cfg["d"], separation=cfg["separation"],
            predictive_features=cfg["predictive_features"], seed=0, name=name,
        )
        train, test = ds.split(0.9, seed=1)
        corr = feature_label_correlations(train)
        for rank, feature in zip(("high", "median", "low"), _feature_picks(train)):
            ordered = ordered_by_feature(train, feature, seed=0)
            sweep = run_convergence_sweep(
                ordered,
                test,
                lambda: LogisticRegression(train.n_features),
                STRATEGIES,
                epochs=12,
                learning_rate=0.05,
                tuples_per_block=TUPLES_PER_BLOCK,
                seed=8,
                dataset_name=f"{name} by feature {feature}",
            )
            scores = sweep.converged_scores()
            rows.append(
                {
                    "dataset": name,
                    "corr_rank": rank,
                    "ordered_by": f"feature {feature}",
                    "label_corr": round(float(corr[feature]), 3),
                    "shuffle_once": round(scores["shuffle_once"], 4),
                    "corgipile": round(scores["corgipile"], 4),
                    "no_shuffle": round(scores["no_shuffle"], 4),
                    "once_epoch1": round(sweep.histories["shuffle_once"].records[0].test_score, 4),
                    "none_epoch1": round(sweep.histories["no_shuffle"].records[0].test_score, 4),
                }
            )
    return rows


def test_fig19_feature_ordered(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    report_table(rows, title="Figure 19: feature-ordered datasets", json_name="fig19.json")

    for row in rows:
        # CorgiPile ≈ Shuffle Once on every ordering.
        assert abs(row["corgipile"] - row["shuffle_once"]) < 0.04, row
        # No Shuffle never meaningfully exceeds Shuffle Once.
        assert row["no_shuffle"] <= row["shuffle_once"] + 0.03, row
    # On the most label-correlated orderings, No Shuffle pays a visible
    # first-epoch convergence penalty (the scaled form of the paper's drop).
    high_rows = [r for r in rows if r["corr_rank"] == "high"]
    assert any(r["none_epoch1"] < r["once_epoch1"] - 0.015 for r in high_rows), high_rows
