"""Statistical robustness: the headline accuracy claims across seeds.

The paper's accuracy comparisons average over large datasets; at our 10³
scale a single run carries ±2-3 pt noise, so this bench repeats the core
comparison (CorgiPile vs Shuffle Once vs No Shuffle, clustered higgs/susy)
over four seeds and asserts the claims *statistically*: CorgiPile's mean
converged accuracy sits within the paper's ~1%-style band of Shuffle Once
(2 pts at our noise floor) with low seed variance, while No Shuffle sits
significantly below both (no 2σ overlap).
"""

from __future__ import annotations

from conftest import report_table

from repro.ml import ExponentialDecay, LogisticRegression, Trainer, multi_seed
from repro.shuffle import make_strategy

SEEDS = (0, 1, 2, 3)


def test_multiseed_accuracy_claims(benchmark, glm_problems):
    def run():
        stats = {}
        for dataset in ("higgs", "susy"):
            train, test = glm_problems[dataset]
            # Finer blocks than the default: the per-fill label mix
            # improves with blocks-per-fill, shrinking the gap to the
            # paper's sub-1%% regime (h_D·(1−α) in Theorem 1).
            layout = train.layout(20)
            for strategy in ("corgipile", "shuffle_once", "no_shuffle"):
                def runner(seed: int, strategy=strategy, train=train, test=test, layout=layout):
                    return Trainer(
                        LogisticRegression(train.n_features),
                        train,
                        make_strategy(strategy, layout, buffer_fraction=0.1, seed=seed),
                        epochs=12,
                        schedule=ExponentialDecay(0.05),
                        test=test,
                    ).run()

                stats[(dataset, strategy)] = multi_seed(runner, SEEDS)
        return stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        {
            "dataset": dataset,
            "strategy": strategy,
            "mean": round(s.mean, 4),
            "std": round(s.std, 4),
            "min": round(s.min, 4),
            "max": round(s.max, 4),
        }
        for (dataset, strategy), s in stats.items()
    ]
    report_table(rows, title="Converged accuracy over 4 seeds", json_name="multiseed.json")

    for dataset in ("higgs", "susy"):
        corgi = stats[(dataset, "corgipile")]
        once = stats[(dataset, "shuffle_once")]
        none = stats[(dataset, "no_shuffle")]
        # CorgiPile within the paper's ~1%-style band of Shuffle Once
        # (2 pts at our noise floor), stable across seeds.
        assert abs(corgi.mean - once.mean) < 0.02, (dataset, corgi, once)
        assert corgi.std < 0.02 and once.std < 0.02, (dataset, corgi, once)
        # No Shuffle significantly below CorgiPile (no 2-sigma overlap and
        # a gap far beyond noise).
        assert none.mean < corgi.mean - 0.05, (dataset, none, corgi)
        assert not none.overlaps(corgi, sigmas=2.0), (dataset, none, corgi)
