#!/usr/bin/env python
"""Index-path bench for ``TRAIN ... WHERE`` (secondary B+tree indexes).

Two claims under test, both read off the executor's physical counters
(``query.extra["where"]["physical"]``) rather than the cost model:

1. **Reads scale with selectivity, not table size.**  With the key column
   clustered, a predicate matching a *fixed number of tuples* must touch
   roughly the same number of device pages no matter how large the table
   grows — the index-ordered fetch pays for qualifying pages only, while
   the heap underneath doubles.  ``--check`` enforces a bounded spread on
   ``device_page_reads`` across table sizes while the heap page count at
   least doubles, and that within one table the reads grow with
   selectivity.

2. **The planner flips at the selectivity extremes.**  A selective range
   over the indexed column must plan the index-ordered block fetch; a
   predicate matching everything must fall back to the sequential scan
   (whose cost is flat in selectivity).  ``--check`` enforces the flip at
   both ends on every table size.

Grid: sizes × selectivities over the bundled SUSY sample, physically
ordered by feature 0 (the indexed column) so qualifying pages are
contiguous, plus one fixed-width predicate per size for claim 1.

Results go to ``benchmarks/results/bench_index.json`` plus the repo-root
``BENCH_index.json`` snapshot that travels with the PR.

Usage::

    PYTHONPATH=src python benchmarks/bench_index.py --quick          # default
    PYTHONPATH=src python benchmarks/bench_index.py --full
    PYTHONPATH=src python benchmarks/bench_index.py --quick --check  # CI gate
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np  # noqa: E402

from repro.data import load, ordered_by_feature  # noqa: E402
from repro.db import MiniDB, TrainQuery  # noqa: E402
from repro.db.query import CreateIndexQuery, parse_predicate  # noqa: E402

RESULTS_PATH = Path(__file__).resolve().parent / "results" / "bench_index.json"
SNAPSHOT_PATH = REPO_ROOT / "BENCH_index.json"

SELECTIVITIES = (0.05, 0.3, 1.0)
QUICK_SIZES = (1500, 3000)
FULL_SIZES = (1500, 3000, 6000)
FIXED_MATCH = 150  # claim-1 predicate width, in tuples
EPOCHS = 2


def _table(db: MiniDB, n_tuples: int):
    """One catalog table of ``n_tuples`` SUSY rows, clustered on f0 + indexed."""
    dataset = load("susy", seed=0)
    dataset = ordered_by_feature(dataset.subset(range(n_tuples)), 0, seed=0)
    info = db.create_table("t", dataset)
    db.create_index(CreateIndexQuery(name="ix_f0", table="t", column="f0"))
    return info, np.sort(np.asarray(dataset.X[:, 0], dtype=float))


def _run(db: MiniDB, predicate: str) -> dict:
    query = TrainQuery(
        table="t",
        model="lr",
        strategy="corgipile",
        max_epoch_num=EPOCHS,
        learning_rate=0.05,
        block_size=8 * 1024,
        buffer_fraction=0.1,
        seed=0,
        where=parse_predicate(predicate),
    )
    decision = db.train(query).query.extra["where"]
    return {
        "predicate": predicate,
        "n_matching": decision["n_matching"],
        "n_tuples": decision["n_tuples"],
        "selectivity": round(decision["selectivity"], 4),
        "n_qualifying_pages": decision["n_qualifying_pages"],
        "n_heap_pages": decision["n_heap_pages"],
        "fetch": decision["fetch"],
        "est_index_ms": round(decision["est_index_s"] * 1e3, 4),
        "est_scan_ms": round(decision["est_scan_s"] * 1e3, 4),
        **decision["physical"],
    }


def run_grid(sizes: tuple[int, ...]) -> dict:
    points = []
    fixed_points = []
    for n_tuples in sizes:
        db = MiniDB(page_bytes=1024)
        _info, sorted_f0 = _table(db, n_tuples)
        for sel in SELECTIVITIES:
            k = max(1, round(sel * n_tuples))
            threshold = float(sorted_f0[n_tuples - k])
            point = _run(db, f"f0 >= {threshold!r}")
            point.update(size=n_tuples, target_selectivity=sel, kind="selectivity")
            points.append(point)
            print(
                f"n={n_tuples:5d} sel={sel:4.0%} matched={point['n_matching']:5d} "
                f"fetch={point['fetch']:5s} device_page_reads={point['device_page_reads']:5d} "
                f"heap_pages={point['n_heap_pages']}"
            )
        # Claim 1: a fixed-width slice of the key range — same matched
        # tuples on every table size, so reads must not follow the heap.
        lo, hi = float(sorted_f0[n_tuples - FIXED_MATCH]), float(sorted_f0[n_tuples - 1])
        point = _run(db, f"f0 >= {lo!r} AND f0 <= {hi!r}")
        point.update(size=n_tuples, target_matching=FIXED_MATCH, kind="fixed_width")
        fixed_points.append(point)
        print(
            f"n={n_tuples:5d} fixed-width matched={point['n_matching']:5d} "
            f"fetch={point['fetch']:5s} device_page_reads={point['device_page_reads']:5d} "
            f"heap_pages={point['n_heap_pages']}"
        )
    return {
        "bench": "index",
        "dataset": "susy (ordered by f0)",
        "epochs": EPOCHS,
        "sizes": list(sizes),
        "selectivities": list(SELECTIVITIES),
        "fixed_match": FIXED_MATCH,
        "points": points,
        "fixed_width_points": fixed_points,
    }


def check(results: dict) -> list[str]:
    failures = []
    points = results["points"]
    by_size: dict[int, dict[float, dict]] = {}
    for p in points:
        by_size.setdefault(p["size"], {})[p["target_selectivity"]] = p

    for size, sels in sorted(by_size.items()):
        low, mid, full = sels[min(SELECTIVITIES)], sels[0.3], sels[max(SELECTIVITIES)]
        # Claim 2: planner flips at the extremes.
        if low["fetch"] != "index":
            failures.append(
                f"n={size}: {min(SELECTIVITIES):.0%} selectivity planned "
                f"{low['fetch']!r}, expected the index-ordered fetch"
            )
        if full["fetch"] != "scan":
            failures.append(
                f"n={size}: 100% selectivity planned {full['fetch']!r}, "
                "expected the sequential scan"
            )
        # Claim 1a: within one table, device reads grow with selectivity.
        if not low["device_page_reads"] < mid["device_page_reads"]:
            failures.append(
                f"n={size}: device_page_reads {low['device_page_reads']} at "
                f"{min(SELECTIVITIES):.0%} !< {mid['device_page_reads']} at 30%"
            )

    # Claim 1b: fixed matched width across growing tables — reads flat
    # (spread <= 1.5x) while the heap at least doubles end to end.
    fixed = [p for p in results["fixed_width_points"] if p["fetch"] == "index"]
    if len(fixed) < len(results["sizes"]):
        failures.append(
            "fixed-width predicate did not plan the index fetch on every size: "
            + ", ".join(f"n={p['size']}:{p['fetch']}" for p in results["fixed_width_points"])
        )
    else:
        reads = [p["device_page_reads"] for p in fixed]
        heap = [p["n_heap_pages"] for p in fixed]
        if max(reads) > 1.5 * min(reads):
            failures.append(
                f"fixed-width device_page_reads spread {min(reads)}..{max(reads)} "
                "exceeds 1.5x: reads are following table size, not selectivity"
            )
        if heap[-1] < 2 * heap[0]:
            failures.append(
                f"grid never grew the heap (pages {heap[0]} -> {heap[-1]}): "
                "the scaling claim was not actually exercised"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", default=True,
        help="2 table sizes x 3 selectivities (default)",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="adds the full 6000-tuple table",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless reads scale with selectivity (not table "
        "size) and the planner flips index->scan across the grid",
    )
    parser.add_argument(
        "--no-snapshot", action="store_true",
        help="skip writing the repo-root BENCH_index.json",
    )
    args = parser.parse_args(argv)

    sizes = FULL_SIZES if args.full else QUICK_SIZES
    t0 = time.perf_counter()
    results = run_grid(sizes)
    results["mode"] = "full" if args.full else "quick"
    results["wall_s"] = round(time.perf_counter() - t0, 2)

    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")
    if not args.no_snapshot:
        SNAPSHOT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    n_points = len(results["points"]) + len(results["fixed_width_points"])
    print(f"\n{n_points} grid points in {results['wall_s']}s -> {RESULTS_PATH}")

    if args.check:
        failures = check(results)
        if failures:
            print("\nINDEX GATE FAILED:")
            for f in failures:
                print(f"  {f}")
            return 1
        fixed = results["fixed_width_points"]
        reads = [p["device_page_reads"] for p in fixed]
        heap = [p["n_heap_pages"] for p in fixed]
        print(
            f"index gate OK: fixed-width reads {min(reads)}..{max(reads)} "
            f"while heap grew {heap[0]} -> {heap[-1]} pages; planner flipped "
            "index->scan on every size"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
