"""Figure 10 — the cifar experiment repeated with Adam instead of SGD.

Shape: the strategy ordering of Figure 8 survives the optimiser change —
CorgiPile ≈ Shuffle Once, Sliding Window / No Shuffle clearly lower.
"""

from __future__ import annotations

from conftest import report_table

from repro.bench import run_convergence_sweep
from repro.data import DATASETS, clustered_by_label
from repro.ml import MLPClassifier

STRATEGIES = ("shuffle_once", "corgipile", "sliding_window", "no_shuffle")


def test_fig10_adam_optimizer(benchmark):
    train, test = DATASETS["cifar10-like"].build_split(seed=0)
    clustered = clustered_by_label(train, seed=0)

    def run():
        sweeps = {}
        for batch_size in (16, 32):
            sweeps[batch_size] = run_convergence_sweep(
                clustered,
                test,
                lambda: MLPClassifier(train.n_features, 32, train.n_classes, seed=0),
                STRATEGIES,
                epochs=10,
                learning_rate=0.01,
                tuples_per_block=40,
                batch_size=batch_size,
                use_adam=True,
                seed=2,
                dataset_name=f"cifar-like adam bs={batch_size}",
            )
        return sweeps

    sweeps = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [r for sweep in sweeps.values() for r in sweep.rows()]
    report_table(rows, title="Figure 10: Adam on clustered cifar-like", json_name="fig10.json")

    for batch_size, sweep in sweeps.items():
        scores = sweep.final_scores()
        assert abs(scores["corgipile"] - scores["shuffle_once"]) < 0.06, (batch_size, scores)
        assert scores["no_shuffle"] < scores["shuffle_once"] - 0.04, (batch_size, scores)
        assert scores["sliding_window"] < scores["shuffle_once"] - 0.04, (batch_size, scores)
