"""Table 3 — final train/test accuracy of Shuffle Once vs CorgiPile.

LR and SVM on the five clustered GLM datasets; the paper's claim is a
sub-1 % gap everywhere.  Our scaled datasets are noisier (10³ fewer test
tuples), so the bench asserts a proportionally relaxed 3-point gap and
reports the exact numbers.
"""

from __future__ import annotations

import numpy as np
from conftest import GLM_DATASETS, TUPLES_PER_BLOCK, report_table

from repro.bench import run_convergence_sweep
from repro.ml import LinearSVM, LogisticRegression

MODELS = {
    "LR": LogisticRegression,
    "SVM": LinearSVM,
}


def _run_all(glm_problems):
    rows = []
    for dataset in GLM_DATASETS:
        train, test = glm_problems[dataset]
        for model_name, model_cls in MODELS.items():
            sweep = run_convergence_sweep(
                train,
                test,
                lambda: model_cls(train.n_features),
                ("shuffle_once", "corgipile"),
                epochs=15,
                learning_rate=0.1 if train.n_features >= 400 else 0.05,
                tuples_per_block=TUPLES_PER_BLOCK,
                seed=4,
            )
            converged = sweep.converged_scores()

            def tail_train(name):
                records = sweep.histories[name].records[-4:]
                return float(np.mean([r.train_score for r in records]))

            rows.append(
                {
                    "dataset": dataset,
                    "model": model_name,
                    "SO train": round(tail_train("shuffle_once"), 4),
                    "Corgi train": round(tail_train("corgipile"), 4),
                    "SO test": round(converged["shuffle_once"], 4),
                    "Corgi test": round(converged["corgipile"], 4),
                    "test gap": round(abs(converged["shuffle_once"] - converged["corgipile"]), 4),
                }
            )
    return rows


def test_tab03_final_accuracy(benchmark, glm_problems):
    rows = benchmark.pedantic(lambda: _run_all(glm_problems), rounds=1, iterations=1)
    report_table(rows, title="Table 3: Shuffle Once vs CorgiPile", json_name="tab03.json")

    for row in rows:
        assert row["test gap"] < 0.04, row
        assert abs(row["SO train"] - row["Corgi train"]) < 0.04, row
    # Accuracy bands resemble the paper's Table 3 ordering:
    # higgs lowest, yfcc highest.
    by_ds = {(r["dataset"], r["model"]): r for r in rows}
    assert by_ds[("higgs", "LR")]["SO test"] < by_ds[("susy", "LR")]["SO test"]
    assert by_ds[("susy", "LR")]["SO test"] < by_ds[("yfcc", "LR")]["SO test"]
