"""Appendix B — resource usage in PostgreSQL.

Claims: CorgiPile has higher CPU utilisation than No Shuffle (two threads —
data loading concurrent with SGD); buffered strategies consume buffer
memory; Shuffle Once additionally needs memory for the sort and 2× disk for
the shuffled copy.
"""

from __future__ import annotations

from conftest import ENGINE_BLOCK_BYTES, report_table

from repro.db import run_in_db_system
from repro.storage import HDD_SCALED


def test_appB_resource_usage(benchmark, glm_problems):
    train, test = glm_problems["criteo"]

    def run():
        results = {}
        for strategy in ("no_shuffle", "corgipile", "corgipile_single_buffer", "shuffle_once"):
            results[strategy] = run_in_db_system(
                "corgipile", strategy, train, test, "svm", HDD_SCALED,
                epochs=3, block_size=ENGINE_BLOCK_BYTES, seed=0,
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    table_bytes = results["no_shuffle"].resources.extra_disk_bytes  # 0 baseline
    rows = []
    for strategy, result in results.items():
        r = result.resources
        rows.append(
            {
                "strategy": strategy,
                "cpu_utilisation": round(r.cpu_utilisation, 3),
                "buffer_memory_KB": round(r.buffer_memory_bytes / 1024, 1),
                "extra_disk_KB": round(r.extra_disk_bytes / 1024, 1),
                "io_s": round(r.io_seconds, 5),
                "compute_s": round(r.compute_seconds, 5),
            }
        )
    report_table(rows, title="Appendix B: resource usage", json_name="appB.json")

    res = {s: r.resources for s, r in results.items()}
    # CPU: double-buffered CorgiPile overlaps loading with SGD, so its
    # compute-per-wall-second exceeds the serial No Shuffle pipeline's.
    assert res["corgipile"].cpu_utilisation > res["no_shuffle"].cpu_utilisation * 0.99
    assert res["corgipile"].cpu_utilisation >= res["corgipile_single_buffer"].cpu_utilisation
    # Memory: both CorgiPile variants allocate buffers; double buffering 2x.
    assert res["corgipile"].buffer_memory_bytes > 0
    assert res["corgipile"].buffer_memory_bytes == 2 * res[
        "corgipile_single_buffer"
    ].buffer_memory_bytes
    assert res["no_shuffle"].buffer_memory_bytes == 0
    # Disk: only Shuffle Once stores a second copy of the table.
    assert res["shuffle_once"].extra_disk_bytes > 0
    assert res["corgipile"].extra_disk_bytes == 0
