#!/usr/bin/env python
"""Model-hopper grid bench: S models for the price of one data pass.

Trains the quick S=4 learning-rate grid through the hop schedule, times
every (slot, worker) work unit, and records the modeled critical-path wall
against the cost of a single solo data pass into
``benchmarks/results/bench_mop.json`` plus the repo-root ``BENCH_mop.json``
snapshot that travels with the PR.

The wall is a *modeled critical path* (sum over slots of the slowest unit
in each slot) from bit-exact serial execution, so the number is stable on
single-core CI hosts — ``wall_source`` in the document says so.  The bench
also re-trains every config solo and asserts bit-identical weights.

Usage::

    PYTHONPATH=src python benchmarks/bench_mop.py --quick          # default
    PYTHONPATH=src python benchmarks/bench_mop.py --full --seed 1
    PYTHONPATH=src python benchmarks/bench_mop.py --quick --check  # CI gate

``--check`` exits non-zero if the S=4 grid costs more than 1.4x one data
pass, or if any config's weights diverge from its solo run.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench import format_table, mop_bench_rows, run_mop_bench  # noqa: E402

RESULTS_PATH = Path(__file__).resolve().parent / "results" / "bench_mop.json"
SNAPSHOT_PATH = REPO_ROOT / "BENCH_mop.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--quick", action="store_true", default=True,
        help="small dense workload, seconds to run (default)",
    )
    mode.add_argument(
        "--full", action="store_true",
        help="larger workload for more stable numbers",
    )
    parser.add_argument("--seed", type=int, default=0, help="RNG seed (default 0)")
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero if the grid costs more than the gate ratio of "
        "one data pass, or any config diverges from its solo run",
    )
    parser.add_argument(
        "--no-snapshot", action="store_true",
        help="skip writing the repo-root BENCH_mop.json",
    )
    args = parser.parse_args(argv)

    doc = run_mop_bench(quick=not args.full, seed=args.seed)
    summary = doc["summary"]
    print(
        format_table(
            mop_bench_rows(doc),
            title=(
                f"model-hopper grid ({doc['config']}, S={summary['n_models']} "
                f"models, seed={args.seed})"
            ),
        )
    )
    print(
        f"grid wall {summary['hopper_wall_s']:.3f}s vs one data pass "
        f"{summary['one_pass_wall_s']:.3f}s -> {summary['overhead_vs_one_pass']:.2f}x "
        f"(gate {summary['gate_ratio']}x, schedule bubble "
        f"{summary['schedule_bubble_ratio']}x, {summary['wall_source']}); "
        f"{summary['speedup_vs_sequential']:.2f}x vs {summary['n_models']} "
        f"sequential runs"
    )

    payload = json.dumps(doc, indent=2) + "\n"
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(payload)
    print(f"wrote {RESULTS_PATH}")
    if not args.no_snapshot:
        SNAPSHOT_PATH.write_text(payload)
        print(f"wrote {SNAPSHOT_PATH}")

    if args.check:
        if not summary["bit_exact"]:
            print(
                "EQUIVALENCE REGRESSION: grid weights diverge from solo runs",
                file=sys.stderr,
            )
            return 1
        if not summary["gate_pass"]:
            print(
                f"OVERHEAD REGRESSION: grid costs "
                f"{summary['overhead_vs_one_pass']:.2f}x one data pass "
                f"(gate {summary['gate_ratio']}x)",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
