"""Real-CPU microbenchmarks of the reproduction's hot paths.

Unlike the figure benches (simulated wall-clock), these measure the actual
Python/NumPy cost of the implementation with pytest-benchmark: index-stream
generation per strategy, the tuple codec, the TupleShuffle operator, and a
per-tuple SGD epoch.  They bound the CPU overhead CorgiPile's shuffling
adds per epoch — the paper's "limited additional overhead" claim, measured
for this codebase rather than modelled.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CorgiPileShuffle
from repro.data import BlockLayout, make_binary_dense
from repro.ml import LogisticRegression
from repro.shuffle import make_strategy
from repro.storage import TupleSchema, decode_tuple, encode_tuple

N_TUPLES = 50_000
LAYOUT = BlockLayout(N_TUPLES, 100)


@pytest.mark.parametrize(
    "strategy", ["no_shuffle", "shuffle_once", "corgipile", "sliding_window", "mrs"]
)
def test_cpu_index_generation(benchmark, strategy):
    """Per-epoch index-stream generation cost (50k tuples)."""
    s = make_strategy(strategy, LAYOUT, buffer_fraction=0.1, seed=0)
    epoch = iter(range(10**6))

    order = benchmark(lambda: s.epoch_indices(next(epoch) % 50))
    assert order.size == N_TUPLES


def test_cpu_corgipile_buffer_fills(benchmark):
    """Buffer-fill decomposition (block gather + in-buffer shuffle)."""
    cp = CorgiPileShuffle(LAYOUT, buffer_blocks=50, seed=0)
    fills = benchmark(lambda: cp.buffer_fills(0))
    assert sum(f.size for f in fills) == N_TUPLES


def test_cpu_codec_roundtrip(benchmark):
    """Encode+decode throughput for dense 28-feature tuples."""
    schema = TupleSchema(28)
    features = np.random.default_rng(0).standard_normal(28)

    def roundtrip():
        payload = encode_tuple(7, 1.0, features)
        record, _ = decode_tuple(payload, 0, schema)
        return record

    record = benchmark(roundtrip)
    assert record.tuple_id == 7


def test_cpu_per_tuple_sgd_epoch(benchmark):
    """One standard-SGD epoch over 5k dense tuples (the fast path)."""
    ds = make_binary_dense(5000, 28, separation=0.5, seed=0)
    model = LogisticRegression(28)
    X, y = ds.X, ds.y

    def epoch():
        for i in range(5000):
            model.step_example(X[i], float(y[i]), 0.01)
        return model.w[0]

    benchmark.pedantic(epoch, rounds=3, iterations=1)


def test_cpu_shuffle_overhead_bounded(benchmark):
    """CorgiPile's index generation stays cheap relative to the SGD epoch.

    Paper claim analogue: the shuffling machinery must not dominate.  We
    time both on the same 50k-tuple layout and assert the CorgiPile index
    stream costs well under one per-tuple-SGD epoch.
    """
    import time

    cp = CorgiPileShuffle(LAYOUT, buffer_blocks=50, seed=0)
    start = time.perf_counter()
    cp.epoch_indices(0)
    shuffle_s = time.perf_counter() - start

    ds = make_binary_dense(5000, 28, separation=0.5, seed=0)
    model = LogisticRegression(28)
    start = time.perf_counter()
    for i in range(5000):
        model.step_example(ds.X[i], float(ds.y[i]), 0.01)
    sgd_5k_s = time.perf_counter() - start
    sgd_50k_estimate = 10 * sgd_5k_s

    def ratio():
        return shuffle_s / sgd_50k_estimate

    value = benchmark.pedantic(ratio, rounds=1, iterations=1)
    assert value < 0.5, f"shuffle overhead ratio {value:.3f}"
