#!/usr/bin/env python
"""Perf-regression harness for the vectorized block-fused execution engine.

Times the scalar (per-tuple) and fused (vectorized) implementations of the
two hot paths — page decode and one standard-SGD epoch — and records
tuples/sec into ``benchmarks/results/bench_kernels.json`` plus the repo-root
``BENCH_kernels.json`` snapshot that travels with the PR.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernels.py --quick          # default
    PYTHONPATH=src python benchmarks/bench_kernels.py --full --seed 1
    PYTHONPATH=src python benchmarks/bench_kernels.py --quick --check  # CI gate

``--check`` exits non-zero if any fused kernel is slower than its scalar
baseline (``summary.min_speedup < 1``) — which includes the columnar decode
records, whose baseline is the *row fused* decode — or if the columnar
payload is not smaller than the row payload on either workload.  The CI
perf-smoke job runs this so a regression in the fused paths or the columnar
format fails the build instead of silently shipping.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench import format_table, kernel_bench_rows, run_kernel_bench  # noqa: E402

RESULTS_PATH = Path(__file__).resolve().parent / "results" / "bench_kernels.json"
SNAPSHOT_PATH = REPO_ROOT / "BENCH_kernels.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--quick", action="store_true", default=True,
        help="small workloads, seconds to run (default)",
    )
    mode.add_argument(
        "--full", action="store_true",
        help="larger workloads for more stable numbers",
    )
    parser.add_argument("--seed", type=int, default=0, help="RNG seed (default 0)")
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="best-of-N timing repeats (default 3)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero if any fused kernel is slower than scalar",
    )
    parser.add_argument(
        "--no-snapshot", action="store_true",
        help="skip writing the repo-root BENCH_kernels.json",
    )
    args = parser.parse_args(argv)

    doc = run_kernel_bench(quick=not args.full, seed=args.seed, repeats=args.repeats)
    title = f"kernel bench ({doc['config']}, seed={args.seed}, best of {args.repeats})"
    print(format_table(kernel_bench_rows(doc), title=title))
    summary = doc["summary"]
    print(
        f"epoch speedup (sparse): {summary['epoch_speedup']:.2f}x   "
        f"dense: {summary['epoch_dense_speedup']:.2f}x   "
        f"decode: {summary['decode_speedup']:.2f}x"
    )
    print(
        f"columnar decode vs row fused (sparse): "
        f"{summary['columnar_decode_speedup']:.2f}x   "
        f"dense: {summary['columnar_decode_dense_speedup']:.2f}x   "
        f"bytes ratio sparse: {summary['columnar_bytes_ratio_sparse']:.3f}   "
        f"dense: {summary['columnar_bytes_ratio_dense']:.3f}"
    )

    payload = json.dumps(doc, indent=2) + "\n"
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(payload)
    print(f"wrote {RESULTS_PATH}")
    if not args.no_snapshot:
        SNAPSHOT_PATH.write_text(payload)
        print(f"wrote {SNAPSHOT_PATH}")

    if args.check:
        failures = []
        if summary["min_speedup"] < 1.0:
            failures.append(
                f"min fused/scalar speedup {summary['min_speedup']:.2f}x < 1.0x"
            )
        for cfg in ("sparse", "dense"):
            ratio = summary[f"columnar_bytes_ratio_{cfg}"]
            if ratio >= 1.0:
                failures.append(
                    f"columnar {cfg} payload is not smaller than row "
                    f"(ratio {ratio:.3f} >= 1)"
                )
        if failures:
            for problem in failures:
                print(f"PERF REGRESSION: {problem}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
