"""Figure 12 — LR and SVM convergence under every strategy, clustered data.

Shape: Sliding Window suffers; MRS sits between Window and Shuffle Once
(matching Shuffle Once only on the easiest dataset); CorgiPile tracks
Shuffle Once on every dataset.
"""

from __future__ import annotations

from conftest import TUPLES_PER_BLOCK, emit, report_table

from repro.bench import format_curve, run_convergence_sweep
from repro.ml import LinearSVM, LogisticRegression

STRATEGIES = ("shuffle_once", "corgipile", "mrs", "sliding_window", "no_shuffle")
DATASETS_USED = ("higgs", "susy", "criteo", "yfcc")


def _run(glm_problems):
    sweeps = {}
    for dataset in DATASETS_USED:
        train, test = glm_problems[dataset]
        model_cls = LinearSVM if dataset in ("higgs", "criteo") else LogisticRegression
        sweeps[dataset] = run_convergence_sweep(
            train,
            test,
            lambda: model_cls(train.n_features),
            STRATEGIES,
            epochs=12,
            learning_rate=0.05,
            tuples_per_block=TUPLES_PER_BLOCK,
            seed=5,
            dataset_name=dataset,
        )
    return sweeps


def test_fig12_strategy_convergence(benchmark, glm_problems):
    sweeps = benchmark.pedantic(lambda: _run(glm_problems), rounds=1, iterations=1)

    rows = [r for sweep in sweeps.values() for r in sweep.rows()]
    report_table(rows, title="Figure 12: GLM convergence by strategy", json_name="fig12.json")
    for dataset, sweep in sweeps.items():
        emit(f"  [{dataset}]")
        for name, history in sweep.histories.items():
            emit(format_curve(name, history.test_scores))

    for dataset, sweep in sweeps.items():
        scores = sweep.converged_scores()
        # CorgiPile ≈ Shuffle Once everywhere.
        assert abs(scores["corgipile"] - scores["shuffle_once"]) < 0.04, (dataset, scores)
        # No Shuffle clearly lower on the clustered low-dim datasets
        # (yfcc's gap is limited, as the paper notes).
        if dataset != "yfcc":
            assert scores["no_shuffle"] < scores["shuffle_once"] - 0.05, (dataset, scores)
            assert scores["sliding_window"] < scores["shuffle_once"] - 0.03, (dataset, scores)
        # MRS never beats Shuffle Once meaningfully.
        assert scores["mrs"] <= scores["shuffle_once"] + 0.02, (dataset, scores)
