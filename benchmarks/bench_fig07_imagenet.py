"""Figure 7 — end-to-end deep learning on the ImageNet stand-in.

ResNet50/ImageNet becomes an MLP over the 20-class imagenet-like dataset
(see DESIGN.md); the execution model is the paper's: 8 data-parallel
workers, per-worker CorgiPile buffers, block-based storage.  The full
pre-shuffle of the record files is charged at the paper's measured cost —
8.5 hours against ~0.37 h/epoch of training, i.e. ~23 epoch-equivalents of
random small-file I/O.

Claims to reproduce: CorgiPile reaches Shuffle Once's accuracy well over
1.3× faster end to end, converges to the same accuracy, keeps its per-epoch
overhead over No Shuffle small, and No Shuffle collapses far below both.
"""

from __future__ import annotations

from conftest import report_table

from repro.data import DATASETS, clustered_by_label
from repro.db import DL_FRAMEWORK_PROFILE, run_framework
from repro.ml import MLPClassifier
from repro.storage import HDD_SCALED

STRATEGIES = ("shuffle_once", "corgipile", "no_shuffle")
SHUFFLE_EPOCH_EQUIVALENTS = 23.0  # 8.5 h shuffle / 0.37 h per epoch (Section 7.2.1)


def test_fig07_imagenet_end_to_end(benchmark):
    train, test = DATASETS["imagenet-like"].build_split(seed=0)
    clustered = clustered_by_label(train, seed=0)

    def run():
        runs = {}
        for name in STRATEGIES:
            runs[name] = run_framework(
                clustered,
                test,
                MLPClassifier(train.n_features, 48, train.n_classes, seed=0),
                name,
                HDD_SCALED,
                epochs=15,
                learning_rate=0.3,
                decay=0.9,
                batch_size=32,
                buffer_fraction=0.1,
                tuples_per_block=20,
                compute=DL_FRAMEWORK_PROFILE,
                n_workers=8,
                seed=0,
                shuffle_once_epoch_equivalents=SHUFFLE_EPOCH_EQUIVALENTS,
            )
        return runs

    runs = benchmark.pedantic(run, rounds=1, iterations=1)

    once = runs["shuffle_once"]
    corgi = runs["corgipile"]
    none = runs["no_shuffle"]
    target = 0.95 * once.timeline.final_test_score
    rows = [
        {
            "strategy": name,
            "setup_s": round(r.timeline.setup_s, 4),
            "per_epoch_s": round(r.per_epoch_s, 4),
            "final_top1": round(r.timeline.final_test_score, 4),
            "time_to_target_s": round(t, 4) if (t := r.timeline.time_to_reach(target)) else None,
        }
        for name, r in runs.items()
    ]
    report_table(rows, title="Figure 7: ImageNet-like end-to-end", json_name="fig07.json")

    # Accuracy: CorgiPile ~ Shuffle Once; No Shuffle collapses.
    assert abs(corgi.timeline.final_test_score - once.timeline.final_test_score) < 0.06
    assert none.timeline.final_test_score < once.timeline.final_test_score - 0.1
    # Wall-clock: CorgiPile >= 1.3x faster to the target accuracy (the paper
    # measures 1.5x; our scaled run lands higher because the shuffle cost
    # amortises over fewer epochs).
    speedup = corgi.timeline.speedup_over(once.timeline, target)
    assert speedup is not None and speedup > 1.3, f"speedup={speedup}"
    # Per-epoch overhead vs No Shuffle stays modest (paper: ~15%).
    assert corgi.per_epoch_s <= 1.25 * none.per_epoch_s
