"""Figures 16 & 17 — mini-batch SGD (batch 128, scaled to 16) in the DB.

Figure 16: end-to-end time of mini-batch LR/SVM — CorgiPile matches Shuffle
Once's accuracy and converges 1.7-3.3× faster on SSD.
Figure 17: convergence of all strategies under mini-batch SGD — same
ordering as the per-tuple Figure 12.
"""

from __future__ import annotations

from conftest import ENGINE_BLOCK_BYTES, TUPLES_PER_BLOCK, report_table

from repro.bench import run_convergence_sweep
from repro.db import run_in_db_system
from repro.ml import LinearSVM, LogisticRegression
from repro.storage import SSD_SCALED

BATCH = 16  # scaled from the paper's 128


def test_fig16_minibatch_end_to_end(benchmark, glm_problems):
    def run():
        rows = []
        for dataset, model_name in (("higgs", "svm"), ("susy", "lr")):
            train, test = glm_problems[dataset]
            corgi = run_in_db_system(
                "corgipile", "corgipile", train, test, model_name, SSD_SCALED,
                epochs=8, learning_rate=0.5, block_size=ENGINE_BLOCK_BYTES,
                batch_size=BATCH, seed=0,
            )
            once = run_in_db_system(
                "corgipile", "shuffle_once", train, test, model_name, SSD_SCALED,
                epochs=8, learning_rate=0.5, block_size=ENGINE_BLOCK_BYTES,
                batch_size=BATCH, seed=0,
            )
            none = run_in_db_system(
                "corgipile", "no_shuffle", train, test, model_name, SSD_SCALED,
                epochs=8, learning_rate=0.5, block_size=ENGINE_BLOCK_BYTES,
                batch_size=BATCH, seed=0,
            )
            target = 0.98 * min(
                once.history.final.test_score, corgi.history.final.test_score
            )
            rows.append(
                {
                    "dataset": dataset,
                    "model": model_name,
                    "corgi_acc": round(corgi.history.final.test_score, 4),
                    "once_acc": round(once.history.final.test_score, 4),
                    "none_acc": round(none.history.final.test_score, 4),
                    "corgi_t": corgi.timeline.time_to_reach(target),
                    "once_t": once.timeline.time_to_reach(target),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for row in rows:
        row["speedup"] = (
            round(row["once_t"] / row["corgi_t"], 2)
            if row["corgi_t"] and row["once_t"]
            else None
        )
    report_table(rows, title="Figure 16: mini-batch end-to-end (SSD)", json_name="fig16.json")

    for row in rows:
        assert abs(row["corgi_acc"] - row["once_acc"]) < 0.05, row
        assert row["none_acc"] < row["once_acc"] - 0.03, row
        assert row["speedup"] is not None and row["speedup"] > 1.2, row


def test_fig17_minibatch_convergence(benchmark, glm_problems):
    train, test = glm_problems["susy"]

    def run():
        return run_convergence_sweep(
            train,
            test,
            lambda: LinearSVM(train.n_features),
            ("shuffle_once", "corgipile", "mrs", "sliding_window", "no_shuffle"),
            epochs=12,
            learning_rate=0.5,
            tuples_per_block=TUPLES_PER_BLOCK,
            batch_size=BATCH,
            seed=7,
            dataset_name="susy (mini-batch)",
        )

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)
    report_table(sweep.rows(), title="Figure 17: mini-batch convergence", json_name="fig17.json")

    scores = sweep.converged_scores()
    assert abs(scores["corgipile"] - scores["shuffle_once"]) < 0.04, scores
    assert scores["no_shuffle"] < scores["shuffle_once"] - 0.05, scores
    assert scores["sliding_window"] < scores["shuffle_once"] - 0.03, scores
