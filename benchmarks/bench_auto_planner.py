"""Extension bench: the automatic access-path planner.

``strategy = auto`` probes the table's measured h_D and picks No Shuffle on
already-shuffled tables (unbeatable: pure sequential I/O, no buffer) and
CorgiPile on clustered ones.  Claim: on each layout, auto matches the best
fixed strategy in both accuracy and end-to-end time — the Table 1 decision
procedure, automated.
"""

from __future__ import annotations

import pytest
from conftest import report_table

from repro.data import DATASETS, clustered_by_label
from repro.db import MiniDB
from repro.storage import HDD_SCALED

SQL = (
    "SELECT * FROM {table} TRAIN BY lr WITH strategy = {strategy}, "
    "learning_rate = 0.05, max_epoch_num = 6, block_size = 8KB, seed = 0"
)


def test_auto_planner_matches_best_fixed_strategy(benchmark):
    train, test = DATASETS["susy"].build_split(seed=0)
    layouts = {
        "shuffled": train.shuffled(seed=3),
        "clustered": clustered_by_label(train, seed=0),
    }

    def run():
        rows = []
        for layout_name, data in layouts.items():
            db = MiniDB(device=HDD_SCALED, page_bytes=1024)
            db.create_table("t", data)
            results = {}
            for strategy in ("auto", "no_shuffle", "corgipile"):
                results[strategy] = db.execute(
                    SQL.format(table="t", strategy=strategy), test=test
                )
            for strategy, result in results.items():
                rows.append(
                    {
                        "layout": layout_name,
                        "strategy": strategy,
                        "resolved": result.query.strategy,
                        "final_acc": round(result.history.final.test_score, 4),
                        "total_s": round(result.timeline.total_time_s, 5),
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report_table(rows, title="Auto access-path planner", json_name="auto_planner.json")

    by_key = {(r["layout"], r["strategy"]): r for r in rows}
    # Resolution: shuffled -> no_shuffle, clustered -> corgipile.
    assert by_key[("shuffled", "auto")]["resolved"] == "no_shuffle"
    assert by_key[("clustered", "auto")]["resolved"] == "corgipile"
    for layout in ("shuffled", "clustered"):
        auto = by_key[(layout, "auto")]
        best_fixed = max(
            by_key[(layout, "no_shuffle")]["final_acc"],
            by_key[(layout, "corgipile")]["final_acc"],
        )
        # Auto's accuracy matches the better fixed choice...
        assert auto["final_acc"] > best_fixed - 0.03, (layout, rows)
        # ...at (essentially) that choice's cost.
        resolved = by_key[(layout, auto["resolved"])]
        assert auto["total_s"] == pytest.approx(resolved["total_s"], rel=0.05)

