"""Section 4.2 — the convergence theory, evaluated numerically.

Regenerates the analysis-side artefacts:

* the measured ``h_D`` factor on shuffled vs clustered layouts (h_D ∈ [1, b]);
* the Theorem 1 bound as a function of the buffered-block count ``n``
  (monotone improvement; the α = 1 limit recovers the full-shuffle rate);
* the Theorem 2 non-convex bound with the same behaviour;
* the physical-time comparison against vanilla SGD (CorgiPile always wins
  the latency term; dramatically so on HDD-like devices);
* a measured link: the empirical convergence ordering of CorgiPile across
  buffer sizes follows the bound's prediction.
"""

from __future__ import annotations

from conftest import report_table

from repro.core import CorgiPileShuffle
from repro.data import BlockLayout, clustered_by_label
from repro.ml import ExponentialDecay, LogisticRegression, Trainer
from repro.theory import (
    PhysicalCost,
    corgipile_physical_time,
    hd_factor,
    theorem1_bound,
    theorem2_bound,
    vanilla_sgd_physical_time,
)

BLOCK_SIZE = 40
N_BLOCKS = 135  # higgs-train layout


def test_theory_hd_and_bounds(benchmark, glm_problems):
    train, test = glm_problems["higgs"]
    shuffled = train.shuffled(seed=9)
    layout = BlockLayout(train.n_tuples, BLOCK_SIZE)
    model = LogisticRegression(train.n_features)

    def run():
        hd_clustered = hd_factor(model, train, layout)
        hd_shuffled = hd_factor(model, shuffled, layout)
        return hd_clustered, hd_shuffled

    hd_clustered, hd_shuffled = benchmark.pedantic(run, rounds=1, iterations=1)

    sigma2 = 1.0
    # Evaluate the bounds in their asymptotic regime: the non-leading terms
    # (β/T², γm³/T³, γm³/T^{3/2}) vanish only once T ≫ m³-ish quantities,
    # which is exactly the "after finite epochs" setting of the underlying
    # random-reshuffling theory.  The orderings, not the magnitudes, matter.
    T = 10**12
    bound_rows = []
    for n in (1, 7, 14, 34, 68, 135):
        bound_rows.append(
            {
                "buffered_blocks_n": n,
                "theorem1": theorem1_bound(T, n, 135, BLOCK_SIZE, sigma2, hd_clustered),
                "theorem2": theorem2_bound(T, n, 135, BLOCK_SIZE, sigma2, hd_clustered),
            }
        )
    report_table(
        [
            {"layout": "clustered", "h_D": round(hd_clustered, 3), "b": BLOCK_SIZE},
            {"layout": "shuffled", "h_D": round(hd_shuffled, 3), "b": BLOCK_SIZE},
        ],
        title="h_D factor (Section 4.2)",
        json_name="theory_hd.json",
    )
    report_table(bound_rows, title="Theorem 1/2 bounds vs buffer size", json_name="theory_bounds.json")

    # h_D ∈ [1, b]: near 1 when shuffled, inflated when clustered.
    assert 0.5 <= hd_shuffled <= 2.0
    assert hd_shuffled < hd_clustered <= BLOCK_SIZE
    # Bounds improve monotonically with the buffer and the alpha=1 limit
    # (full shuffle) is the best.
    t1 = [r["theorem1"] for r in bound_rows]
    assert t1 == sorted(t1, reverse=True)
    # Theorem 2's case 2 (n = N) carries an m³/T term that only vanishes
    # for astronomically long runs, so it is compared at its own asymptote.
    t2 = [r["theorem2"] for r in bound_rows[:-1]]
    assert t2 == sorted(t2, reverse=True)
    t_huge = 10**24
    full = theorem2_bound(t_huge, 135, 135, BLOCK_SIZE, sigma2, hd_clustered)
    partial = theorem2_bound(t_huge, 68, 135, BLOCK_SIZE, sigma2, hd_clustered)
    assert full < partial


def test_theory_physical_time(benchmark):
    hdd_like = PhysicalCost(t_latency_s=8e-3, t_transfer_s=2e-6)
    ssd_like = PhysicalCost(t_latency_s=1.2e-4, t_transfer_s=3e-7)

    def run():
        rows = []
        for name, cost in (("hdd", hdd_like), ("ssd", ssd_like)):
            vanilla = vanilla_sgd_physical_time(1e-3, sigma2=1.0, cost=cost)
            corgi = corgipile_physical_time(
                1e-3, sigma2=1.0, hd=8.0, block_size=1000,
                n_blocks_buffered=10, n_blocks_total=100, cost=cost,
            )
            rows.append(
                {
                    "device": name,
                    "vanilla_sgd_s": round(vanilla, 3),
                    "corgipile_s": round(corgi, 3),
                    "speedup": round(vanilla / corgi, 1),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report_table(rows, title="Section 4.2: physical time vs vanilla SGD", json_name="theory_time.json")
    for row in rows:
        assert row["speedup"] > 1.0
    # Latency-bound devices benefit most.
    assert rows[0]["speedup"] > rows[1]["speedup"]


def test_theory_bound_predicts_empirical_ordering(benchmark, glm_problems):
    """Larger buffers => better predicted rate => no worse measured loss."""
    train, test = glm_problems["higgs"]
    layout = BlockLayout(train.n_tuples, BLOCK_SIZE)

    def run():
        losses = {}
        for n in (2, 13, 67):
            cp = CorgiPileShuffle(layout, buffer_blocks=n, seed=3)
            history = Trainer(
                LogisticRegression(train.n_features), train, cp,
                epochs=3, schedule=ExponentialDecay(0.05), test=test,
            ).run()
            losses[n] = history.final.train_loss
        return losses

    losses = benchmark.pedantic(run, rounds=1, iterations=1)
    report_table(
        [{"buffered_blocks": n, "train_loss_after_3_epochs": round(l, 4)} for n, l in losses.items()],
        title="Measured: loss after 3 epochs vs buffer size",
    )
    # The tiny buffer must not beat the big buffer (theory: rate improves
    # with n); allow equality-level noise between adjacent sizes.
    assert losses[67] <= losses[2] + 0.01


def test_theory_sampling_identities(benchmark, glm_problems):
    """Numerically verify the proof's I2/I4/I5 moment computations.

    The Appendix derives E[Σ∇f_ψ(k)] = (n/N)·m·∇F and the
    finite-population variance n(N−n)/(N−1)·E‖S_l − b∇F‖² for the
    without-replacement block sample.  Both are checked by Monte Carlo on
    real model gradients over the clustered higgs stand-in.
    """
    from repro.theory import (
        per_example_gradients,
        verify_expectation_identity,
        verify_variance_identity,
    )

    train, _ = glm_problems["higgs"]
    layout = BlockLayout(train.n_tuples, BLOCK_SIZE)
    model = LogisticRegression(train.n_features)

    def run():
        grads = per_example_gradients(model, train)
        rows = []
        for n in (3, 13, 67):
            exp = verify_expectation_identity(grads, layout, n, n_samples=3000)
            var = verify_variance_identity(grads, layout, n, n_samples=3000)
            rows.append(
                {
                    "buffered_blocks": n,
                    "expectation_rel_err": round(exp.relative_error, 4),
                    "variance_analytic": round(var.analytic, 2),
                    "variance_mc": round(var.monte_carlo, 2),
                    "variance_rel_err": round(var.relative_error, 4),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report_table(rows, title="Proof identities: analytic vs Monte Carlo",
                 json_name="theory_identities.json")
    for row in rows:
        assert row["expectation_rel_err"] < 0.1, row
        assert row["variance_rel_err"] < 0.1, row
    # The finite-population correction: variance peaks mid-range and
    # vanishes as n -> N.
    assert rows[1]["variance_analytic"] > rows[0]["variance_analytic"]
