"""Figure 18 — linear regression (continuous target) and softmax regression
(multiclass) inside the DB.

The paper trains linear regression on YearPredictionMSD (reporting R²) and
softmax regression on mnist8m; CorgiPile matches Shuffle Once's metric and
is 1.6-2.1× faster end-to-end.
"""

from __future__ import annotations

from conftest import ENGINE_BLOCK_BYTES, report_table

from repro.data import DATASETS, clustered_by_label, ordered_by_feature
from repro.db import run_in_db_system
from repro.storage import SSD_SCALED


def _run_case(dataset_name, model_name, clustered, test, *, lr, batch_size, epochs=8):
    results = {}
    for strategy in ("corgipile", "shuffle_once", "no_shuffle"):
        results[strategy] = run_in_db_system(
            "corgipile", strategy, clustered, test, model_name, SSD_SCALED,
            epochs=epochs, learning_rate=lr, block_size=ENGINE_BLOCK_BYTES,
            batch_size=batch_size, seed=0,
        )
    once = results["shuffle_once"]
    corgi = results["corgipile"]
    none = results["no_shuffle"]
    target = 0.98 * min(once.history.final.test_score, corgi.history.final.test_score)
    corgi_t = corgi.timeline.time_to_reach(target)
    once_t = once.timeline.time_to_reach(target)
    return {
        "dataset": dataset_name,
        "model": model_name,
        "metric": "R^2" if model_name == "linreg" else "accuracy",
        "corgi": round(corgi.history.final.test_score, 4),
        "once": round(once.history.final.test_score, 4),
        "none": round(none.history.final.test_score, 4),
        "none_epoch1": round(none.history.records[0].test_score, 4),
        "once_epoch1": round(once.history.records[0].test_score, 4),
        "speedup": round(once_t / corgi_t, 2) if corgi_t and once_t else None,
    }


def test_fig18_linear_and_softmax_regression(benchmark):
    lin_train, lin_test = DATASETS["yearpred-like"].build_split(seed=0)
    # Continuous labels cannot be clustered by class: the paper orders the
    # regression dataset by its target, the analogous worst case.
    lin_clustered = lin_train.reorder(
        __import__("numpy").argsort(lin_train.y), suffix="by-target"
    )
    soft_train, soft_test = DATASETS["mnist8m-like"].build_split(seed=0)
    soft_clustered = clustered_by_label(soft_train, seed=0)

    def run():
        return [
            _run_case("yearpred-like", "linreg", lin_clustered, lin_test,
                      lr=0.02, batch_size=16),
            _run_case("mnist8m-like", "softmax", soft_clustered, soft_test,
                      lr=0.3, batch_size=16),
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report_table(rows, title="Figure 18: linreg + softmax in-DB", json_name="fig18.json")

    for row in rows:
        assert abs(row["corgi"] - row["once"]) < 0.05, row
        # No Shuffle: lower converged metric or slower convergence (the
        # easy regression recovers its R^2 eventually but starts behind).
        assert (
            row["none"] < row["once"] - 0.02
            or row["none_epoch1"] < row["once_epoch1"] - 0.02
        ), row
        assert row["speedup"] is not None and row["speedup"] > 1.2, row
    # Linear regression reaches a high R^2; softmax a high accuracy.
    assert rows[0]["once"] > 0.8
    assert rows[1]["once"] > 0.8
