"""Figure 13 — per-epoch time: No Shuffle vs CorgiPile vs single-buffer.

Claims: CorgiPile's per-epoch time is within ~12 % of the fastest No
Shuffle baseline (double buffering hides the block/tuple shuffle work), the
single-buffer variant is up to ~24 % slower than double-buffered CorgiPile,
and small datasets run at memory speed after the first epoch.
"""

from __future__ import annotations

import threading
import time

import numpy as np
from conftest import ENGINE_BLOCK_BYTES, GLM_DATASETS, report_loader_stats, report_table

from repro import obs
from repro.obs import LoaderMetrics
from repro.db import Catalog, overlap_crosscheck, run_in_db_system
from repro.db.engine import ENGINE_PROFILE
from repro.db.operators import SeqScanOperator
from repro.db.threaded import ThreadedTupleShuffleOperator
from repro.db.timing import RuntimeContext
from repro.storage import HDD_SCALED, SSD_SCALED

EPOCHS = 4


def _steady_epoch_s(result) -> float:
    """Mean per-epoch wall time after the cold first epoch."""
    times = [p.time_s for p in result.timeline.points]
    walls = np.diff([result.timeline.setup_s] + times)
    return float(np.mean(walls[1:])) if len(walls) > 1 else float(walls[0])


def _run(glm_problems):
    rows = []
    for device in (HDD_SCALED, SSD_SCALED):
        for dataset in GLM_DATASETS:
            train, test = glm_problems[dataset]
            per = {}
            for strategy in ("no_shuffle", "corgipile", "corgipile_single_buffer"):
                result = run_in_db_system(
                    "corgipile", strategy, train, test, "svm", device,
                    epochs=EPOCHS, block_size=ENGINE_BLOCK_BYTES, seed=0,
                )
                per[strategy] = _steady_epoch_s(result)
            rows.append(
                {
                    "device": device.name,
                    "dataset": dataset,
                    "no_shuffle_s": round(per["no_shuffle"], 6),
                    "corgipile_s": round(per["corgipile"], 6),
                    "single_buffer_s": round(per["corgipile_single_buffer"], 6),
                    "corgi_vs_ns": round(per["corgipile"] / per["no_shuffle"], 3),
                    "double_vs_single": round(
                        per["corgipile"] / per["corgipile_single_buffer"], 3
                    ),
                }
            )
    return rows


def test_fig13_per_epoch_overhead(benchmark, glm_problems):
    rows = benchmark.pedantic(lambda: _run(glm_problems), rounds=1, iterations=1)
    report_table(rows, title="Figure 13: per-epoch time", json_name="fig13.json")

    for row in rows:
        # CorgiPile within ~20 % of No Shuffle (paper: <= 11.7 %).
        assert row["corgi_vs_ns"] < 1.2, row
        # Double buffering never slower than single buffering.
        assert row["double_vs_single"] <= 1.0 + 1e-9, row
    # Double buffering pays off visibly on at least some configurations
    # (the paper reports up to 23.6 % shorter epochs).
    assert min(r["double_vs_single"] for r in rows) < 0.95


def test_fig13_measured_overlap(glm_problems):
    """Measured double-buffering overlap from the real threaded operator.

    The table above charges double buffering through the analytic
    ``pipelined_time`` model; here the actual two-thread TupleShuffle of
    Section 6.3 runs over a real heap table, and the loader-observability
    counters report how much of the cross-thread waiting the write thread
    absorbed (overlap_fraction → 1.0 means filling was fully hidden behind
    consumption).
    """
    train, _ = glm_problems["higgs"]
    table = Catalog(page_bytes=1024).create_table("fig13", train)
    buffer_tuples = max(1, table.n_tuples // 10)

    baseline_threads = threading.active_count()
    stats = LoaderMetrics("threaded-tuple-shuffle")
    ctx = RuntimeContext(device=SSD_SCALED, compute=ENGINE_PROFILE)
    op = ThreadedTupleShuffleOperator(
        SeqScanOperator(table, ctx), buffer_tuples, seed=0, stats=stats
    )
    # Trace the run so the span-derived overlap can audit the counters.
    obs.reset()
    with obs.trace_to() as (tracer, _registry):
        wall_t0 = time.perf_counter()
        op.open()
        sink = 0.0
        for epoch in range(2):
            record = op.next()
            while record is not None:
                # A stand-in for the per-tuple SGD update the read side performs.
                features = np.asarray(record.features, dtype=np.float64)
                sink += float(features @ features)
                record = op.next()
            if epoch == 0:
                op.rescan()
        op.close()
        wall_s = time.perf_counter() - wall_t0

    report_loader_stats(
        [stats],
        title="Figure 13 (measured): double-buffer overlap, real write thread",
        json_name="fig13_loader_stats.json",
    )

    d = stats.as_dict()
    fills_per_epoch = int(np.ceil(table.n_tuples / buffer_tuples))
    assert d["buffers_filled"] == d["buffers_drained"] == 2 * fills_per_epoch
    assert d["tuples_buffered"] == 2 * table.n_tuples
    assert d["threads_started"] == 2 and d["live_threads"] == 0
    assert 0.0 <= d["overlap_fraction"] <= 1.0
    assert threading.active_count() == baseline_threads
    assert sink > 0.0

    # Cross-check: the counter-derived overlap must match the independent
    # span-derived overlap (producer busy + consumer busy − wall).
    check = overlap_crosscheck(stats, tracer.spans, wall_s)
    report_table(
        [{k: round(v, 6) if isinstance(v, float) else v for k, v in check.items()}],
        title="Figure 13: overlap cross-check (counters vs spans)",
        json_name="fig13_overlap_crosscheck.json",
    )
    assert check["ok"], check
