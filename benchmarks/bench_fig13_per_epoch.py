"""Figure 13 — per-epoch time: No Shuffle vs CorgiPile vs single-buffer.

Claims: CorgiPile's per-epoch time is within ~12 % of the fastest No
Shuffle baseline (double buffering hides the block/tuple shuffle work), the
single-buffer variant is up to ~24 % slower than double-buffered CorgiPile,
and small datasets run at memory speed after the first epoch.
"""

from __future__ import annotations

import numpy as np
from conftest import ENGINE_BLOCK_BYTES, GLM_DATASETS, report_table

from repro.db import run_in_db_system
from repro.storage import HDD_SCALED, SSD_SCALED

EPOCHS = 4


def _steady_epoch_s(result) -> float:
    """Mean per-epoch wall time after the cold first epoch."""
    times = [p.time_s for p in result.timeline.points]
    walls = np.diff([result.timeline.setup_s] + times)
    return float(np.mean(walls[1:])) if len(walls) > 1 else float(walls[0])


def _run(glm_problems):
    rows = []
    for device in (HDD_SCALED, SSD_SCALED):
        for dataset in GLM_DATASETS:
            train, test = glm_problems[dataset]
            per = {}
            for strategy in ("no_shuffle", "corgipile", "corgipile_single_buffer"):
                result = run_in_db_system(
                    "corgipile", strategy, train, test, "svm", device,
                    epochs=EPOCHS, block_size=ENGINE_BLOCK_BYTES, seed=0,
                )
                per[strategy] = _steady_epoch_s(result)
            rows.append(
                {
                    "device": device.name,
                    "dataset": dataset,
                    "no_shuffle_s": round(per["no_shuffle"], 6),
                    "corgipile_s": round(per["corgipile"], 6),
                    "single_buffer_s": round(per["corgipile_single_buffer"], 6),
                    "corgi_vs_ns": round(per["corgipile"] / per["no_shuffle"], 3),
                    "double_vs_single": round(
                        per["corgipile"] / per["corgipile_single_buffer"], 3
                    ),
                }
            )
    return rows


def test_fig13_per_epoch_overhead(benchmark, glm_problems):
    rows = benchmark.pedantic(lambda: _run(glm_problems), rounds=1, iterations=1)
    report_table(rows, title="Figure 13: per-epoch time", json_name="fig13.json")

    for row in rows:
        # CorgiPile within ~20 % of No Shuffle (paper: <= 11.7 %).
        assert row["corgi_vs_ns"] < 1.2, row
        # Double buffering never slower than single buffering.
        assert row["double_vs_single"] <= 1.0 + 1e-9, row
    # Double buffering pays off visibly on at least some configurations
    # (the paper reports up to 23.6 % shorter epochs).
    assert min(r["double_vs_single"] for r in rows) < 0.95
