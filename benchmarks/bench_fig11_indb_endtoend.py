"""Figure 11 — end-to-end in-DB training time, five datasets × HDD/SSD.

Grid: {MADlib, Bismarck} × {No Shuffle, Shuffle Once} vs CorgiPile, SVM on
the clustered Table 2 datasets, on the scaled HDD and SSD models.  Claims:

* CorgiPile converges to Shuffle Once's accuracy but 1.6-12.8× faster
  end-to-end (Shuffle Once is still shuffling when CorgiPile has converged);
* No Shuffle finishes fast but at much lower accuracy;
* MADlib is slower than Bismarck (extra per-tuple statistics work);
* MADlib's dense high-dimensional LR is pathologically slow (the stderr
  matrix computation — it never finished in the paper);
* MADlib cannot train sparse criteo at all.
"""

from __future__ import annotations

import pytest
from conftest import ENGINE_BLOCK_BYTES, GLM_DATASETS, emit, report_table

from repro.db import run_in_db_system
from repro.storage import HDD_SCALED, SSD_SCALED

EPOCHS = 8
LR = 0.1

CONFIGS = [
    ("corgipile", "corgipile"),
    ("bismarck", "no_shuffle"),
    ("bismarck", "shuffle_once"),
    ("madlib", "no_shuffle"),
    ("madlib", "shuffle_once"),
]


def _run_grid(glm_problems):
    records = []
    for device in (HDD_SCALED, SSD_SCALED):
        for dataset in GLM_DATASETS:
            train, test = glm_problems[dataset]
            results = {}
            for system, strategy in CONFIGS:
                if system == "madlib" and train.is_sparse:
                    records.append(
                        {
                            "device": device.name,
                            "dataset": dataset,
                            "system": f"{system}/{strategy}",
                            "final_acc": None,
                            "setup_s": None,
                            "total_s": None,
                            "time_to_target_s": "unsupported (sparse)",
                        }
                    )
                    continue
                results[(system, strategy)] = run_in_db_system(
                    system,
                    strategy,
                    train,
                    test,
                    "svm",
                    device,
                    epochs=EPOCHS,
                    learning_rate=LR,
                    block_size=ENGINE_BLOCK_BYTES,
                    seed=0,
                )
            target = 0.98 * results[("bismarck", "shuffle_once")].history.final.test_score
            for (system, strategy), result in results.items():
                reach = result.timeline.time_to_reach(target)
                records.append(
                    {
                        "device": device.name,
                        "dataset": dataset,
                        "system": f"{system}/{strategy}",
                        "final_acc": round(result.history.final.test_score, 4),
                        "setup_s": round(result.timeline.setup_s, 5),
                        "total_s": round(result.timeline.total_time_s, 5),
                        "time_to_target_s": round(reach, 5) if reach is not None else None,
                        "_target": target,
                    }
                )
    return records


def test_fig11_end_to_end(benchmark, glm_problems):
    records = benchmark.pedantic(lambda: _run_grid(glm_problems), rounds=1, iterations=1)
    printable = [{k: v for k, v in r.items() if not k.startswith("_")} for r in records]
    report_table(printable, title="Figure 11: end-to-end in-DB training", json_name="fig11.json")

    by_key = {(r["device"], r["dataset"], r["system"]): r for r in records}
    speedups = []
    for device in ("hdd-scaled", "ssd-scaled"):
        for dataset in GLM_DATASETS:
            corgi = by_key[(device, dataset, "corgipile/corgipile")]
            so_bis = by_key[(device, dataset, "bismarck/shuffle_once")]
            ns_bis = by_key[(device, dataset, "bismarck/no_shuffle")]
            # Accuracy: CorgiPile ≈ Shuffle Once, No Shuffle below.
            assert abs(corgi["final_acc"] - so_bis["final_acc"]) < 0.05, (device, dataset)
            # CorgiPile reaches the target accuracy; and does it faster than
            # the Shuffle-Once systems end to end.
            assert corgi["time_to_target_s"] is not None, (device, dataset)
            for system in ("bismarck/shuffle_once", "madlib/shuffle_once"):
                other = by_key.get((device, dataset, system))
                if other is None or other["time_to_target_s"] in (None, "unsupported (sparse)"):
                    continue
                speedup = other["time_to_target_s"] / corgi["time_to_target_s"]
                speedups.append((device, dataset, system, round(speedup, 2)))
                assert speedup > 1.2, (device, dataset, system, speedup)
            # No Shuffle converges lower on the low-dimensional datasets
            # (epsilon/yfcc have limited gaps, as in the paper).
            if dataset in ("higgs", "susy", "criteo"):
                assert ns_bis["final_acc"] < so_bis["final_acc"] - 0.04, (device, dataset)

    emit(f"\nCorgiPile speedups over Shuffle-Once systems: {speedups}")
    best = max(s[-1] for s in speedups)
    assert best > 2.0, f"expected multi-x best-case speedup, got {best}"


def test_fig11_madlib_lr_highdim_pathology(benchmark, glm_problems):
    train, test = glm_problems["epsilon"]

    def run():
        madlib = run_in_db_system(
            "madlib", "no_shuffle", train, test, "lr", SSD_SCALED,
            epochs=1, block_size=ENGINE_BLOCK_BYTES,
        )
        bismarck = run_in_db_system(
            "bismarck", "no_shuffle", train, test, "lr", SSD_SCALED,
            epochs=1, block_size=ENGINE_BLOCK_BYTES,
        )
        return madlib, bismarck

    madlib, bismarck = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = madlib.resources.compute_seconds / bismarck.resources.compute_seconds
    report_table(
        [
            {"system": "madlib LR (stderr matrix work)", "epoch_compute_s": round(madlib.resources.compute_seconds, 5)},
            {"system": "bismarck LR", "epoch_compute_s": round(bismarck.resources.compute_seconds, 5)},
            {"system": "ratio", "epoch_compute_s": round(ratio, 2)},
        ],
        title="Figure 11 footnote: MADlib LR on dense high-dimensional data",
    )
    assert ratio > 5.0


def test_fig11_madlib_sparse_unsupported(benchmark, glm_problems):
    train, test = glm_problems["criteo"]

    def attempt():
        with pytest.raises(ValueError, match="sparse"):
            run_in_db_system("madlib", "no_shuffle", train, test, "lr", SSD_SCALED, epochs=1)

    benchmark.pedantic(attempt, rounds=1, iterations=1)
