"""Figure 15 — per-epoch time: in-DB CorgiPile vs PyTorch outside the DB.

Claims: (1) in-DB CorgiPile is multiple times faster than per-tuple PyTorch
on datasets with many tuples (the per-tuple Python↔C++ invocation dominates);
(2) the compressed (TOAST) dense dataset reverses the comparison — the DB
pays per-tuple decompression that PyTorch's in-memory copy avoids;
(3) outside the DB, PyTorch-with-CorgiPile costs only a small overhead over
PyTorch-with-No-Shuffle.
"""

from __future__ import annotations

from conftest import ENGINE_BLOCK_BYTES, report_table

from repro.db import PYTORCH_PROFILE, run_framework, run_in_db_system
from repro.ml import LogisticRegression
from repro.storage import SSD_SCALED

DATASETS_USED = ("higgs", "susy", "criteo")


def test_fig15_in_db_vs_pytorch(benchmark, glm_problems):
    def run():
        rows = []
        for dataset in DATASETS_USED:
            train, test = glm_problems[dataset]
            indb = run_in_db_system(
                "corgipile", "corgipile", train, test, "lr", SSD_SCALED,
                epochs=3, block_size=ENGINE_BLOCK_BYTES, seed=0,
            )
            epoch_times = [p.time_s for p in indb.timeline.points]
            indb_epoch = epoch_times[-1] - epoch_times[-2]
            torch = run_framework(
                train, test, LogisticRegression(train.n_features), "no_shuffle",
                SSD_SCALED, epochs=1, in_memory=True, compute=PYTORCH_PROFILE,
            )
            rows.append(
                {
                    "dataset": dataset,
                    "in_db_corgipile_s": round(indb_epoch, 5),
                    "pytorch_s": round(torch.per_epoch_s, 5),
                    "pytorch_over_indb": round(torch.per_epoch_s / indb_epoch, 2),
                }
            )
        # The compressed high-dimensional dataset (epsilon stands in for the
        # paper's TOAST case): per-tuple decompression hits the DB only.
        train, test = glm_problems["epsilon"]
        indb = run_in_db_system(
            "corgipile", "corgipile", train, test, "lr", SSD_SCALED,
            epochs=3, block_size=ENGINE_BLOCK_BYTES, compress=True, seed=0,
        )
        epoch_times = [p.time_s for p in indb.timeline.points]
        indb_epoch = epoch_times[-1] - epoch_times[-2]
        torch = run_framework(
            train, test, LogisticRegression(train.n_features), "no_shuffle",
            SSD_SCALED, epochs=1, in_memory=True, compute=PYTORCH_PROFILE,
        )
        rows.append(
            {
                "dataset": "epsilon (TOAST)",
                "in_db_corgipile_s": round(indb_epoch, 5),
                "pytorch_s": round(torch.per_epoch_s, 5),
                "pytorch_over_indb": round(torch.per_epoch_s / indb_epoch, 2),
            }
        )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report_table(rows, title="Figure 15: in-DB CorgiPile vs PyTorch", json_name="fig15.json")

    by_ds = {r["dataset"]: r for r in rows}
    # Many-tuple datasets: in-DB wins by 2x+ (paper: 2-16x).
    for dataset in DATASETS_USED:
        assert by_ds[dataset]["pytorch_over_indb"] > 2.0, by_ds[dataset]
    # Compressed dense dataset: PyTorch wins (paper: 2-3x).
    assert by_ds["epsilon (TOAST)"]["pytorch_over_indb"] < 1.0, by_ds["epsilon (TOAST)"]


def test_fig15_corgipile_overhead_outside_db(benchmark, glm_problems):
    train, test = glm_problems["susy"]

    def run():
        none = run_framework(
            train, test, LogisticRegression(train.n_features), "no_shuffle",
            SSD_SCALED, epochs=1, compute=PYTORCH_PROFILE,
        )
        corgi = run_framework(
            train, test, LogisticRegression(train.n_features), "corgipile",
            SSD_SCALED, epochs=1, compute=PYTORCH_PROFILE, tuples_per_block=40,
        )
        return none, corgi

    none, corgi = benchmark.pedantic(run, rounds=1, iterations=1)
    overhead = corgi.per_epoch_s / none.per_epoch_s - 1.0
    report_table(
        [
            {"mode": "PyTorch + No Shuffle", "per_epoch_s": round(none.per_epoch_s, 5)},
            {"mode": "PyTorch + CorgiPile", "per_epoch_s": round(corgi.per_epoch_s, 5)},
            {"mode": "overhead", "per_epoch_s": f"{overhead:.1%}"},
        ],
        title="Figure 15 (outside DB): CorgiPile overhead in PyTorch",
    )
    # Paper: up to 16% overhead.
    assert overhead < 0.2
