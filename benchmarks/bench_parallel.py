#!/usr/bin/env python
"""Scaling bench for the multi-process data-parallel engine.

Trains the dense quick config at 1/2/4 real worker processes (epoch and
sync aggregation) and records per-epoch walls, tuple throughput, measured
coordination overhead, and the epoch-throughput speedup vs one worker into
``benchmarks/results/bench_parallel.json`` plus the repo-root
``BENCH_parallel.json`` snapshot that travels with the PR.

Every speedup carries a ``speedup_source`` field: ``measured`` when the host
has at least as many cores as workers, ``modeled`` otherwise (single-core
hosts serialise the workers, so the bench measures compute and coordination
separately and models only the division of compute across cores — see
``repro.bench.parallelbench`` for the accounting).

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel.py --quick          # default
    PYTHONPATH=src python benchmarks/bench_parallel.py --full --seed 1
    PYTHONPATH=src python benchmarks/bench_parallel.py --quick --check  # CI gate

``--check`` exits non-zero if the headline epoch-mode speedup at the
largest worker count falls below 2x.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench import format_table, parallel_bench_rows, run_parallel_bench  # noqa: E402

RESULTS_PATH = Path(__file__).resolve().parent / "results" / "bench_parallel.json"
SNAPSHOT_PATH = REPO_ROOT / "BENCH_parallel.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--quick", action="store_true", default=True,
        help="small dense workload, seconds to run (default)",
    )
    mode.add_argument(
        "--full", action="store_true",
        help="larger workload for more stable numbers",
    )
    parser.add_argument("--seed", type=int, default=0, help="RNG seed (default 0)")
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero if the 4-worker epoch speedup is below 2x",
    )
    parser.add_argument(
        "--no-snapshot", action="store_true",
        help="skip writing the repo-root BENCH_parallel.json",
    )
    args = parser.parse_args(argv)

    doc = run_parallel_bench(quick=not args.full, seed=args.seed)
    summary = doc["summary"]
    print(
        format_table(
            parallel_bench_rows(doc),
            title=(
                f"parallel scaling ({doc['config']}, seed={args.seed}, "
                f"host_cores={doc['host_cores']})"
            ),
        )
    )
    print(
        f"epoch-mode speedup at {summary['headline_workers']} workers: "
        f"{summary['epoch_speedup_at_max_workers']:.2f}x "
        f"({summary['speedup_source']})"
    )

    payload = json.dumps(doc, indent=2) + "\n"
    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(payload)
    print(f"wrote {RESULTS_PATH}")
    if not args.no_snapshot:
        SNAPSHOT_PATH.write_text(payload)
        print(f"wrote {SNAPSHOT_PATH}")

    if args.check and summary["epoch_speedup_at_max_workers"] < 2.0:
        print(
            f"SCALING REGRESSION: epoch speedup at {summary['headline_workers']} "
            f"workers {summary['epoch_speedup_at_max_workers']:.2f}x < 2.0x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
