"""Shared fixtures and reporting helpers for the benchmark suite.

Every bench target regenerates one table or figure of the paper: it runs the
experiment (real SGD over real index streams; wall-clock charged through the
device models), prints the same rows/series the paper reports, saves the raw
records under ``benchmarks/results/``, and asserts the paper's *shape* claims
(who wins, by roughly what factor).

The printed tables are written to the unbuffered real stdout so they appear
in the pytest output even without ``-s``.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

from repro.bench import format_table, save_records
from repro.data import DATASETS, clustered_by_label

RESULTS_DIR = Path(__file__).parent / "results"

GLM_DATASETS = ("higgs", "susy", "epsilon", "criteo", "yfcc")

# Scaled-down physical parameters: the paper uses 10 MB blocks on multi-GB
# tables (thousands of blocks); our tables are ~10^3 smaller, so blocks are
# ~100 tuples and the engine runs 1 KB pages with 8 KB blocks.
TUPLES_PER_BLOCK = 40
ENGINE_BLOCK_BYTES = 8 * 1024


def emit(text: str) -> None:
    """Write report text to the real stdout (bypasses pytest capture)."""
    print(text, file=sys.__stdout__, flush=True)


def report_table(rows, columns=None, title=None, json_name=None) -> None:
    emit("")
    emit(format_table(rows, columns, title))
    if json_name:
        save_records(list(rows), RESULTS_DIR / json_name)


def report_loader_stats(stats_list, title, json_name=None) -> None:
    """Print the measured loader-observability counters for a bench target.

    Each element of ``stats_list`` is a :class:`repro.obs.LoaderMetrics` (or
    a snapshot dict); rows show queue depth, producer stall / consumer wait,
    buffers filled/drained, thread counts, and the measured overlap
    fraction, so figures that previously only had the analytic
    ``pipelined_time`` model can report what the real threads did.
    """
    from repro.db.timing import overlap_report

    report_table([overlap_report(s) for s in stats_list], title=title, json_name=json_name)


@pytest.fixture(scope="session")
def glm_problems():
    """name -> (clustered train, test) for the five Table 2 GLM datasets."""
    problems = {}
    for name in GLM_DATASETS:
        train, test = DATASETS[name].build_split(seed=0)
        problems[name] = (clustered_by_label(train, seed=0), test)
    return problems


@pytest.fixture(scope="session")
def small_glm_problems(glm_problems):
    """The low-dimensional subset used by the heavier sweeps."""
    return {name: glm_problems[name] for name in ("higgs", "susy")}
