"""Consolidate benchmark results into one text report.

Run after ``pytest benchmarks/ --benchmark-only``:

    python benchmarks/make_report.py

Reads every ``results/*.json`` the bench targets saved and renders them as
aligned tables into ``results/REPORT.txt`` (and stdout) — the measured
counterpart of EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.bench import format_table  # noqa: E402

RESULTS_DIR = Path(__file__).parent / "results"

TITLES = {
    "fig01": "Figure 1: SVM on clustered higgs (motivation)",
    "fig02_glm": "Figure 2 (GLM): strategies on clustered vs shuffled criteo-like",
    "fig02_dl": "Figure 2 (DL): strategies on clustered cifar-like",
    "fig03_04": "Figures 3-4: shuffled-order signatures",
    "tab01": "Table 1 (measured): strategy summary",
    "fig05": "Figure 5: multi- vs single-process CorgiPile",
    "fig07": "Figure 7: ImageNet-like end-to-end",
    "fig08": "Figure 8: clustered cifar-like, two batch sizes",
    "fig09": "Figure 9: clustered yelp-like text classification",
    "fig10": "Figure 10: Adam instead of SGD",
    "fig11": "Figure 11: in-DB end-to-end (5 datasets x HDD/SSD)",
    "tab02": "Table 2: dataset registry",
    "tab03": "Table 3: Shuffle Once vs CorgiPile accuracy",
    "fig12": "Figure 12: GLM convergence by strategy",
    "fig13": "Figure 13: per-epoch overhead",
    "fig14a": "Figure 14(a): buffer-size sensitivity",
    "fig14b": "Figure 14(b): block-size sweep",
    "fig15": "Figure 15: in-DB CorgiPile vs PyTorch",
    "fig16": "Figure 16: mini-batch end-to-end",
    "fig17": "Figure 17: mini-batch convergence",
    "fig18": "Figure 18: linear + softmax regression",
    "fig19": "Figure 19: feature-ordered datasets",
    "fig20": "Figure 20: random vs sequential throughput",
    "appB": "Appendix B: resource usage",
    "theory_hd": "Section 4.2: measured h_D",
    "theory_bounds": "Section 4.2: Theorem 1/2 bounds vs buffer size",
    "theory_time": "Section 4.2: physical time vs vanilla SGD",
    "theory_identities": "Appendix B: proof identities (analytic vs Monte Carlo)",
    "ablation_sampled": "Ablation: sampled vs full-pass CorgiPile",
    "ablation_blockonly": "Ablation: tuple-level shuffle vs block size",
    "ablation_distributed": "Ablation: segmented-engine scaling",
}


def main() -> int:
    if not RESULTS_DIR.exists():
        print("no results/ directory — run `pytest benchmarks/ --benchmark-only` first")
        return 1
    sections: list[str] = ["CorgiPile reproduction — measured benchmark results", "=" * 60]
    for stem, title in TITLES.items():
        path = RESULTS_DIR / f"{stem}.json"
        if not path.exists():
            sections.append(f"\n[{stem}] missing — bench not run yet")
            continue
        rows = json.loads(path.read_text())
        if not isinstance(rows, list) or not rows:
            continue
        sections.append("")
        sections.append(format_table(rows, title=title))
    report = "\n".join(sections) + "\n"
    out = RESULTS_DIR / "REPORT.txt"
    out.write_text(report)
    print(report)
    print(f"(written to {out})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
