"""Figure 8 — deep models on clustered cifar-like data, batch sizes 128/256.

The paper trains VGG19/ResNet18 on clustered cifar-10; our MLP stand-in
reproduces the ordering: CorgiPile ≈ Shuffle Once, while Sliding Window and
No Shuffle converge far lower at both batch sizes.
"""

from __future__ import annotations

from conftest import report_table

from repro.bench import run_convergence_sweep
from repro.data import DATASETS, clustered_by_label
from repro.ml import MLPClassifier

STRATEGIES = ("shuffle_once", "corgipile", "mrs", "sliding_window", "no_shuffle")


def test_fig08_cifar_batch_sizes(benchmark):
    train, test = DATASETS["cifar10-like"].build_split(seed=0)
    clustered = clustered_by_label(train, seed=0)

    def run():
        sweeps = {}
        for batch_size in (16, 32):  # scaled from the paper's 128/256
            sweeps[batch_size] = run_convergence_sweep(
                clustered,
                test,
                lambda: MLPClassifier(train.n_features, 32, train.n_classes, seed=0),
                STRATEGIES,
                epochs=12,
                learning_rate=0.1,
                tuples_per_block=40,
                batch_size=batch_size,
                seed=1,
                dataset_name=f"cifar-like bs={batch_size}",
            )
        return sweeps

    sweeps = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [r for sweep in sweeps.values() for r in sweep.rows()]
    report_table(rows, title="Figure 8: MLP on clustered cifar-like", json_name="fig08.json")

    for batch_size, sweep in sweeps.items():
        scores = sweep.final_scores()
        assert abs(scores["corgipile"] - scores["shuffle_once"]) < 0.06, (batch_size, scores)
        assert scores["sliding_window"] < scores["shuffle_once"] - 0.08, (batch_size, scores)
        assert scores["no_shuffle"] < scores["shuffle_once"] - 0.12, (batch_size, scores)
