"""Figures 3 and 4 — tuple-id and label distributions after shuffling.

On a 1000-tuple clustered table (first 500 negative, last 500 positive) the
paper plots, for each strategy, where tuples land after shuffling and how
many negatives/positives fall in every window of 20 visits.  We reproduce
the quantitative signatures: the position-vs-id rank correlation (Sliding
Window ≈ 1 "linear shape", full shuffle ≈ 0) and the per-window label
mixing deviation (0 = ideal mix).
"""

from __future__ import annotations

import numpy as np
from conftest import report_table

from repro.core import CorgiPileShuffle
from repro.data import BlockLayout
from repro.shuffle import make_strategy
from repro.theory import distribution_report, label_window_counts

N_TUPLES = 1000
LABELS = np.array([-1.0] * 500 + [1.0] * 500)
LAYOUT = BlockLayout(N_TUPLES, 20)  # 50 blocks, buffer of 10 => Example 2


def _orders():
    orders = {"no_shuffle": np.arange(N_TUPLES)}
    for name in ("sliding_window", "mrs"):
        orders[name] = make_strategy(name, LAYOUT, buffer_fraction=0.1, seed=0).epoch_indices(0)
    orders["full_shuffle"] = make_strategy("epoch_shuffle", LAYOUT, seed=0).epoch_indices(0)
    orders["corgipile"] = CorgiPileShuffle(LAYOUT, buffer_blocks=10, seed=0).epoch_indices(0)
    return orders


def test_fig03_04_order_signatures(benchmark):
    orders = benchmark.pedantic(_orders, rounds=1, iterations=1)

    rows = [distribution_report(name, order, LABELS) for name, order in orders.items()]
    report_table(rows, title="Figures 3-4: shuffled-order signatures", json_name="fig03_04.json")

    by_name = {r["strategy"]: r for r in rows}
    # Figure 3(a/b): No Shuffle and Sliding Window keep the linear shape.
    assert by_name["no_shuffle"]["rank_correlation"] == 1.0
    assert by_name["sliding_window"]["rank_correlation"] > 0.9
    # Figure 3(c): MRS is partial — between window and full shuffle.
    assert 0.2 < by_name["mrs"]["rank_correlation"] < 0.95
    # Figure 3(d) and 4(a): full shuffle and CorgiPile destroy the order.
    assert abs(by_name["full_shuffle"]["rank_correlation"]) < 0.15
    assert abs(by_name["corgipile"]["rank_correlation"]) < 0.35
    # Label mixing (Figures 3e-h, 4b): CorgiPile ~ full shuffle << no shuffle.
    assert by_name["no_shuffle"]["label_mixing_deviation"] > 0.45
    assert by_name["corgipile"]["label_mixing_deviation"] < 0.15
    assert by_name["sliding_window"]["label_mixing_deviation"] > 0.3


def test_fig04_corgipile_windows_near_uniform(benchmark):
    order = benchmark.pedantic(
        lambda: CorgiPileShuffle(LAYOUT, buffer_blocks=10, seed=3).epoch_indices(0),
        rounds=1,
        iterations=1,
    )
    counts = label_window_counts(order, LABELS, window=20)
    # Figure 4(b): every window of 20 holds a near-even split.  The binomial
    # noise floor for n=20, p=.5 gives std ~2.2; allow 4 sigma.
    negatives = counts[:, 0]
    assert np.all(np.abs(negatives - 10) <= 9)
    assert abs(float(negatives.mean()) - 10.0) < 1.0
