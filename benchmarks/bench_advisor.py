#!/usr/bin/env python
"""Grid bench for the cost-based shuffle advisor (``strategy = auto``).

Runs every (data ordering × storage device) grid point twice over: once
per fixed strategy and once with the advisor choosing, then scores each
run by **test accuracy at a simulated-time budget** — the budget being
the fastest fixed strategy's total simulated time at that grid point, so
every strategy is compared at the moment the quickest one finishes.

Claim under test: the advisor's pick is never meaningfully worse than the
best fixed strategy chosen with hindsight.  ``--check`` enforces
``score(auto) >= (1 - tolerance) * max(score(fixed))`` at every grid
point (default tolerance 5%), plus that the advisor actually *moves*: it
must not resolve to the same strategy on every grid point.

Grid: shuffled / clustered / interleaved orderings of the bundled SUSY
sample × the three latency-scaled device curves (``hdd-scaled``,
``ssd-scaled``, ``nvm-scaled`` — scaled so simulated seconds stay short
while preserving each device's random/sequential ratio).

Results go to ``benchmarks/results/bench_advisor.json`` plus the
repo-root ``BENCH_advisor.json`` snapshot that travels with the PR.

Usage::

    PYTHONPATH=src python benchmarks/bench_advisor.py --quick          # default
    PYTHONPATH=src python benchmarks/bench_advisor.py --full
    PYTHONPATH=src python benchmarks/bench_advisor.py --quick --check  # CI gate
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.data import (  # noqa: E402
    DATASETS,
    clustered_by_label,
    interleaved_by_label,
)
from repro.db import MiniDB  # noqa: E402
from repro.storage import device_by_name  # noqa: E402

RESULTS_PATH = Path(__file__).resolve().parent / "results" / "bench_advisor.json"
SNAPSHOT_PATH = REPO_ROOT / "BENCH_advisor.json"

DEVICES = ("hdd-scaled", "ssd-scaled", "nvm-scaled")
FIXED_STRATEGIES = ("no_shuffle", "corgipile", "corgi2", "shuffle_once")
FULL_EXTRA_STRATEGIES = ("block_reshuffle", "block_reversal")

SQL = (
    "SELECT * FROM t TRAIN BY lr WITH strategy = {strategy}, "
    "learning_rate = 0.05, max_epoch_num = {epochs}, block_size = 8KB, "
    "seed = 0, device = '{device}'"
)


def _layouts(train, full: bool) -> dict:
    layouts = {
        "shuffled": train.shuffled(seed=3),
        "clustered": clustered_by_label(train, seed=0),
        "interleaved": interleaved_by_label(train, run_length=64, seed=0),
    }
    if full:
        layouts["interleaved_fine"] = interleaved_by_label(
            train, run_length=16, seed=0
        )
    return layouts


def _score_at(result, budget_s: float) -> float:
    """Test accuracy of the last epoch completing within the budget.

    A strategy whose setup alone blows the budget has produced nothing by
    then: it scores chance (0.5 on the binary task).
    """
    points = [p for p in result.timeline.points if p.time_s <= budget_s + 1e-12]
    return float(points[-1].test_score) if points else 0.5


def run_grid(epochs: int, full: bool) -> dict:
    train, test = DATASETS["susy"].build_split(seed=0)
    strategies = FIXED_STRATEGIES + (FULL_EXTRA_STRATEGIES if full else ())
    layouts = _layouts(train, full)
    points = []
    for device in DEVICES:
        for layout_name, data in layouts.items():
            db = MiniDB(device=device_by_name(device), page_bytes=1024)
            db.create_table("t", data)
            runs = {}
            for strategy in strategies + ("auto",):
                sql = SQL.format(strategy=strategy, epochs=epochs, device=device)
                runs[strategy] = db.execute(sql, test=test)
            budget = min(runs[s].timeline.total_time_s for s in strategies)
            scores = {s: round(_score_at(r, budget), 4) for s, r in runs.items()}
            best_fixed = max(scores[s] for s in strategies)
            auto = runs["auto"]
            points.append(
                {
                    "device": device,
                    "ordering": layout_name,
                    "budget_s": round(budget, 6),
                    "resolved": auto.query.strategy,
                    "measured_hd": round(
                        auto.query.extra["advisor"]["hd"]["hd"], 3
                    ),
                    "auto_score": scores["auto"],
                    "best_fixed_score": best_fixed,
                    "ratio": round(scores["auto"] / best_fixed, 4),
                    "fixed_scores": {s: scores[s] for s in strategies},
                }
            )
            print(
                f"{device:11s} {layout_name:16s} h_D={points[-1]['measured_hd']:<7} "
                f"-> {points[-1]['resolved']:15s} auto={scores['auto']:.4f} "
                f"best={best_fixed:.4f} ratio={points[-1]['ratio']:.3f}"
            )
    return {
        "bench": "advisor",
        "mode": "full" if full else "quick",
        "epochs": epochs,
        "dataset": "susy",
        "n_train": train.n_tuples,
        "strategies": list(strategies),
        "points": points,
    }


def check(results: dict, tolerance: float) -> list[str]:
    failures = []
    for p in results["points"]:
        floor = (1.0 - tolerance) * p["best_fixed_score"]
        if p["auto_score"] < floor:
            failures.append(
                f"{p['device']}/{p['ordering']}: auto={p['auto_score']} "
                f"< (1-{tolerance:.0%}) * best={p['best_fixed_score']}"
            )
    resolved = {p["resolved"] for p in results["points"]}
    if len(resolved) < 2:
        failures.append(
            f"advisor resolved every grid point to {resolved}: the decision "
            "is not responding to ordering/device at all"
        )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", default=True,
        help="3x3 grid, 8 epochs (default)",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="adds in-block strategies and a fine-interleaved ordering, 12 epochs",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero if the advisor trails the best fixed strategy "
        "by more than --tolerance at any grid point",
    )
    parser.add_argument("--tolerance", type=float, default=0.05)
    parser.add_argument(
        "--no-snapshot", action="store_true",
        help="skip writing the repo-root BENCH_advisor.json",
    )
    args = parser.parse_args(argv)

    epochs = 12 if args.full else 8
    t0 = time.perf_counter()
    results = run_grid(epochs=epochs, full=args.full)
    results["wall_s"] = round(time.perf_counter() - t0, 2)

    RESULTS_PATH.parent.mkdir(parents=True, exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(results, indent=2) + "\n")
    if not args.no_snapshot:
        SNAPSHOT_PATH.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\n{len(results['points'])} grid points in {results['wall_s']}s "
          f"-> {RESULTS_PATH}")

    if args.check:
        failures = check(results, args.tolerance)
        if failures:
            print("\nADVISOR GATE FAILED:")
            for f in failures:
                print(f"  {f}")
            return 1
        worst = min(p["ratio"] for p in results["points"])
        print(f"advisor gate OK: worst auto/best ratio {worst:.3f} "
              f"(floor {1 - args.tolerance:.3f})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
