"""Figure 5 — multi-process CorgiPile produces the same effective data order
as single-process CorgiPile with a PN-times-larger buffer.

We run the simulated DDP execution (same-seed block split, per-worker
buffers, bs/PN batch slices + AllReduce concatenation) and compare the
global batch stream against the equivalent single-process run: identical
coverage, comparable label mixing, and comparable convergence when actually
training on both orders.
"""

from __future__ import annotations

import threading
import time

import numpy as np
from conftest import TUPLES_PER_BLOCK, report_loader_stats, report_table

from repro import obs
from repro.core import MultiProcessCorgiPile, MultiWorkerLoader
from repro.db import overlap_crosscheck
from repro.obs import LoaderMetrics
from repro.data import DATASETS, clustered_by_label
from repro.ml import ExponentialDecay, LogisticRegression, Trainer, fixed_order_source
from repro.storage import write_block_file
from repro.theory import label_mixing_deviation

N_WORKERS = 4
BATCH = 64


def test_fig05_order_equivalence(benchmark, glm_problems):
    train, test = glm_problems["susy"]
    layout = train.layout(40)
    mp = MultiProcessCorgiPile(layout, N_WORKERS, buffer_blocks_per_worker=4, seed=0)
    single = mp.equivalent_single_process()

    def run():
        multi_orders = [mp.epoch_indices(e, BATCH) for e in range(8)]
        single_orders = [single.epoch_indices(e) for e in range(8)]
        multi = Trainer(
            LogisticRegression(train.n_features),
            train,
            fixed_order_source("multi-process", multi_orders),
            epochs=8,
            schedule=ExponentialDecay(0.5),
            batch_size=BATCH,
            test=test,
        ).run()
        one = Trainer(
            LogisticRegression(train.n_features),
            train,
            fixed_order_source("single-process", single_orders),
            epochs=8,
            schedule=ExponentialDecay(0.5),
            batch_size=BATCH,
            test=test,
        ).run()
        return multi_orders, single_orders, multi, one

    multi_orders, single_orders, multi, one = benchmark.pedantic(run, rounds=1, iterations=1)

    dev_multi = label_mixing_deviation(multi_orders[0], train.y, window=BATCH)
    dev_single = label_mixing_deviation(single_orders[0], train.y, window=BATCH)
    dev_raw = label_mixing_deviation(np.arange(train.n_tuples), train.y, window=BATCH)
    report_table(
        [
            {"mode": "multi-process (4 workers)", "label_mixing_dev": round(dev_multi, 4),
             "final_test_acc": round(multi.final.test_score, 4)},
            {"mode": "single-process (4x buffer)", "label_mixing_dev": round(dev_single, 4),
             "final_test_acc": round(one.final.test_score, 4)},
            {"mode": "raw clustered order", "label_mixing_dev": round(dev_raw, 4),
             "final_test_acc": None},
        ],
        title="Figure 5: multi- vs single-process CorgiPile",
        json_name="fig05.json",
    )

    # Both orders cover (nearly) the whole table without duplicates.
    flat = multi_orders[0]
    assert len(set(flat.tolist())) == flat.size
    assert flat.size >= 0.95 * train.n_tuples  # ragged worker tails may drop a few
    # The two modes mix labels comparably — and far better than raw order.
    assert abs(dev_multi - dev_single) < 0.1
    assert dev_multi < dev_raw / 2
    # And converge to the same accuracy.
    assert abs(multi.final.test_score - one.final.test_score) < 0.04


def test_fig05_measured_loader_stats(tmp_path, glm_problems):
    """Run the *real* threaded multi-worker loader and report what it measured.

    Complements the order-equivalence test above: the same two-data-worker
    scheme of Section 5.1 is exercised with actual producer threads over an
    on-disk block file, and the loader-observability layer reports queue
    depth, stall/wait time, and the measured loading/compute overlap.
    """
    train, _ = glm_problems["susy"]
    path = tmp_path / "fig05.blocks"
    write_block_file(train, path, TUPLES_PER_BLOCK)

    baseline_threads = threading.active_count()
    stats = LoaderMetrics(f"multiworker-x{N_WORKERS}")
    seen: list[int] = []
    obs.reset()
    with obs.trace_to() as (tracer, _registry):
        wall_t0 = time.perf_counter()
        with MultiWorkerLoader(
            path, N_WORKERS, buffer_blocks_per_worker=4, batch_size=BATCH, seed=0, stats=stats
        ) as loader:
            for epoch in range(2):
                loader.set_epoch(epoch)
                epoch_ids = [int(i) for batch in loader for i in batch.tuple_ids]
                seen.append(len(set(epoch_ids)))
        wall_s = time.perf_counter() - wall_t0

    report_loader_stats(
        [stats],
        title=f"Figure 5 (measured): {N_WORKERS}-worker loader observability",
        json_name="fig05_loader_stats.json",
    )

    # Full coverage per epoch, every producer thread joined, books balanced.
    assert seen == [train.n_tuples, train.n_tuples]
    assert threading.active_count() == baseline_threads
    d = stats.as_dict()
    assert d["live_threads"] == 0
    assert d["threads_started"] == 2 * N_WORKERS  # one producer per worker per epoch
    assert d["buffers_filled"] == d["buffers_drained"] > 0
    assert d["items_produced"] == d["items_consumed"] > 0
    assert 0.0 <= d["overlap_fraction"] <= 1.0

    # Counter-vs-span overlap audit over the same wall (N producers share
    # one stats sink, so producer lifetime sums across the worker threads).
    check = overlap_crosscheck(stats, tracer.spans, wall_s)
    report_table(
        [{k: round(v, 6) if isinstance(v, float) else v for k, v in check.items()}],
        title="Figure 5: overlap cross-check (counters vs spans)",
        json_name="fig05_overlap_crosscheck.json",
    )
    assert check["ok"], check
