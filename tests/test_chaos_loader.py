"""Chaos stress tests for the concurrent loader stack (satellite c).

The prefetch and multi-worker loaders run over a fault-injecting block
store.  Under a transient-only plan the loaders must behave *exactly* as
over a clean store: same tuple order (prefetch preserves order; the
multi-worker interleave preserves the multiset), no duplicated or dropped
tuples after a retried read, and — reusing the PR-1 leak guard — no thread
left behind, whether the epoch completes or dies on an unrecoverable fault.
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.core import CorgiPileDataset, MultiWorkerLoader, PrefetchLoader, StorageStats
from repro.data import make_binary_dense
from repro.faults import FaultPlan, FaultSpec, faulty_reader_factory
from repro.storage import ReadExhaustedError, RetryPolicy, write_block_file

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))


def settled_thread_count(baseline: int, timeout: float = 5.0) -> int:
    """Wait for the thread count to settle back toward ``baseline``."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if threading.active_count() <= baseline:
            return threading.active_count()
        time.sleep(0.01)
    return threading.active_count()


@pytest.fixture(scope="module")
def block_file(tmp_path_factory):
    ds = make_binary_dense(600, 6, seed=0)
    path = tmp_path_factory.mktemp("chaos") / "chaos.blocks"
    write_block_file(ds, path, tuples_per_block=25)
    return path, ds


def _tuple_ids(dataset) -> list[int]:
    return [record.tuple_id for record in dataset]


class TestPrefetchLoaderChaos:
    @pytest.mark.parametrize("seed", [CHAOS_SEED * 2 + k for k in range(2)])
    def test_retried_reads_preserve_tuple_order(self, block_file, seed):
        path, _ = block_file
        baseline = threading.active_count()
        with CorgiPileDataset(path, buffer_blocks=2, seed=seed) as clean_view:
            expected = list(PrefetchLoader(clean_view, depth=2))

        plan = FaultPlan.random(seed, p_transient=0.5, p_torn=0.3, max_failures=2)
        stats = StorageStats("prefetch-chaos")
        with CorgiPileDataset(
            path,
            buffer_blocks=2,
            seed=seed,
            reader_factory=faulty_reader_factory(plan, stats=stats),
        ) as faulty_view:
            got = list(PrefetchLoader(faulty_view, depth=2))

        assert stats.retries > 0, "plan injected no faults; test is vacuous"
        assert [r.tuple_id for r in got] == [r.tuple_id for r in expected]
        assert settled_thread_count(baseline) == baseline

    def test_unrecoverable_fault_propagates_and_joins_threads(self, block_file):
        path, _ = block_file
        baseline = threading.active_count()
        # times exceeds the explicit 2-attempt budget: retry must exhaust.
        plan = FaultPlan(specs=[FaultSpec("transient", unit="block", target=0, times=5)])
        stats = StorageStats("prefetch-exhaust")
        factory = faulty_reader_factory(
            plan, stats=stats, retry=RetryPolicy(max_attempts=2)
        )
        with CorgiPileDataset(path, buffer_blocks=2, seed=0, reader_factory=factory) as view:
            loader = PrefetchLoader(view, depth=2)
            with pytest.raises(ReadExhaustedError):
                for _ in loader:
                    pass
        assert stats.exhausted_reads == 1
        assert settled_thread_count(baseline) == baseline
        assert loader.stats.live_threads == 0


class TestMultiWorkerLoaderChaos:
    @pytest.mark.parametrize("seed", [CHAOS_SEED * 2 + k for k in range(2)])
    def test_retried_reads_preserve_tuple_multiset(self, block_file, seed):
        path, ds = block_file
        baseline = threading.active_count()
        plan = FaultPlan.random(seed, p_transient=0.5, p_torn=0.3, max_failures=2)
        stats = StorageStats("mw-chaos")
        with MultiWorkerLoader(
            path,
            3,
            2,
            batch_size=16,
            seed=seed,
            reader_factory=faulty_reader_factory(plan, stats=stats),
        ) as loader:
            ids = sorted(int(i) for batch in loader for i in batch.tuple_ids)
            assert loader.stats.live_threads == 0
        assert stats.retries > 0, "plan injected no faults; test is vacuous"
        assert ids == list(range(ds.n_tuples))
        assert settled_thread_count(baseline) == baseline

    def test_faulty_stream_matches_clean_stream_exactly(self, block_file):
        """Transient faults must not even *reorder* the interleave."""
        path, _ = block_file
        with MultiWorkerLoader(path, 2, 2, batch_size=16, seed=7) as loader:
            expected = [tuple(batch.tuple_ids) for batch in loader]
        plan = FaultPlan.random(7, p_transient=0.6, max_failures=2)
        with MultiWorkerLoader(
            path,
            2,
            2,
            batch_size=16,
            seed=7,
            reader_factory=faulty_reader_factory(plan),
        ) as loader:
            got = [tuple(batch.tuple_ids) for batch in loader]
        assert got == expected

    def test_unrecoverable_fault_joins_all_workers(self, block_file):
        path, _ = block_file
        baseline = threading.active_count()
        plan = FaultPlan(specs=[FaultSpec("transient", unit="block", target=3, times=5)])
        factory = faulty_reader_factory(plan, retry=RetryPolicy(max_attempts=2))
        with MultiWorkerLoader(
            path, 3, 2, batch_size=16, seed=1, reader_factory=factory
        ) as loader:
            with pytest.raises(ReadExhaustedError):
                for _ in loader:
                    pass
            assert settled_thread_count(baseline) == baseline
            assert loader.stats.live_threads == 0
