"""Deterministic DML workload shared by the SIGKILL recovery test.

The parent test imports :func:`make_table` / :func:`apply_ops` to replay
the exact op stream; run as a script (``python tests/_dml_workload.py
<data_dir> <n_ops>``) it becomes the child process the test SIGKILLs
mid-stream.  Determinism matters: every op — including the RNG draws —
is a pure function of ``(seed, op index, table state)``, so the replay
walks through the same sequence of index states the child walked through
before it died.
"""

from __future__ import annotations

import sys
from pathlib import Path

N_FEATURES = 6
READY_AT = 30  # ops completed before the child advertises itself killable


def make_table(data_dir=None, page_bytes: int = 512):
    """A small indexed table; ``data_dir`` turns on ``.idx`` persistence."""
    from repro.data import make_binary_dense
    from repro.db.catalog import Catalog

    catalog = Catalog(
        page_bytes=page_bytes,
        data_dir=None if data_dir is None else Path(data_dir),
    )
    info = catalog.create_table(
        "t", make_binary_dense(150, N_FEATURES, separation=1.0, seed=5)
    )
    catalog.create_index("t", "ix", "f0")
    return catalog, info


def apply_ops(info, n_ops: int, seed: int = 7, progress=None) -> None:
    """``n_ops`` of interleaved INSERT/DELETE/UPDATE against ``info``.

    Each catalog call persists every index before returning, so after op
    ``k`` the on-disk ``.idx`` is exactly the tree at state ``k``.
    """
    import numpy as np

    rng = np.random.default_rng(seed)
    for i in range(n_ops):
        choice = i % 3
        if choice == 0:
            label = 1.0 if i % 2 else -1.0
            info.insert_rows([(label, rng.standard_normal(N_FEATURES))])
        elif choice == 1 and info.n_tuples > 20:
            position = int(rng.integers(info.n_tuples))
            info.delete_rids([info.heap.rid_of(position)])
        else:
            position = int(rng.integers(info.n_tuples))
            info.update_rids(
                [info.heap.rid_of(position)], [("f0", float(rng.standard_normal()))]
            )
        if progress is not None:
            progress(i + 1)


def main(argv: list[str]) -> int:
    data_dir, n_ops = Path(argv[1]), int(argv[2])

    def progress(completed: int) -> None:
        if completed == READY_AT:
            (data_dir / "ready").write_text(str(completed))

    _catalog, info = make_table(data_dir)
    apply_ops(info, n_ops, progress=progress)
    (data_dir / "done").write_text(str(n_ops))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
