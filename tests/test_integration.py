"""Cross-subsystem integration tests — the headline paper claims end to end.

These tests exercise whole paths through the library at once: file formats
→ block files → streaming CorgiPile training → persistence → in-DB
inference, and the motivating performance/accuracy claims on the simulated
substrate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CorgiPileDataset, DataLoader
from repro.data import clustered_by_label, make_binary_dense, read_libsvm, write_libsvm
from repro.db import MiniDB, run_in_db_system
from repro.ml import (
    ExponentialDecay,
    LogisticRegression,
    load_model,
    model_from_bytes,
    model_to_bytes,
)
from repro.ml.streaming import train_streaming
from repro.storage import HDD_SCALED, write_block_file


@pytest.fixture(scope="module")
def problem():
    ds = make_binary_dense(2000, 10, separation=1.2, seed=0)
    train, test = ds.split(0.9, seed=1)
    return clustered_by_label(train, seed=0), test


class TestFileToModelPipeline:
    """LIBSVM file → block file → streaming CorgiPile → saved model → DB."""

    def test_full_pipeline(self, problem, tmp_path):
        train, test = problem

        # 1. Export/import through the interchange format.
        libsvm_path = tmp_path / "train.libsvm"
        write_libsvm(train, libsvm_path)
        loaded = read_libsvm(libsvm_path, n_features=train.n_features, dense=True)
        assert loaded.n_tuples == train.n_tuples

        # 2. Materialise as an on-disk block file and stream-train with the
        #    two-level shuffle and real prefetching.
        block_path = tmp_path / "train.blocks"
        write_block_file(loaded, block_path, tuples_per_block=40)
        model = LogisticRegression(train.n_features)
        with CorgiPileDataset(block_path, buffer_blocks=5, seed=0) as dataset:

            def loader(epoch: int):
                dataset.set_epoch(epoch)
                return DataLoader(dataset, batch_size=32)

            history = train_streaming(
                model,
                loader,
                epochs=6,
                schedule=ExponentialDecay(0.5),
                test=test,
                prefetch_depth=2,
            )
        assert history.final.test_score > 0.8
        assert history.final.tuples_seen == 6 * train.n_tuples

        # 3. Persist, reload, and serve from the database.
        blob = model_to_bytes(model)
        served = model_from_bytes(blob)
        db = MiniDB(page_bytes=1024)
        db.create_table("t", test)
        db._models["model_x"] = served
        predictions = db.execute("SELECT * FROM t PREDICT BY model_x")
        assert float(np.mean(predictions == test.y)) > 0.8

    def test_streaming_per_tuple_mode(self, problem, tmp_path):
        train, test = problem
        block_path = tmp_path / "t.blocks"
        write_block_file(train, block_path, tuples_per_block=40)
        model = LogisticRegression(train.n_features)
        with CorgiPileDataset(block_path, buffer_blocks=5, seed=0) as dataset:

            def loader(epoch: int):
                dataset.set_epoch(epoch)
                return DataLoader(dataset, batch_size=64)

            history = train_streaming(
                model, loader, epochs=4,
                schedule=ExponentialDecay(0.05), test=test, per_tuple=True,
            )
        assert history.final.test_score > 0.8

    def test_streaming_validation(self):
        with pytest.raises(ValueError):
            train_streaming(LogisticRegression(2), lambda e: [], epochs=0)


class TestHeadlineClaims:
    """The abstract's claims, asserted on the simulated substrate."""

    def test_corgipile_converges_before_shuffle_once_finishes_shuffling(self, problem):
        train, test = problem
        corgi = run_in_db_system(
            "corgipile", "corgipile", train, test, "lr", HDD_SCALED,
            epochs=4, block_size=4096,
        )
        once = run_in_db_system(
            "bismarck", "shuffle_once", train, test, "lr", HDD_SCALED,
            epochs=4, block_size=4096,
        )
        target = 0.95 * once.history.final.test_score
        corgi_time = corgi.timeline.time_to_reach(target)
        assert corgi_time is not None
        # The motivating claim: when CorgiPile has converged, Shuffle Once
        # is still (or barely done) shuffling.
        assert corgi_time < once.timeline.setup_s * 2.5

    def test_engine_training_is_deterministic(self, problem):
        train, test = problem
        runs = [
            run_in_db_system(
                "corgipile", "corgipile", train, test, "lr", HDD_SCALED,
                epochs=3, block_size=4096, seed=7,
            )
            for _ in range(2)
        ]
        a, b = (tuple(r.train_loss for r in run.history.records) for run in runs)
        assert a == b

    def test_no_shuffle_diverges_deep_vs_glm_contrast(self, problem):
        # GLMs degrade gracefully under No Shuffle; the MLP collapses much
        # harder (Figure 7's "close to 0%" vs Figure 11's lower-but-nonzero).
        from repro.bench import run_convergence_sweep
        from repro.data import make_multiclass_dense
        from repro.ml import MLPClassifier

        train, test = problem
        glm = run_convergence_sweep(
            train, test, lambda: LogisticRegression(train.n_features),
            ("shuffle_once", "no_shuffle"), epochs=8, learning_rate=0.05,
            tuples_per_block=40, seed=0,
        ).final_scores()

        multi = make_multiclass_dense(2000, 24, 10, separation=2.5, seed=0)
        mtrain, mtest = multi.split(0.9, seed=1)
        mclustered = clustered_by_label(mtrain, seed=0)
        dl = run_convergence_sweep(
            mclustered, mtest,
            lambda: MLPClassifier(24, 24, 10, seed=0),
            ("shuffle_once", "no_shuffle"), epochs=8, learning_rate=0.2,
            decay=1.0, tuples_per_block=20, batch_size=16, seed=0,
        ).final_scores()

        glm_gap = glm["shuffle_once"] - glm["no_shuffle"]
        dl_gap = dl["shuffle_once"] - dl["no_shuffle"]
        assert dl_gap > glm_gap
