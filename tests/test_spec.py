"""The typed TrainSpec API: validation, grids, docs, and the legacy shim.

Every TRAIN entry point (engine, serve jobs, CLI) now funnels through
``TrainSpec.from_query`` — so these tests pin the contract: bad knobs fail
loudly with :class:`SpecError`, the canonical document round-trips, and the
old ``extra={...}`` input channel still works for one release behind a
``DeprecationWarning``.
"""

from __future__ import annotations

import pytest

from repro.db import MiniDB, parse_query
from repro.db.errors import SpecError
from repro.db.query import TrainQuery
from repro.db.spec import AGGREGATION_MODES, GridConfig, GridSpec, TrainSpec


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------


class TestTrainSpecValidation:
    def test_defaults_validate(self):
        spec = TrainSpec(table="t", model="lr")
        assert spec.strategy == "corgipile"
        assert spec.epochs == 20
        assert spec.l2 is None

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"table": ""}, "table"),
            ({"model": "nope"}, "unknown model"),
            ({"epochs": 0}, "epochs"),
            ({"epochs": -3}, "epochs"),
            ({"lr": 0.0}, "lr"),
            ({"decay": -1}, "decay"),
            ({"l2": -0.5}, "l2"),
            ({"batch_size": 0}, "batch_size"),
            ({"buffer_fraction": 0.0}, "buffer_fraction"),
            ({"buffer_fraction": 1.5}, "buffer_fraction"),
            ({"workers": 0}, "workers"),
            ({"aggregation": "gossip"}, "aggregation"),
            ({"warm_start": ""}, "warm_start"),
        ],
    )
    def test_bad_values_raise(self, kwargs, match):
        base = {"table": "t", "model": "lr"}
        base.update(kwargs)
        with pytest.raises(SpecError, match=match):
            TrainSpec(**base)

    def test_grid_constraints(self):
        grid = GridSpec.from_axes({"lr": [0.1, 0.01]})
        with pytest.raises(SpecError, match="batch_size"):
            TrainSpec(table="t", model="lr", grid=grid, batch_size=8)
        with pytest.raises(SpecError, match="warm_start"):
            TrainSpec(table="t", model="lr", grid=grid, warm_start="m0")

    def test_aggregation_modes_pinned(self):
        assert AGGREGATION_MODES == ("sync", "epoch", "async")


class TestGridSpec:
    def test_cartesian_product_in_declaration_order(self):
        grid = GridSpec.from_axes({"lr": [0.1, 0.01], "l2": [0.0, 1e-4]})
        assert grid.n_configs == 4
        configs = grid.configs()
        assert [c.model_id for c in configs] == [f"grid_{i}" for i in range(4)]
        assert configs[0].overrides == (("lr", 0.1), ("l2", 0.0))
        assert configs[3].overrides == (("lr", 0.01), ("l2", 1e-4))

    def test_learning_rate_alias(self):
        grid = GridSpec.from_axes({"learning_rate": [0.1]})
        assert grid.axes[0][0] == "lr"

    def test_resolve_overlays_base_spec(self):
        spec = TrainSpec(table="t", model="lr", lr=0.5, decay=0.9)
        config = GridConfig(index=0, overrides=(("lr", 0.05),))
        resolved = config.resolve(spec)
        assert resolved == {"lr": 0.05, "decay": 0.9, "l2": None}

    @pytest.mark.parametrize(
        "axes, match",
        [
            ({}, "no axes"),
            ({"epochs": [1, 2]}, "not sweepable"),
            ({"lr": []}, "no values"),
            ({"lr": [0.0]}, "positive"),
            ({"l2": [-1.0]}, ">= 0"),
        ],
    )
    def test_bad_axes_raise(self, axes, match):
        with pytest.raises(SpecError, match=match):
            GridSpec.from_axes(axes)

    def test_duplicate_axis_rejected(self):
        with pytest.raises(SpecError, match="twice"):
            GridSpec(axes=(("lr", (0.1,)), ("lr", (0.2,))))

    def test_doc_round_trip(self):
        grid = GridSpec.from_axes({"lr": [0.1, 0.01], "decay": [0.9]})
        assert GridSpec.from_doc(grid.to_doc()) == grid


# ----------------------------------------------------------------------
# from_query / apply_to_query / documents
# ----------------------------------------------------------------------


GRID_SQL = (
    "SELECT * FROM t TRAIN BY svm WITH max_epoch_num = 4, learning_rate = 0.2, "
    "l2 = 0.001, seed = 7, grid = (lr = 0.1 | 0.01)"
)


class TestTrainSpecFromQuery:
    def test_sql_parse_builds_full_spec(self):
        spec = TrainSpec.from_query(parse_query(GRID_SQL))
        assert spec.table == "t"
        assert spec.model == "svm"
        assert spec.epochs == 4
        assert spec.lr == 0.2
        assert spec.l2 == 0.001
        assert spec.seed == 7
        assert spec.grid is not None and spec.grid.n_configs == 2

    def test_doc_round_trip(self):
        spec = TrainSpec.from_query(parse_query(GRID_SQL))
        doc = spec.to_doc()
        assert doc["version"] == 1
        assert TrainSpec.from_doc(doc) == spec

    def test_where_doc_round_trip(self):
        query = parse_query(
            "SELECT * FROM t WHERE f0 >= 0.5 AND f1 < 2 TRAIN BY lr "
            "WITH max_epoch_num = 2"
        )
        spec = TrainSpec.from_query(query)
        clone = TrainSpec.from_doc(spec.to_doc())
        assert clone.where is not None
        assert clone.where.render() == spec.where.render()

    def test_apply_to_query_writes_typed_fields_back(self):
        query = parse_query(GRID_SQL)
        spec = TrainSpec.from_query(query)
        query.learning_rate = 999.0  # stomp, then restore from the spec
        spec.apply_to_query(query)
        assert query.learning_rate == 0.2
        assert query.l2 == 0.001
        assert query.grid == spec.grid

    def test_invalid_sql_knob_fails_loudly(self):
        query = parse_query("SELECT * FROM t TRAIN BY lr WITH max_epoch_num = 2")
        query.max_epoch_num = -1
        with pytest.raises(SpecError, match="epochs"):
            TrainSpec.from_query(query)


class TestLegacyExtraShim:
    def test_extra_knobs_convert_with_deprecation_warning(self):
        query = TrainQuery(
            table="t", model="lr", extra={"device": "hdd", "l2": 0.01}
        )
        with pytest.warns(DeprecationWarning, match="extra"):
            spec = TrainSpec.from_query(query)
        assert spec.device == "hdd"
        assert spec.l2 == 0.01

    def test_typed_field_wins_over_extra(self):
        query = TrainQuery(table="t", model="lr", l2=0.5, extra={"l2": 0.01})
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")  # no warning when typed field set
            spec = TrainSpec.from_query(query)
        assert spec.l2 == 0.5

    def test_extra_grid_converts(self):
        query = TrainQuery(
            table="t", model="lr", extra={"grid": {"lr": [0.1, 0.01]}}
        )
        with pytest.warns(DeprecationWarning, match="grid"):
            spec = TrainSpec.from_query(query)
        assert spec.grid.n_configs == 2

    def test_engine_honours_legacy_device_knob(self, dense_binary):
        """The shim is live end-to-end: extra={'device': ...} still steers
        the advisor through MiniDB.train, with a warning."""
        db = MiniDB(page_bytes=1024)
        db.create_table("t", dense_binary)
        query = TrainQuery(
            table="t",
            model="lr",
            strategy="auto",
            max_epoch_num=1,
            block_size=64 * 1024,
            extra={"device": "hdd"},
        )
        with pytest.warns(DeprecationWarning, match="device"):
            result = db.train(query)
        assert result.query.extra["advisor"]["device"] == "hdd"
