"""Tests for physical row orderings (clustered / feature-ordered / runs)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    clustered_by_label,
    feature_label_correlations,
    interleaved_by_label,
    make_binary_dense,
    make_multiclass_dense,
    ordered_by_feature,
)


class TestClusteredByLabel:
    def test_negatives_before_positives(self, dense_binary):
        clustered = clustered_by_label(dense_binary)
        labels = clustered.y
        first_pos = int(np.argmax(labels == 1.0))
        assert np.all(labels[:first_pos] == -1.0)
        assert np.all(labels[first_pos:] == 1.0)

    def test_preserves_multiset(self, dense_binary):
        clustered = clustered_by_label(dense_binary)
        assert sorted(clustered.y.tolist()) == sorted(dense_binary.y.tolist())

    def test_multiclass_classes_in_order(self, multiclass_dense):
        clustered = clustered_by_label(multiclass_dense)
        diffs = np.diff(clustered.y)
        assert np.all(diffs >= 0)

    def test_rows_follow_labels(self, dense_binary):
        clustered = clustered_by_label(dense_binary)
        # Every (row, label) pair must still exist in the original dataset.
        original = {tuple(np.round(row, 9)) for row in dense_binary.X}
        assert all(tuple(np.round(row, 9)) in original for row in clustered.X[:10])


class TestOrderedByFeature:
    def test_feature_column_sorted(self, dense_binary):
        ordered = ordered_by_feature(dense_binary, feature=3)
        assert np.all(np.diff(ordered.X[:, 3]) >= -1e-12)

    def test_out_of_range_feature(self, dense_binary):
        with pytest.raises(IndexError):
            ordered_by_feature(dense_binary, feature=99)

    def test_sparse_supported(self, sparse_binary):
        ordered = ordered_by_feature(sparse_binary, feature=0)
        column = ordered.X.to_dense()[:, 0]
        assert np.all(np.diff(column) >= -1e-12)


class TestInterleaved:
    def test_run_structure(self):
        ds = make_binary_dense(100, 4, positive_fraction=0.5, seed=3)
        runs = interleaved_by_label(ds, run_length=10, seed=0)
        labels = runs.y
        # The first run must be homogeneous with length <= 10.
        first = labels[0]
        run_len = int(np.argmax(labels != first)) or len(labels)
        assert 1 <= run_len <= 10

    def test_preserves_multiset(self):
        ds = make_binary_dense(60, 4, seed=3)
        runs = interleaved_by_label(ds, run_length=5)
        assert sorted(runs.y.tolist()) == sorted(ds.y.tolist())

    def test_invalid_run_length(self, dense_binary):
        with pytest.raises(ValueError):
            interleaved_by_label(dense_binary, run_length=0)


class TestFeatureLabelCorrelations:
    def test_predictive_direction_has_high_correlation(self):
        # Build data where feature 0 is the label plus noise.
        rng = np.random.default_rng(0)
        y = np.where(rng.random(500) < 0.5, 1.0, -1.0)
        X = rng.standard_normal((500, 5))
        X[:, 0] = y * 2.0 + rng.standard_normal(500) * 0.1
        from repro.data import Dataset

        ds = Dataset(X, y)
        corr = feature_label_correlations(ds)
        assert abs(corr[0]) > 0.9
        assert np.all(np.abs(corr[1:]) < 0.3)

    def test_shape(self, dense_binary):
        corr = feature_label_correlations(dense_binary)
        assert corr.shape == (dense_binary.n_features,)

    def test_constant_feature_zero_correlation(self):
        from repro.data import Dataset

        X = np.ones((50, 2))
        X[:, 1] = np.arange(50)
        y = np.where(np.arange(50) < 25, -1.0, 1.0)
        corr = feature_label_correlations(Dataset(X, y))
        assert corr[0] == pytest.approx(0.0)
