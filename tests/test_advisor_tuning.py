"""Tests for the physical-design advisor and hyper-parameter tuning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import make_binary_dense
from repro.db.advisor import (
    MIN_BLOCKS_PER_BUFFER,
    PhysicalDesign,
    advise,
    recommend_block_size,
    recommend_buffer,
)
from repro.ml import LogisticRegression
from repro.ml.tuning import SeedStats, grid_search, multi_seed
from repro.shuffle import ShuffleOnce
from repro.storage import HDD, SSD


class TestBlockSizeRecommendation:
    def test_hdd_needs_multi_megabyte_blocks(self):
        block = recommend_block_size(HDD, page_bytes=8192)
        # 0.9/(0.1) * 8ms * 140MB/s ~= 10MB: the paper's own rule of thumb.
        assert 5 * 1024**2 <= block <= 16 * 1024**2

    def test_ssd_needs_much_smaller_blocks(self):
        assert recommend_block_size(SSD, 8192) < recommend_block_size(HDD, 8192) / 5

    def test_block_meets_target_throughput(self):
        for device in (HDD, SSD):
            block = recommend_block_size(device, 8192, throughput_fraction=0.9)
            assert device.random_throughput(block) >= 0.9 * device.bandwidth_bytes_per_s

    def test_page_aligned(self):
        block = recommend_block_size(HDD, page_bytes=8192)
        assert block % 8192 == 0

    def test_higher_fraction_larger_block(self):
        lo = recommend_block_size(HDD, 8192, throughput_fraction=0.8)
        hi = recommend_block_size(HDD, 8192, throughput_fraction=0.95)
        assert hi > lo

    def test_fractional_requirement_rounds_up_not_down(self):
        """Regression for the truncate-before-ceil bug: when the byte
        requirement is fractionally above a whole number of pages, the
        block must round *up* a page, or the throughput target is
        silently missed."""
        from repro.storage import DeviceModel

        page = 8192
        # At fraction 0.5 the multiplier 0.5/(1-0.5) is exactly 1.0, so
        # needed = latency * bandwidth with no float slop in the factor.
        device = DeviceModel("frac", 1.0, 1.5 * page)  # needed = 1.5 pages
        block = recommend_block_size(device, page, throughput_fraction=0.5)
        assert block == 2 * page
        assert device.random_throughput(block) >= 0.5 * device.bandwidth_bytes_per_s
        # A requirement epsilon past one page must already take 2 pages
        # (int(needed/page) == 1 here — truncation would undersize).
        barely = DeviceModel("barely", 1.0, page + 0.5)
        assert recommend_block_size(barely, page, throughput_fraction=0.5) == 2 * page
        # An exact page multiple stays exact: no spurious extra page.
        exact = DeviceModel("exact", 1.0, float(page))
        assert recommend_block_size(exact, page, throughput_fraction=0.5) == page

    def test_tiny_requirement_clamps_to_one_page(self):
        from repro.storage import DeviceModel

        nearly_free = DeviceModel("fast", 1e-12, 1e6)
        assert recommend_block_size(nearly_free, 8192) == 8192

    def test_validation(self):
        with pytest.raises(ValueError):
            recommend_block_size(HDD, 8192, throughput_fraction=1.0)
        with pytest.raises(ValueError):
            recommend_block_size(HDD, 0)
        with pytest.raises(ValueError):
            recommend_block_size(HDD, 8192, max_block_bytes=1024)


class TestBufferRecommendation:
    def test_default_fraction(self):
        buffer_bytes, blocks = recommend_buffer(100 * 1024**2, 1024**2)
        assert buffer_bytes == 10 * 1024**2
        assert blocks == 10

    def test_minimum_blocks_enforced(self):
        buffer_bytes, blocks = recommend_buffer(100 * 1024**2, 10 * 1024**2)
        assert blocks >= MIN_BLOCKS_PER_BUFFER or buffer_bytes == 100 * 1024**2

    def test_memory_budget_caps(self):
        buffer_bytes, _ = recommend_buffer(
            100 * 1024**2, 1024**2, memory_budget_bytes=3 * 1024**2
        )
        assert buffer_bytes <= 3 * 1024**2

    def test_budget_smaller_than_block_rejected(self):
        with pytest.raises(ValueError):
            recommend_buffer(1024**2, 1024**2, memory_budget_bytes=1024)

    def test_never_exceeds_table(self):
        buffer_bytes, _ = recommend_buffer(5 * 1024**2, 1024**2)
        assert buffer_bytes <= 5 * 1024**2


class TestAdvise:
    def test_full_recommendation(self):
        design = advise(HDD, table_bytes=1e9, page_bytes=8192)
        assert isinstance(design, PhysicalDesign)
        assert design.expected_random_throughput_fraction >= 0.9
        assert design.blocks_per_buffer >= 1
        assert "block=" in design.describe()

    def test_tiny_table_fallback(self):
        design = advise(HDD, table_bytes=512 * 1024, page_bytes=8192)
        # Recommended HDD block (~10MB) exceeds the table; advisor falls
        # back so the table still has multiple blocks.
        assert design.block_bytes < 512 * 1024


class TestGridSearch:
    @pytest.fixture()
    def problem(self):
        ds = make_binary_dense(600, 8, separation=1.5, seed=0)
        return ds.split(0.8, seed=1)

    def test_picks_reasonable_lr(self, problem):
        train, val = problem
        result = grid_search(
            lambda: LogisticRegression(8),
            train,
            val,
            lambda trial: ShuffleOnce(train.n_tuples, seed=trial),
            {"learning_rate": [0.05, 80.0]},
            epochs=5,
        )
        # The divergently large lr oscillates; grid search must reject it.
        assert result.best_params["learning_rate"] == 0.05
        assert len(result.trials) == 2
        assert result.best_score > 0.8

    def test_cross_product(self, problem):
        train, val = problem
        result = grid_search(
            lambda: LogisticRegression(8),
            train,
            val,
            lambda trial: ShuffleOnce(train.n_tuples, seed=trial),
            {"learning_rate": [0.01, 0.05], "decay": [0.9, 0.99]},
            epochs=3,
        )
        assert len(result.trials) == 4
        assert set(result.best_params) == {"learning_rate", "decay"}

    def test_unknown_param_rejected(self, problem):
        train, val = problem
        with pytest.raises(ValueError, match="unknown grid"):
            grid_search(
                lambda: LogisticRegression(8), train, val,
                lambda t: ShuffleOnce(train.n_tuples, seed=t),
                {"temperature": [1.0]}, epochs=1,
            )

    def test_empty_grid_rejected(self, problem):
        train, val = problem
        with pytest.raises(ValueError):
            grid_search(
                lambda: LogisticRegression(8), train, val,
                lambda t: ShuffleOnce(train.n_tuples, seed=t), {}, epochs=1,
            )


class TestMultiSeed:
    def test_stats(self):
        stats = SeedStats(scores=(0.6, 0.7, 0.8))
        assert stats.mean == pytest.approx(0.7)
        assert stats.min == 0.6 and stats.max == 0.8
        assert stats.std == pytest.approx(np.std([0.6, 0.7, 0.8]))

    def test_overlap(self):
        a = SeedStats(scores=(0.70, 0.72, 0.74))
        b = SeedStats(scores=(0.71, 0.73, 0.75))
        c = SeedStats(scores=(0.90, 0.91, 0.92))
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_multi_seed_runs(self):
        ds = make_binary_dense(400, 6, separation=2.0, seed=0)
        train, test = ds.split(0.8, seed=1)
        from repro.ml import ExponentialDecay, Trainer

        def run(seed: int):
            return Trainer(
                LogisticRegression(6), train, ShuffleOnce(train.n_tuples, seed=seed),
                epochs=5, schedule=ExponentialDecay(0.1), test=test,
            ).run()

        stats = multi_seed(run, seeds=[0, 1, 2])
        assert len(stats.scores) == 3
        assert stats.mean > 0.9

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            multi_seed(lambda s: None, seeds=[])
