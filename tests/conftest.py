"""Shared fixtures: small, fast datasets and layouts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    BlockLayout,
    Dataset,
    clustered_by_label,
    make_binary_dense,
    make_binary_sparse,
    make_multiclass_dense,
)


@pytest.fixture(scope="session")
def dense_binary() -> Dataset:
    """600 tuples, 12 features, learnable, shuffled order."""
    return make_binary_dense(600, 12, separation=1.2, seed=11)


@pytest.fixture(scope="session")
def sparse_binary() -> Dataset:
    """300 sparse tuples over 150 features."""
    return make_binary_sparse(300, 150, nnz_per_row=12, separation=1.0, seed=13)


@pytest.fixture(scope="session")
def multiclass_dense() -> Dataset:
    """500 tuples, 4 classes."""
    return make_multiclass_dense(500, 16, 4, separation=2.5, seed=17)


@pytest.fixture()
def clustered_binary(dense_binary: Dataset) -> Dataset:
    return clustered_by_label(dense_binary, seed=1)


@pytest.fixture()
def layout_600() -> BlockLayout:
    """600 tuples in 30 blocks of 20."""
    return BlockLayout(600, 20)


def assert_is_permutation(order: np.ndarray, n: int) -> None:
    assert order.shape == (n,)
    assert sorted(order.tolist()) == list(range(n))
