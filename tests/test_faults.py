"""The fault plane: plans, faulty stores, retry/checksum, fault-invisibility.

The headline property (ISSUE satellite a): for *any* seeded transient-only
fault plan, training through the faulty storage stack is **bit-identical**
to the fault-free run — checksums catch torn reads, bounded retries absorb
transient errors, and the visit order never changes.  ``CHAOS_SEED`` (set
by the CI chaos-smoke matrix) shifts every seed in this file so each matrix
job explores a different schedule.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CorgiPileDataset, DataLoader, StorageStats
from repro.data import make_binary_dense
from repro.faults import (
    FaultPlan,
    FaultSpec,
    FaultyBlockFileReader,
    FaultyHeapFile,
    InjectedCrash,
    chaos_report,
    corrupt_bytes,
    faulty_reader_factory,
    faulty_table,
)
from repro.ml import LogisticRegression, train_streaming
from repro.storage import (
    BlockFileReader,
    BufferPool,
    ChecksumError,
    HeapFile,
    ReadExhaustedError,
    RetryPolicy,
    TransientReadError,
    write_block_file,
)

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))


@pytest.fixture(scope="module")
def block_file(tmp_path_factory):
    ds = make_binary_dense(400, 8, separation=1.2, seed=2)
    path = tmp_path_factory.mktemp("faults") / "data.blocks"
    write_block_file(ds, path, tuples_per_block=25)
    return path, ds


# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_random_draws_are_pure_functions_of_seed_and_unit(self):
        a = FaultPlan(seed=9, p_transient=0.5, p_torn=0.5, max_failures=3)
        b = FaultPlan(seed=9, p_transient=0.5, p_torn=0.5, max_failures=3)
        for target in range(30):
            assert a.decide("block", target, 1) == b.decide("block", target, 1)

    def test_draws_independent_of_read_interleaving(self):
        plan = FaultPlan(seed=3, p_transient=0.5, max_failures=2)
        forward = [plan.decide("block", t, 1) for t in range(20)]
        other = FaultPlan(seed=3, p_transient=0.5, max_failures=2)
        backward = [other.decide("block", t, 1) for t in reversed(range(20))]
        assert forward == list(reversed(backward))

    def test_spec_from_read_window(self):
        plan = FaultPlan(specs=[FaultSpec("transient", unit="page", target=4, from_read=2)])
        assert plan.decide("page", 4, 1).clean  # read call 1: before the window
        assert plan.decide("page", 4, 1).transient  # read call 2
        decision = plan.decide("page", 4, 2)  # retry of read call 2
        assert not decision.transient  # times=1: only attempt 1 fails

    def test_spec_times_bounds_consecutive_failures(self):
        plan = FaultPlan(specs=[FaultSpec("transient", target=0, times=3)])
        assert [plan.decide("block", 0, a).transient for a in (1, 2, 3, 4)] == [
            True,
            True,
            True,
            False,
        ]
        assert plan.max_consecutive_failures == 3

    def test_random_budget_covers_stacked_transient_and_torn(self):
        plan = FaultPlan(seed=0, p_transient=1.0, p_torn=1.0, max_failures=2)
        # transient fails come first, then torn ones; the advertised budget
        # must cover the stack, or retries can exhaust on a transient-only plan.
        assert plan.max_consecutive_failures == 4
        worst = plan.max_consecutive_failures
        decision = plan.decide("block", 0, worst + 1)
        assert not (decision.transient or decision.corrupt)

    def test_latency_spec_applies_to_whole_window(self):
        plan = FaultPlan(specs=[FaultSpec("latency", target=1, delay_s=0.25)])
        assert plan.decide("block", 1, 1).delay_s == 0.25
        assert plan.decide("block", 1, 1).delay_s == 0.25

    def test_crash_latch_fires_once(self):
        plan = FaultPlan(crash_at_tuple=10)
        assert plan.tuples_before_crash(4) == 6
        with pytest.raises(InjectedCrash):
            plan.fire_crash("test")
        assert plan.tuples_before_crash(99) is None  # resumed run survives
        plan.reset()
        assert plan.tuples_before_crash(4) == 6

    def test_transient_only_classification(self):
        assert FaultPlan(p_transient=0.5, p_torn=0.5, p_latency=0.5).transient_only
        assert not FaultPlan(crash_at_tuple=5).transient_only
        assert not FaultPlan(specs=[FaultSpec("crash", target=0)]).transient_only

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultSpec("meteor")
        with pytest.raises(ValueError):
            FaultSpec("transient", unit="galaxy")
        with pytest.raises(ValueError):
            FaultSpec("transient", times=0)
        with pytest.raises(ValueError):
            FaultSpec("transient", from_read=0)
        with pytest.raises(ValueError):
            FaultSpec("latency", delay_s=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(p_transient=1.5)
        with pytest.raises(ValueError):
            FaultPlan(max_failures=0)
        with pytest.raises(ValueError):
            FaultPlan(latency_s=-1.0)
        with pytest.raises(ValueError):
            FaultPlan(crash_at_tuple=-1)
        with pytest.raises(ValueError):
            plan = FaultPlan()
            plan.decide("block", 0, 0)
        with pytest.raises(ValueError):
            FaultPlan().decide("galaxy", 0, 1)

    def test_random_latency_draw_applies_on_first_attempt(self):
        plan = FaultPlan.random(3, p_transient=0.0, p_latency=1.0, latency_s=0.005)
        first = plan.decide("block", 0, 1)
        assert first.delay_s == 0.005
        # Latency is a per-read spike, not per-attempt: retries run full speed.
        assert plan.decide("block", 0, 2).delay_s == 0.0

    def test_crash_spec_in_decide(self):
        plan = FaultPlan(specs=[FaultSpec("crash", unit="block", target=2, from_read=2)])
        assert not plan.decide("block", 2, 1).crash
        assert plan.decide("block", 2, 1).crash  # second read call

    def test_describe_is_json_able(self):
        import json

        json.dumps(FaultPlan(seed=1, p_transient=0.1, crash_at_tuple=9).describe())


# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_retries_then_succeeds(self):
        stats = StorageStats("t")
        calls = []

        def attempt(a):
            calls.append(a)
            if a < 3:
                raise TransientReadError("flaky")
            return "data"

        assert RetryPolicy(max_attempts=4).run(attempt, stats=stats) == "data"
        assert calls == [1, 2, 3]
        assert stats.retries == 2 and stats.reads_ok == 1
        assert stats.transient_errors == 2

    def test_exhaustion_raises_with_context(self):
        policy = RetryPolicy(max_attempts=2)
        stats = StorageStats("t")
        with pytest.raises(ReadExhaustedError) as err:
            policy.run(
                lambda a: (_ for _ in ()).throw(ChecksumError("bad crc")),
                stats=stats,
                describe="block 7",
            )
        assert "block 7" in str(err.value) and "2 attempt" in str(err.value)
        assert isinstance(err.value.last_error, ChecksumError)
        assert stats.exhausted_reads == 1 and stats.checksum_failures == 2

    def test_non_retryable_errors_propagate(self):
        with pytest.raises(InjectedCrash):
            RetryPolicy(max_attempts=5).run(
                lambda a: (_ for _ in ()).throw(InjectedCrash("kill -9"))
            )

    def test_backoff_schedule_without_jitter(self):
        slept = []
        policy = RetryPolicy(
            max_attempts=4, backoff_s=0.1, backoff_factor=2.0,
            jitter=False, sleep=slept.append,
        )
        with pytest.raises(ReadExhaustedError):
            policy.run(lambda a: (_ for _ in ()).throw(TransientReadError("x")))
        assert slept == pytest.approx([0.1, 0.2, 0.4])

    def test_backoff_cap_bounds_the_envelope(self):
        slept = []
        policy = RetryPolicy(
            max_attempts=6, backoff_s=1.0, backoff_factor=10.0,
            max_backoff_s=2.5, jitter=False, sleep=slept.append,
        )
        with pytest.raises(ReadExhaustedError):
            policy.run(lambda a: (_ for _ in ()).throw(TransientReadError("x")))
        # 1.0 -> 10.0 (capped 2.5) -> capped 2.5 thereafter.
        assert slept == pytest.approx([1.0, 2.5, 2.5, 2.5, 2.5])

    def _jitter_delays(self, seed: int) -> list[float]:
        slept: list[float] = []
        policy = RetryPolicy(
            max_attempts=5, backoff_s=0.1, backoff_factor=2.0,
            max_backoff_s=0.3, seed=seed, sleep=slept.append,
        )
        with pytest.raises(ReadExhaustedError):
            policy.run(lambda a: (_ for _ in ()).throw(TransientReadError("x")))
        return slept

    def test_full_jitter_is_bounded_deterministic_and_desynchronised(self):
        delays = self._jitter_delays(seed=0)
        # Full jitter: each sleep lands in [0, min(envelope, cap)].
        for delay, envelope in zip(delays, [0.1, 0.2, 0.3, 0.3]):
            assert 0.0 <= delay <= envelope
        # Same seed -> bit-identical schedule (chaos runs stay reproducible).
        assert self._jitter_delays(seed=0) == delays
        # Different seeds (e.g. per-session) -> different schedules, so
        # concurrent sessions don't retry in lockstep.
        assert self._jitter_delays(seed=1) != delays

    def test_zero_backoff_never_sleeps_or_draws(self):
        slept = []
        policy = RetryPolicy(max_attempts=3, sleep=slept.append)
        with pytest.raises(ReadExhaustedError):
            policy.run(lambda a: (_ for _ in ()).throw(TransientReadError("x")))
        assert slept == []
        assert policy._rng is None  # the instant path never touches the RNG


# ----------------------------------------------------------------------
class TestFaultyStores:
    def test_corrupt_bytes_always_differs_and_is_deterministic(self):
        payload = bytes(range(256))
        assert corrupt_bytes(payload) != payload
        assert corrupt_bytes(payload, salt=1) == corrupt_bytes(payload, salt=1)
        assert corrupt_bytes(payload, salt=1) != corrupt_bytes(payload, salt=2)
        assert corrupt_bytes(b"") == b""

    def test_read_level_crash_punches_through_retry(self, block_file):
        path, _ = block_file
        stats = StorageStats("crash")
        plan = FaultPlan(specs=[FaultSpec("crash", unit="block", target=0)])
        with FaultyBlockFileReader(path, plan, storage_stats=stats) as faulty:
            with pytest.raises(InjectedCrash):
                faulty.read_block(0)
        assert stats.crashes_injected == 1

    def test_torn_block_read_is_caught_and_retried(self, block_file):
        path, _ = block_file
        stats = StorageStats("torn")
        plan = FaultPlan(specs=[FaultSpec("torn", target=2, times=1)])
        with BlockFileReader(path) as clean, FaultyBlockFileReader(
            path, plan, storage_stats=stats
        ) as faulty:
            want = [t.tuple_id for t in clean.read_block(2)]
            got = [t.tuple_id for t in faulty.read_block(2)]
        assert got == want
        assert stats.checksum_failures == 1 and stats.retries == 1

    def test_exhausted_block_read_raises(self, block_file):
        path, _ = block_file
        plan = FaultPlan(specs=[FaultSpec("transient", target=0, times=10)])
        with FaultyBlockFileReader(
            path, plan, retry=RetryPolicy(max_attempts=3)
        ) as reader:
            with pytest.raises(ReadExhaustedError):
                reader.read_block(0)
            assert reader.blocks_read == 0  # only successful reads are charged

    def test_latency_injection_recorded(self, block_file):
        path, _ = block_file
        stats = StorageStats("lat")
        plan = FaultPlan(specs=[FaultSpec("latency", target=1, delay_s=0.001)])
        with FaultyBlockFileReader(path, plan, storage_stats=stats) as reader:
            reader.read_block(1)
        assert stats.latency_events == 1
        assert stats.latency_injected_s == pytest.approx(0.001)

    def test_faulty_heap_is_a_view_not_a_copy(self, dense_binary):
        heap = HeapFile.from_dataset(dense_binary, page_bytes=1024)
        faulty = FaultyHeapFile(heap, FaultPlan())
        assert faulty.pages is heap.pages
        assert faulty.n_tuples == heap.n_tuples

    def test_torn_page_read_fails_checksum_then_recovers(self, dense_binary):
        heap = HeapFile.from_dataset(dense_binary, page_bytes=1024)
        stats = StorageStats("heap")
        plan = FaultPlan(specs=[FaultSpec("torn", unit="page", target=0, times=1)])
        faulty = FaultyHeapFile(heap, plan, storage_stats=stats)
        with pytest.raises(ChecksumError):
            faulty.read_page_batch(0)
        # Same read retried (attempt 2) comes back clean and verified.
        batch = faulty.read_page_batch(0, attempt=2)
        assert batch.ids.tolist() == heap.read_page_batch(0).ids.tolist()
        assert stats.checksum_failures == 0  # raw heap path: stats live in the pool

    def test_faulty_table_swaps_storage_but_not_data(self, dense_binary):
        from repro.db import Catalog

        table = Catalog(page_bytes=1024).create_table("t", dense_binary)
        swapped, stats = faulty_table(
            table, FaultPlan(specs=[FaultSpec("transient", unit="page", target=0)])
        )
        assert swapped.name == table.name and swapped.dataset is table.dataset
        assert isinstance(swapped.heap, FaultyHeapFile)
        want = [t.tuple_id for t in table.pool.get_page(0)]
        got = [t.tuple_id for t in swapped.pool.get_page(0)]
        assert got == want  # transient fault absorbed by the pool's retry
        assert stats.transient_errors == 1 and stats.retries == 1

    def test_chaos_report_shape(self):
        stats = StorageStats("s")
        stats.record_attempt()
        stats.record_ok()
        row = chaos_report(stats, FaultPlan(seed=3))
        assert row["store"] == "s" and row["attempts"] == 1 and "plan" in row


# ----------------------------------------------------------------------
def _train_through(path, reader_factory=None, seed=0, epochs=2):
    model = LogisticRegression(8)
    with CorgiPileDataset(
        path, buffer_blocks=2, seed=seed, reader_factory=reader_factory
    ) as view:

        def loader_factory(epoch):
            view.set_epoch(epoch)
            return DataLoader(view, batch_size=32)

        train_streaming(model, loader_factory, epochs=epochs, per_tuple=True, fused=True)
    return model


class TestFaultInvisibility:
    """Transient-only plans must not change training at all (satellite a)."""

    @pytest.mark.parametrize("seed", [CHAOS_SEED * 3 + k for k in range(3)])
    def test_heavy_transient_plan_bit_identical_with_nonzero_retries(
        self, block_file, seed
    ):
        path, _ = block_file
        clean = _train_through(path, seed=seed)
        stats = StorageStats("chaos")
        plan = FaultPlan.random(seed, p_transient=0.6, p_torn=0.3, max_failures=2)
        faulty = _train_through(
            path, reader_factory=faulty_reader_factory(plan, stats=stats), seed=seed
        )
        assert stats.retries > 0 and stats.faults_injected > 0
        for key in clean.params:
            assert np.array_equal(clean.params[key], faulty.params[key])

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        p_transient=st.floats(0.0, 0.5),
        p_torn=st.floats(0.0, 0.4),
        max_failures=st.integers(1, 3),
    )
    def test_any_transient_only_plan_is_invisible(
        self, block_file, seed, p_transient, p_torn, max_failures
    ):
        path, _ = block_file
        plan = FaultPlan.random(
            CHAOS_SEED + seed,
            p_transient=p_transient,
            p_torn=p_torn,
            max_failures=max_failures,
        )
        assert plan.transient_only
        clean = _train_through(path, seed=seed, epochs=1)
        faulty = _train_through(
            path, reader_factory=faulty_reader_factory(plan), seed=seed, epochs=1
        )
        for key in clean.params:
            assert np.array_equal(clean.params[key], faulty.params[key])
