"""Tests for the SQL-ish query parser."""

from __future__ import annotations

import pytest

from repro.db import ParseError, PredictQuery, TrainQuery, parse_query, parse_size


class TestParseSize:
    def test_units(self):
        assert parse_size("10MB") == 10 * 1024**2
        assert parse_size("2 KB") == 2048
        assert parse_size("1GB") == 1024**3
        assert parse_size("512B") == 512

    def test_bare_integer_is_bytes(self):
        assert parse_size("4096") == 4096

    def test_fractional(self):
        assert parse_size("1.5MB") == int(1.5 * 1024**2)

    def test_invalid(self):
        with pytest.raises(ParseError):
            parse_size("ten megs")


class TestTrainQueries:
    def test_paper_example(self):
        q = parse_query(
            "SELECT * FROM forest TRAIN BY svm WITH learning_rate = 0.1, "
            "max_epoch_num = 20, block_size = 10MB"
        )
        assert isinstance(q, TrainQuery)
        assert q.table == "forest"
        assert q.model == "svm"
        assert q.learning_rate == 0.1
        assert q.max_epoch_num == 20
        assert q.block_size == 10 * 1024**2

    def test_defaults(self):
        q = parse_query("SELECT * FROM t TRAIN BY lr")
        assert q.strategy == "corgipile"
        assert q.buffer_fraction == 0.1
        assert q.batch_size == 1

    def test_strategy_and_buffer(self):
        q = parse_query(
            "SELECT * FROM t TRAIN BY lr WITH strategy = no_shuffle, buffer_fraction = 0.02"
        )
        assert q.strategy == "no_shuffle"
        assert q.buffer_fraction == 0.02

    def test_boolean_param(self):
        q = parse_query("SELECT * FROM t TRAIN BY lr WITH double_buffer = false")
        assert q.double_buffer is False

    def test_unknown_params_collected(self):
        q = parse_query("SELECT * FROM t TRAIN BY lr WITH fancy_knob = 3")
        assert q.extra == {"fancy_knob": 3}

    def test_case_insensitive_keywords(self):
        q = parse_query("select * from t train by svm with learning_rate = 0.5")
        assert q.model == "svm"
        assert q.learning_rate == 0.5

    def test_unknown_model_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT * FROM t TRAIN BY resnet50")

    def test_malformed_parameter(self):
        with pytest.raises(ParseError):
            parse_query("SELECT * FROM t TRAIN BY lr WITH learning_rate")

    def test_bad_value_type(self):
        with pytest.raises(ParseError):
            parse_query("SELECT * FROM t TRAIN BY lr WITH max_epoch_num = soon")

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_query("FROBNICATE THE t TABLE")

    def test_malformed_insert_rejected(self):
        with pytest.raises(ParseError):
            parse_query("INSERT INTO t VALUES 1, 2")
        with pytest.raises(ParseError):
            parse_query("INSERT INTO t VALUES (1, x)")

    def test_int_coercion(self):
        q = parse_query("SELECT * FROM t TRAIN BY lr WITH batch_size = 128")
        assert q.batch_size == 128 and isinstance(q.batch_size, int)


class TestPredictQueries:
    def test_basic(self):
        q = parse_query("SELECT * FROM t PREDICT BY model_3")
        assert isinstance(q, PredictQuery)
        assert q.table == "t"
        assert q.model_id == "model_3"


class TestParserFuzz:
    """The parser must never crash un-cleanly on arbitrary input."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    @settings(max_examples=80, deadline=None)
    @given(text=st.text(max_size=120))
    def test_arbitrary_text_parses_or_raises_parse_error(self, text):
        from repro.db import ParseError
        from repro.db.query import parse_query

        try:
            parse_query(text)
        except ParseError:
            pass  # the only acceptable failure mode

    @settings(max_examples=40, deadline=None)
    @given(
        table=st.from_regex(r"[A-Za-z]\w{0,10}", fullmatch=True),
        lr=st.floats(1e-6, 10.0, allow_nan=False),
        epochs=st.integers(1, 500),
    )
    def test_generated_train_statements_roundtrip(self, table, lr, epochs):
        from repro.db.query import parse_query

        query = parse_query(
            f"SELECT * FROM {table} TRAIN BY svm WITH "
            f"learning_rate = {lr!r}, max_epoch_num = {epochs}"
        )
        assert query.table == table
        assert query.learning_rate == pytest.approx(lr)
        assert query.max_epoch_num == epochs


class TestParallelKnobs:
    def test_workers_and_aggregation_parse(self):
        q = parse_query(
            "SELECT * FROM t TRAIN BY lr WITH workers = 4, aggregation = 'epoch'"
        )
        assert isinstance(q, TrainQuery)
        assert q.workers == 4
        assert q.aggregation == "epoch"

    def test_defaults_stay_single_process(self):
        q = parse_query("SELECT * FROM t TRAIN BY lr")
        assert q.workers == 1
        assert q.aggregation == "sync"
