"""Tests for the columnar block format: codec round-trips, lazy views,
chunk-pruned reads, chunk-level fault injection, byte-budget buffer pooling,
SQL column projection, and the in-place row -> columnar migration."""

from __future__ import annotations

import shutil

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CorgiPileDataset
from repro.core.seeding import FAULT_UNIT_CODES, fault_unit_rng
from repro.data import make_binary_sparse
from repro.db import MiniDB, ParseError, SelectQuery, parse_query
from repro.faults import FaultPlan, FaultSpec, FaultyBlockFileReader, chunk_fault_target
from repro.ml import LogisticRegression, train_streaming_chunks, training_columns
from repro.storage import (
    BlockFileReader,
    BufferPool,
    ChecksumError,
    HeapFile,
    LazyTupleBatch,
    RetryPolicy,
    TupleBatch,
    TupleSchema,
    decode_block_columnar,
    encode_block_columnar,
    migrate_file,
    write_block_file,
)
from repro.storage.columnar import (
    COL_IDS,
    COL_VALUES,
    ENC_PACKED,
    read_columnar_header,
)
from repro.storage.filestore import save_heap
from repro.storage.retry import ReadExhaustedError


def _random_batch(seed: int, n: int, d: int, sparse: bool) -> TupleBatch:
    rng = np.random.default_rng(seed)
    ids = np.sort(rng.choice(10 * n + 10, size=n, replace=False)).astype(np.int64)
    labels = np.where(rng.random(n) < 0.5, -1.0, 1.0)
    if not sparse:
        return TupleBatch(ids, labels, d, dense=rng.standard_normal((n, d)))
    nnz = rng.integers(0, min(d, 6), size=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(nnz, out=indptr[1:])
    indices = np.concatenate(
        [np.sort(rng.choice(d, size=k, replace=False)) for k in nnz]
    ).astype(np.int64) if indptr[-1] else np.zeros(0, dtype=np.int64)
    values = rng.standard_normal(int(indptr[-1]))
    return TupleBatch(ids, labels, d, indptr=indptr, indices=indices, values=values)


def _assert_batches_equal(a: TupleBatch, b) -> None:
    np.testing.assert_array_equal(a.ids, b.ids)
    np.testing.assert_array_equal(a.labels, b.labels)
    if a.is_sparse:
        np.testing.assert_array_equal(a.indptr, b.indptr)
        np.testing.assert_array_equal(a.indices, b.indices)
        np.testing.assert_array_equal(a.values, b.values)
    else:
        np.testing.assert_array_equal(a.dense, b.dense)


class TestRoundTrip:
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(1, 40),
        d=st.integers(1, 64),
        sparse=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_roundtrip(self, seed, n, d, sparse):
        batch = _random_batch(seed, n, d, sparse)
        schema = TupleSchema(d, sparse=sparse)
        payload = encode_block_columnar(batch, schema)
        decoded = decode_block_columnar(payload, schema, verify_chunks=True)
        assert len(decoded) == n and decoded.is_sparse == sparse
        _assert_batches_equal(batch, decoded)

    def test_roundtrip_matches_scalar_rows(self):
        batch = _random_batch(3, 25, 30, sparse=True)
        decoded = decode_block_columnar(
            encode_block_columnar(batch), TupleSchema(30, sparse=True)
        )
        for i, t in enumerate(decoded.to_tuples()):
            assert t.tuple_id == batch.ids[i] and t.label == batch.labels[i]
            row = batch.row(i)
            np.testing.assert_array_equal(t.features.indices, row.indices)
            np.testing.assert_array_equal(t.features.values, row.values)

    def test_monotone_ids_are_delta_packed(self):
        batch = _random_batch(0, 64, 8, sparse=False)
        refs = read_columnar_header(encode_block_columnar(batch))[3]
        ids_ref = next(r for r in refs if r.col == COL_IDS)
        assert ids_ref.enc == ENC_PACKED and ids_ref.delta == 1
        assert ids_ref.length < 64 * 8  # strictly smaller than raw int64

    def test_bad_magic_rejected(self):
        payload = encode_block_columnar(_random_batch(1, 4, 3, False))
        with pytest.raises(ValueError):
            decode_block_columnar(b"XXXX" + payload[4:], TupleSchema(3))

    def test_corrupted_chunk_fails_crc(self):
        batch = _random_batch(2, 16, 12, sparse=False)
        payload = bytearray(encode_block_columnar(batch))
        refs = read_columnar_header(bytes(payload))[3]
        dense_ref = max(refs, key=lambda r: r.offset)
        payload[dense_ref.offset + 1] ^= 0xFF
        lazy = decode_block_columnar(bytes(payload), TupleSchema(12), verify_chunks=True)
        with pytest.raises(ChecksumError):
            lazy.dense  # noqa: B018 - materialisation triggers the CRC check


class TestLazyViews:
    def test_columns_materialize_on_touch(self):
        batch = _random_batch(5, 20, 40, sparse=True)
        lazy = decode_block_columnar(encode_block_columnar(batch))
        assert lazy.materialized_columns == frozenset()
        assert lazy.decoded_nbytes == 0
        lazy.labels  # noqa: B018
        assert lazy.materialized_columns == frozenset({"labels"})
        assert lazy.decoded_nbytes == 20 * 8
        lazy.materialize()
        assert "values" in lazy.materialized_columns

    def test_raw_float_chunks_are_zero_copy_views(self):
        batch = _random_batch(6, 10, 4, sparse=False)
        lazy = decode_block_columnar(encode_block_columnar(batch))
        assert not lazy.labels.flags.owndata  # np.frombuffer view, no copy

    def test_pruned_decode_drops_columns(self):
        batch = _random_batch(7, 8, 5, sparse=False)
        lazy = decode_block_columnar(
            encode_block_columnar(batch), columns=("labels",)
        )
        assert lazy.available_columns == frozenset({"labels"})
        np.testing.assert_array_equal(lazy.labels, batch.labels)
        with pytest.raises(KeyError):
            lazy.dense  # noqa: B018


@pytest.fixture()
def columnar_file(tmp_path, sparse_binary):
    path = tmp_path / "sparse.columnar.blocks"
    write_block_file(sparse_binary, path, tuples_per_block=40, layout="columnar")
    return path


class TestColumnarBlockFile:
    def test_reader_reports_layout_and_chunks(self, columnar_file):
        with BlockFileReader(columnar_file) as reader:
            assert reader.layout == "columnar"
            assert all(e.chunks for e in reader.entries)
            batch = reader.read_block_batch(0)
            assert isinstance(batch, LazyTupleBatch)

    def test_content_matches_row_layout(self, tmp_path, columnar_file, sparse_binary):
        row_path = tmp_path / "sparse.row.blocks"
        write_block_file(sparse_binary, row_path, tuples_per_block=40)
        with BlockFileReader(row_path) as row, BlockFileReader(columnar_file) as col:
            assert row.n_blocks == col.n_blocks
            for b in range(row.n_blocks):
                _assert_batches_equal(row.read_block_batch(b), col.read_block_batch(b))

    def test_pruned_read_touches_only_requested_chunks(self, columnar_file):
        with BlockFileReader(columnar_file) as reader:
            batch = reader.read_block_batch(0, columns=("labels", "indptr"))
            assert batch.available_columns == frozenset({"labels", "indptr"})
            with pytest.raises(KeyError):
                batch.values  # noqa: B018

    def test_visit_order_identical_to_row_layout(self, tmp_path, sparse_binary, columnar_file):
        row_path = tmp_path / "order.row.blocks"
        write_block_file(sparse_binary, row_path, tuples_per_block=40)
        with CorgiPileDataset(row_path, buffer_blocks=2, seed=7) as row_view:
            row_view.set_epoch(1)
            want = [t.tuple_id for t in row_view]
        with CorgiPileDataset(columnar_file, buffer_blocks=2, seed=7) as col_view:
            col_view.set_epoch(1)
            got = []
            for fill in col_view.iter_fills(columns=training_columns(True, with_ids=True)):
                for c, i in fill.order.tolist():
                    got.append(int(fill.batches[c].ids[i]))
        assert got == want


class TestChunkFaults:
    def test_chunk_unit_registered(self):
        assert FAULT_UNIT_CODES["chunk"] == 3
        a = fault_unit_rng(0, "chunk", 5).random()
        b = fault_unit_rng(0, "block", 5).random()
        assert a != b  # chunk draws are an independent stream

    def test_torn_chunk_absorbed_by_retry(self, columnar_file):
        target = chunk_fault_target(0, COL_VALUES)
        plan = FaultPlan(specs=[FaultSpec("torn", unit="chunk", target=target)])
        with BlockFileReader(columnar_file) as clean:
            want = clean.read_block_batch(0).materialize()
        reader = FaultyBlockFileReader(columnar_file, plan)
        try:
            batch = reader.read_block_batch(0, columns=training_columns(True))
            np.testing.assert_array_equal(batch.values, want.values)
            np.testing.assert_array_equal(batch.labels, want.labels)
        finally:
            reader.close()

    def test_torn_chunk_without_retry_raises(self, columnar_file):
        target = chunk_fault_target(0, COL_VALUES)
        plan = FaultPlan(specs=[FaultSpec("torn", unit="chunk", target=target, times=5)])
        reader = FaultyBlockFileReader(
            columnar_file, plan, retry=RetryPolicy(max_attempts=2, backoff_s=0.0)
        )
        try:
            with pytest.raises(ReadExhaustedError):
                reader.read_block_batch(0, columns=("values",))
        finally:
            reader.close()

    def test_fault_on_untouched_chunk_is_invisible(self, columnar_file):
        # The values chunk is poisoned, but a labels-only projection never
        # reads it — pruned reads must not trip faults on pruned columns.
        target = chunk_fault_target(0, COL_VALUES)
        plan = FaultPlan(specs=[FaultSpec("torn", unit="chunk", target=target, times=99)])
        reader = FaultyBlockFileReader(
            columnar_file, plan, retry=RetryPolicy(max_attempts=1)
        )
        try:
            batch = reader.read_block_batch(0, columns=("labels",))
            assert batch.labels.size > 0
        finally:
            reader.close()

    def test_spec_validates_chunk_unit(self):
        FaultSpec("transient", unit="chunk", target=1)
        with pytest.raises(ValueError):
            FaultSpec("transient", unit="bogus", target=1)


class TestBufferPoolDecodedBytes:
    def test_budget_charges_decoded_not_encoded_bytes(self):
        # High-dimensional sparse table: the encoded columnar page is small,
        # but a fully materialised batch pins much more decoded memory.  The
        # pool must charge the latter.
        ds = make_binary_sparse(240, 5000, nnz_per_row=20, separation=1.0, seed=5)
        heap = HeapFile.from_dataset(ds, page_bytes=2048, layout="columnar")
        pool = BufferPool(heap, capacity_pages=1024, capacity_bytes=16 * 1024)
        n_pages = heap.n_pages
        assert n_pages >= 4
        for page_id in range(n_pages):
            # Materialising grows the cached entry's decoded footprint; the
            # next pool access re-enforces the byte budget and evicts.
            pool.get_batch(page_id).materialize()
        assert pool.cached_pages < n_pages  # the byte budget forced evictions
        assert pool.evictions > 0
        # Whatever survives fits the budget (the MRU entry is always kept).
        assert pool.decoded_bytes <= 16 * 1024 or pool.cached_pages == 1

    def test_lazy_entries_charge_only_touched_columns(self):
        ds = make_binary_sparse(120, 2000, nnz_per_row=10, separation=1.0, seed=6)
        heap = HeapFile.from_dataset(ds, page_bytes=2048, layout="columnar")
        pool = BufferPool(heap, capacity_pages=64)
        batch = pool.get_batch(0)
        assert pool.decoded_bytes == 0
        batch.labels  # noqa: B018
        assert pool.decoded_bytes == batch.labels.nbytes


class TestSelectProjection:
    def test_parse_column_list(self):
        query = parse_query("SELECT label, id FROM t LIMIT 5")
        assert query == SelectQuery(table="t", limit=5, columns=("label", "rid"))

    def test_parse_feature_column(self):
        assert parse_query("SELECT f3 FROM t").columns == ("f3",)

    def test_parse_star_keeps_default(self):
        assert parse_query("SELECT * FROM t LIMIT 2").columns is None

    def test_unknown_column_rejected(self):
        with pytest.raises(ParseError):
            parse_query("SELECT bogus FROM t")

    def test_projection_prunes_columnar_table(self, sparse_binary):
        db = MiniDB(page_bytes=2048)
        db.create_table("t", sparse_binary, layout="columnar")
        response = db.execute("SELECT label, rid FROM t LIMIT 4")
        assert response["columns"] == ["label", "rid"]
        assert all(set(r) == {"label", "rid"} for r in response["rows"])
        # The lazy batch in the pool never decoded the feature chunks.
        batch = db.catalog.get("t").pool.get_batch(0)
        assert "values" not in batch.materialized_columns

    def test_feature_column_values(self, dense_binary):
        db = MiniDB(page_bytes=4096)
        db.create_table("t", dense_binary, layout="columnar")
        rows = db.execute("SELECT f3 FROM t LIMIT 2")["rows"]
        assert rows[0]["f3"] == pytest.approx(float(dense_binary.X[0, 3]))
        with pytest.raises(Exception):
            db.execute("SELECT f99 FROM t LIMIT 1")


class TestMigrate:
    def _block_file(self, tmp_path, dataset, name="m.blocks"):
        path = tmp_path / name
        write_block_file(dataset, path, tuples_per_block=40)
        return path

    def test_block_file_roundtrip(self, tmp_path, sparse_binary):
        path = self._block_file(tmp_path, sparse_binary)
        report = migrate_file(path)
        assert report.kind == "block" and not report.skipped
        assert report.verified_blocks == report.n_blocks
        assert report.bytes_after < report.bytes_before
        with BlockFileReader(path) as reader:
            assert reader.layout == "columnar"
            ids = sorted(
                t.tuple_id for b in range(reader.n_blocks) for t in reader.read_block(b)
            )
        assert ids == list(range(sparse_binary.n_tuples))

    def test_migrate_is_idempotent(self, tmp_path, dense_binary):
        path = self._block_file(tmp_path, dense_binary)
        migrate_file(path)
        report = migrate_file(path)
        assert report.skipped

    def test_interrupted_migration_resumes(self, tmp_path, sparse_binary):
        path = self._block_file(tmp_path, sparse_binary)
        with pytest.raises(KeyboardInterrupt):
            migrate_file(path, _stop_after_blocks=2)
        assert path.with_name(path.name + ".migrate.state.json").exists()
        report = migrate_file(path)
        assert report.resumed_at_block == 2
        assert not path.with_name(path.name + ".migrate.state.json").exists()
        with BlockFileReader(path) as reader:
            assert reader.layout == "columnar"
            total = sum(e.n_tuples for e in reader.entries)
        assert total == sparse_binary.n_tuples

    def test_interrupted_run_leaves_source_readable(self, tmp_path, dense_binary):
        path = self._block_file(tmp_path, dense_binary)
        with pytest.raises(KeyboardInterrupt):
            migrate_file(path, _stop_after_blocks=1)
        with BlockFileReader(path) as reader:  # source untouched until finalize
            assert reader.layout == "row"
            assert reader.read_block(0)

    def test_heap_file_migration(self, tmp_path, sparse_binary):
        # Heap sources migrate into a columnar *block file* (the training
        # format), preserving block_pages grouping as the block boundaries.
        heap = HeapFile.from_dataset(sparse_binary, page_bytes=2048)
        path = tmp_path / "table.heap"
        save_heap(heap, path)
        report = migrate_file(path)
        assert report.kind == "heap" and not report.skipped
        with BlockFileReader(path) as reader:
            assert reader.layout == "columnar"
            got = sorted(
                t.tuple_id for b in range(reader.n_blocks) for t in reader.read_block(b)
            )
        assert got == list(range(sparse_binary.n_tuples))

    def test_training_bit_identical_after_migration(self, tmp_path, sparse_binary):
        row_path = self._block_file(tmp_path, sparse_binary, "row.blocks")
        col_path = tmp_path / "col.blocks"
        shutil.copy(row_path, col_path)
        shutil.copy(
            str(row_path) + ".index.json", str(col_path) + ".index.json"
        )
        migrate_file(col_path)
        weights = []
        for path in (row_path, col_path):
            model = LogisticRegression(sparse_binary.n_features)
            with CorgiPileDataset(path, buffer_blocks=2, seed=3) as view:
                train_streaming_chunks(model, view, epochs=2)
            weights.append({k: v.copy() for k, v in model.params.items()})
        for key in weights[0]:
            np.testing.assert_array_equal(weights[0][key], weights[1][key])


class TestColumnarHeap:
    def test_scan_matches_row_layout(self, sparse_binary):
        row = HeapFile.from_dataset(sparse_binary, page_bytes=2048)
        col = HeapFile.from_dataset(sparse_binary, page_bytes=2048, layout="columnar")
        want = [(t.tuple_id, t.label) for t in row.scan()]
        got = [(t.tuple_id, t.label) for t in col.scan()]
        assert got == want

    def test_compress_plus_columnar_rejected(self):
        with pytest.raises(ValueError):
            HeapFile(TupleSchema(4), compress=True, layout="columnar")
