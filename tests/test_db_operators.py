"""Tests for the Volcano physical operators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.db import (
    BlockShuffleOperator,
    Catalog,
    PassThroughAccountingOperator,
    SeqScanOperator,
    TupleShuffleOperator,
)
from repro.db.engine import ENGINE_PROFILE
from repro.db.timing import RuntimeContext
from repro.storage import SSD


@pytest.fixture()
def table(dense_binary):
    catalog = Catalog(page_bytes=1024)
    return catalog.create_table("t", dense_binary)


@pytest.fixture()
def ctx():
    return RuntimeContext(device=SSD, compute=ENGINE_PROFILE, values_per_tuple=12.0)


class TestSeqScan:
    def test_scans_in_heap_order(self, table, ctx):
        scan = SeqScanOperator(table, ctx)
        scan.open()
        ids = [r.tuple_id for r in scan]
        assert ids == list(range(table.n_tuples))

    def test_rescan_restarts(self, table, ctx):
        scan = SeqScanOperator(table, ctx)
        scan.open()
        first = [scan.next().tuple_id for _ in range(5)]
        scan.rescan()
        second = [scan.next().tuple_id for _ in range(5)]
        assert first == second == [0, 1, 2, 3, 4]

    def test_charges_io(self, table, ctx):
        scan = SeqScanOperator(table, ctx)
        scan.open()
        list(scan)
        assert ctx.total_io_s > 0


class TestBlockShuffle:
    def test_covers_all_tuples(self, table, ctx):
        op = BlockShuffleOperator(table, ctx, block_bytes=4096, seed=1)
        op.open()
        ids = sorted(r.tuple_id for r in op)
        assert ids == list(range(table.n_tuples))

    def test_blocks_emitted_contiguously(self, table, ctx):
        op = BlockShuffleOperator(table, ctx, block_bytes=4096, seed=1)
        op.open()
        ids = [r.tuple_id for r in op]
        # Within a block ids ascend by 1; only block boundaries may jump
        # (and adjacent shuffled blocks can coincidentally be consecutive).
        jumps = int(np.sum(np.diff(ids) != 1))
        assert 0 < jumps <= op.n_blocks - 1

    def test_block_order_is_shuffled(self, table, ctx):
        op = BlockShuffleOperator(table, ctx, block_bytes=4096, seed=1)
        op.open()
        ids = [r.tuple_id for r in op]
        assert ids != sorted(ids)

    def test_rescan_reshuffles(self, table, ctx):
        op = BlockShuffleOperator(table, ctx, block_bytes=4096, seed=1)
        op.open()
        first = [r.tuple_id for r in op]
        op.rescan()
        second = [r.tuple_id for r in op]
        assert sorted(first) == sorted(second)
        assert first != second

    def test_buffer_pool_hits_cheaper_second_pass(self, table, ctx):
        op = BlockShuffleOperator(table, ctx, block_bytes=4096, seed=1)
        op.open()
        list(op)
        cold_io = ctx.total_io_s
        op.rescan()
        list(op)
        warm_io = ctx.total_io_s - cold_io
        assert warm_io < cold_io / 10  # cached pages at memory speed


class TestTupleShuffle:
    def test_emits_all_tuples_shuffled(self, table, ctx):
        child = BlockShuffleOperator(table, ctx, block_bytes=4096, seed=2)
        op = TupleShuffleOperator(child, ctx, buffer_tuples=100, seed=2)
        op.open()
        ids = [r.tuple_id for r in op]
        assert sorted(ids) == list(range(table.n_tuples))
        # Tuple-level shuffle destroys the within-block contiguity.
        assert np.mean(np.abs(np.diff(ids)) == 1) < 0.3

    def test_fill_boundaries_recorded(self, table, ctx):
        child = SeqScanOperator(table, ctx)
        op = TupleShuffleOperator(child, ctx, buffer_tuples=100, seed=0)
        op.open()
        list(op)
        ctx.epoch_wall_time()
        assert ctx.tuples_processed == table.n_tuples

    def test_rescan_resets(self, table, ctx):
        child = SeqScanOperator(table, ctx)
        op = TupleShuffleOperator(child, ctx, buffer_tuples=50, seed=0)
        op.open()
        first = [r.tuple_id for r in op]
        op.rescan()
        second = [r.tuple_id for r in op]
        assert sorted(first) == sorted(second)
        assert first != second  # new epoch, new buffer shuffles

    def test_invalid_buffer(self, table, ctx):
        with pytest.raises(ValueError):
            TupleShuffleOperator(SeqScanOperator(table, ctx), ctx, buffer_tuples=0)


class TestPassThrough:
    def test_preserves_order_and_counts_fills(self, table, ctx):
        child = SeqScanOperator(table, ctx)
        op = PassThroughAccountingOperator(child, ctx, chunk_tuples=64)
        op.open()
        ids = [r.tuple_id for r in op]
        assert ids == list(range(table.n_tuples))
        assert ctx.tuples_processed == table.n_tuples

    def test_invalid_chunk(self, table, ctx):
        with pytest.raises(ValueError):
            PassThroughAccountingOperator(SeqScanOperator(table, ctx), ctx, 0)
