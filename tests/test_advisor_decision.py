"""Regression + property tests for the cost-based shuffle advisor.

The regression table below pins :func:`advise_from_stats` across the
(h_D, device, buffer-fraction, epochs) grid the design doc walks through
— any cost-model change that flips a cell must update both the table and
DESIGN.md §13 deliberately.  The property tests then check the invariants
behind the table: shuffled data never pays for shuffling, the NVM "LIRS
point" flips the decision away from sort-based plans, the chosen strategy
is always the cheapest costed candidate, and the plan-time h_D probe
converges to the full-data clustering factor.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import clustered_by_label, make_binary_dense
from repro.db import Catalog
from repro.db.advisor import (
    ADVISOR_CANDIDATES,
    PENALTY_EPOCHS_PER_HD,
    AdvisorDecision,
    advise_from_stats,
    advise_strategy,
    estimate_hd,
)
from repro.db.engine import ENGINE_PROFILE
from repro.storage import DEVICE_MODELS, device_by_name
from repro.theory import hd_factor

BLOCK = 10 * 1024 * 1024
N = 1_000_000
TUPLE_BYTES = 400.0


def _advise(hd, device, buffer_fraction, epochs):
    return advise_from_stats(
        n_tuples=N,
        tuple_bytes=TUPLE_BYTES,
        hd=hd,
        device=device_by_name(device),
        block_bytes=BLOCK,
        buffer_fraction=buffer_fraction,
        epochs=epochs,
        compute=ENGINE_PROFILE,
    )


# (hd, device, buffer_fraction, epochs) -> expected strategy.  Exhaustive
# over the documented grid; every regime the advisor is supposed to
# exhibit appears at least once:
#   * hd=1: nothing beats reading in storage order, on any device;
#   * moderate clustering + a real buffer: CorgiPile everywhere;
#   * starved buffer on SSD: in-block reshuffle is all you can afford;
#   * heavy clustering: Corgi²'s offline pass amortises (short runs keep
#     it even on HDD; long HDD runs tip into a full sort);
#   * NVM: random reads ≈ sequential, so random_access wins whenever
#     clustering is non-trivial — the LIRS flip.
DECISION_TABLE = {
    # -- h_D = 1: already shuffled ------------------------------------
    (1.0, "hdd", 0.1, 20): "no_shuffle",
    (1.0, "ssd", 0.1, 20): "no_shuffle",
    (1.0, "nvm", 0.1, 20): "no_shuffle",
    (1.0, "hdd", 0.01, 5): "no_shuffle",
    (1.0, "ssd", 0.01, 5): "no_shuffle",
    (1.0, "nvm", 0.01, 5): "no_shuffle",
    # -- h_D = 2: moderate clustering ---------------------------------
    (2.0, "hdd", 0.1, 20): "corgipile",
    (2.0, "ssd", 0.1, 20): "corgipile",
    (2.0, "nvm", 0.1, 20): "corgipile",
    (2.0, "hdd", 0.01, 20): "no_shuffle",
    (2.0, "ssd", 0.01, 20): "block_reshuffle",
    (2.0, "nvm", 0.01, 20): "random_access",
    # -- h_D = 8: heavy clustering ------------------------------------
    (8.0, "hdd", 0.1, 5): "corgi2",
    (8.0, "hdd", 0.1, 20): "shuffle_once",
    (8.0, "hdd", 0.01, 20): "shuffle_once",
    (8.0, "ssd", 0.1, 5): "corgi2",
    (8.0, "ssd", 0.1, 20): "corgi2",
    (8.0, "ssd", 0.01, 5): "block_reshuffle",
    (8.0, "ssd", 0.01, 20): "shuffle_once",
    (8.0, "nvm", 0.1, 20): "random_access",
    (8.0, "nvm", 0.01, 20): "random_access",
}


class TestDecisionTable:
    @pytest.mark.parametrize(
        "hd,device,buffer_fraction,epochs,expected",
        [(k[0], k[1], k[2], k[3], v) for k, v in sorted(DECISION_TABLE.items())],
        ids=lambda v: str(v),
    )
    def test_pinned_choice(self, hd, device, buffer_fraction, epochs, expected):
        decision = _advise(hd, device, buffer_fraction, epochs)
        assert decision.strategy == expected

    def test_lirs_flip(self):
        """Same workload, only the device changes: the NVM point where
        random reads are ~free must flip the plan away from sorting."""
        on_hdd = _advise(8.0, "hdd", 0.1, 20)
        on_nvm = _advise(8.0, "nvm", 0.1, 20)
        assert on_hdd.strategy == "shuffle_once"
        assert on_nvm.strategy == "random_access"
        # On HDD, per-tuple random access is catastrophically expensive.
        hdd_ra = {c.strategy: c for c in on_hdd.costs}["random_access"]
        assert hdd_ra.total_s > 100.0 * on_hdd.chosen.total_s


class TestCostModelInvariants:
    def test_chosen_is_cheapest_and_all_candidates_costed(self):
        decision = _advise(4.0, "ssd", 0.1, 20)
        assert {c.strategy for c in decision.costs} == set(ADVISOR_CANDIDATES)
        best = min(decision.costs, key=lambda c: c.total_s)
        assert decision.chosen.total_s == best.total_s
        assert decision.strategy == decision.chosen.strategy

    def test_epoch_multiplier_formula(self):
        decision = _advise(5.0, "ssd", 0.1, 20)
        for cost in decision.costs:
            expected = 1.0 + PENALTY_EPOCHS_PER_HD * (cost.effective_hd - 1.0)
            assert cost.epoch_multiplier == pytest.approx(expected)
            assert cost.effective_hd >= 1.0

    def test_perfect_shufflers_reach_hd_one(self):
        decision = _advise(9.0, "ssd", 0.1, 20)
        by_name = {c.strategy: c for c in decision.costs}
        for name in ("shuffle_once", "random_access"):
            assert by_name[name].effective_hd == pytest.approx(1.0)
        # Residual ordering: corgi2 < corgipile < reshuffle < reversal < none.
        assert (
            by_name["corgi2"].effective_hd
            < by_name["corgipile"].effective_hd
            < by_name["block_reshuffle"].effective_hd
            < by_name["block_reversal"].effective_hd
            < by_name["no_shuffle"].effective_hd
        )
        assert by_name["no_shuffle"].effective_hd == pytest.approx(9.0)

    def test_render_and_describe(self):
        decision = _advise(8.0, "nvm", 0.1, 20)
        text = decision.render()
        assert "Advisor (device=nvm" in text
        assert "=> " in text  # the chosen-strategy marker
        assert "random_access" in text
        assert "h_D=8.00" in decision.describe()

    def test_doc_round_trip(self):
        decision = _advise(8.0, "hdd", 0.1, 20)
        doc = decision.to_doc()
        back = AdvisorDecision.from_doc(doc)
        assert back.strategy == decision.strategy
        assert back.device == decision.device
        assert back.hd.hd == pytest.approx(decision.hd.hd)
        assert len(back.costs) == len(decision.costs)
        for a, b in zip(back.costs, decision.costs):
            assert a.strategy == b.strategy
            assert a.total_s == pytest.approx(b.total_s)
        # Docs are plain JSON types all the way down (they ride the serve
        # journal and the wire protocol).
        import json

        json.dumps(doc)


class TestDecisionProperties:
    @given(
        hd=st.floats(min_value=1.0, max_value=64.0),
        device=st.sampled_from(sorted(DEVICE_MODELS)),
        buffer_fraction=st.floats(min_value=0.01, max_value=1.0),
        epochs=st.integers(min_value=1, max_value=50),
    )
    @settings(max_examples=60, deadline=None)
    def test_total_is_finite_and_choice_is_argmin(
        self, hd, device, buffer_fraction, epochs
    ):
        decision = advise_from_stats(
            n_tuples=100_000,
            tuple_bytes=TUPLE_BYTES,
            hd=hd,
            device=device_by_name(device),
            block_bytes=1024 * 1024,
            buffer_fraction=buffer_fraction,
            epochs=epochs,
            compute=ENGINE_PROFILE,
        )
        totals = [c.total_s for c in decision.costs]
        assert all(math.isfinite(t) and t > 0 for t in totals)
        assert decision.chosen.total_s == min(totals)

    @given(hd=st.floats(min_value=1.0, max_value=32.0))
    @settings(max_examples=30, deadline=None)
    def test_unclustered_never_pays_setup(self, hd):
        """At h_D=1 no strategy can beat sequential no-shuffle reads;
        and the no_shuffle cost is monotone in h_D."""
        decision = _advise(1.0, "ssd", 0.1, 20)
        assert decision.strategy == "no_shuffle"
        lo = {c.strategy: c for c in _advise(1.0, "ssd", 0.1, 20).costs}
        hi = {c.strategy: c for c in _advise(hd, "ssd", 0.1, 20).costs}
        assert hi["no_shuffle"].total_s >= lo["no_shuffle"].total_s


class TestHdProbeConvergence:
    """The plan-time sample estimate must track the full-data h_D."""

    @staticmethod
    def _table(dataset):
        return Catalog(page_bytes=1024).create_table("t", dataset)

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=10, deadline=None)
    def test_probe_matches_full_scan(self, seed):
        ds = clustered_by_label(
            make_binary_dense(1200, 6, separation=1.2, seed=seed), seed=seed
        )
        table = self._table(ds)
        full = estimate_hd(table, block_bytes=4096, max_probe_tuples=ds.n_tuples)
        probe = estimate_hd(table, block_bytes=4096, max_probe_tuples=400)
        assert full.n_sampled == ds.n_tuples
        assert probe.n_sampled <= 400 + 64  # chunk rounding slack
        # The sampled estimate lands within 40% of the full-scan value —
        # plenty for a decision that only needs order-of-magnitude h_D.
        assert probe.hd == pytest.approx(full.hd, rel=0.4)

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=10, deadline=None)
    def test_clustered_exceeds_shuffled(self, seed):
        base = make_binary_dense(1200, 6, separation=1.2, seed=seed)
        clustered = estimate_hd(
            self._table(clustered_by_label(base, seed=seed)), block_bytes=4096
        )
        shuffled = estimate_hd(
            self._table(base.shuffled(seed=seed + 1)), block_bytes=4096
        )
        assert clustered.hd > 2.0 * shuffled.hd
        assert shuffled.hd < 1.5

    def test_probe_agrees_with_theory_helper(self):
        ds = clustered_by_label(make_binary_dense(1000, 6, separation=1.5, seed=3))
        table = self._table(ds)
        est = estimate_hd(table, block_bytes=4096, max_probe_tuples=ds.n_tuples)
        assert est.tuples_per_block >= 1
        assert est.n_blocks == math.ceil(ds.n_tuples / est.tuples_per_block)
        assert 1.0 <= est.hd <= est.tuples_per_block * est.n_blocks

    def test_advise_strategy_uses_given_hd_without_probing(self):
        ds = make_binary_dense(500, 4, seed=0)
        table = self._table(ds)
        decision = advise_strategy(
            table,
            device_by_name("ssd"),
            block_bytes=4096,
            hd=7.5,
            compute=ENGINE_PROFILE,
        )
        assert decision.hd.hd == pytest.approx(7.5)
        assert decision.hd.n_sampled == 0  # marks "given, not probed"
