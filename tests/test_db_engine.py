"""End-to-end tests for the MiniDB engine and the comparator systems."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import clustered_by_label, make_binary_dense, make_binary_sparse
from repro.db import (
    MiniDB,
    Timeline,
    TrainQuery,
    UnknownModelError,
    UnknownTableError,
    madlib_supports,
    run_framework,
    run_in_db_system,
)
from repro.db.systems import BISMARCK_PROFILE, MADLIB_PROFILE, PYTORCH_PROFILE
from repro.ml import LogisticRegression
from repro.storage import HDD, SSD


@pytest.fixture(scope="module")
def problem():
    ds = make_binary_dense(1500, 16, separation=1.4, seed=0)
    train, test = ds.split(0.9, seed=1)
    return clustered_by_label(train), test


@pytest.fixture()
def db(problem):
    train, _ = problem
    engine = MiniDB(device=SSD)
    engine.create_table("higgs", train)
    return engine


SQL = (
    "SELECT * FROM higgs TRAIN BY lr WITH learning_rate = 0.1, max_epoch_num = 5, "
    "block_size = 16KB, buffer_fraction = 0.1"
)


class TestTrainQuery:
    def test_sql_roundtrip(self, db, problem):
        _, test = problem
        result = db.execute(SQL, test=test)
        assert result.history.epochs == 5
        assert result.history.final.test_score > 0.75
        assert result.timeline.total_time_s > 0
        assert result.model_id == "model_1"

    def test_predict_by_model_id(self, db, problem):
        _, test = problem
        result = db.execute(SQL, test=test)
        preds = db.execute(f"SELECT * FROM higgs PREDICT BY {result.model_id}")
        assert set(np.unique(preds)) <= {-1.0, 1.0}
        assert preds.shape == (db.catalog.get("higgs").n_tuples,)

    def test_unknown_model(self, db):
        with pytest.raises(UnknownModelError):
            db.execute("SELECT * FROM higgs PREDICT BY model_99")

    def test_unknown_table(self, db):
        with pytest.raises(UnknownTableError):
            db.execute("SELECT * FROM nope TRAIN BY lr")

    def test_epoch_wall_times_positive(self, db, problem):
        _, test = problem
        result = db.execute(SQL, test=test)
        assert all(p.time_s > 0 for p in result.timeline.points)
        times = [p.time_s for p in result.timeline.points]
        assert times == sorted(times)


class TestStrategies:
    @pytest.mark.parametrize(
        "strategy", ["corgipile", "no_shuffle", "shuffle_once", "block_only"]
    )
    def test_all_strategies_run(self, problem, strategy):
        train, test = problem
        result = run_in_db_system(
            "corgipile", strategy, train, test, "svm", SSD,
            epochs=3, block_size=16 * 1024,
        )
        assert result.history.epochs == 3
        assert 0.4 <= result.history.final.test_score <= 1.0

    def test_shuffle_once_pays_setup_and_disk(self, problem):
        train, test = problem
        once = run_in_db_system(
            "bismarck", "shuffle_once", train, test, "lr", HDD, epochs=2,
            block_size=16 * 1024,
        )
        corgi = run_in_db_system(
            "corgipile", "corgipile", train, test, "lr", HDD, epochs=2,
            block_size=16 * 1024,
        )
        assert once.timeline.setup_s > 0
        assert corgi.timeline.setup_s == 0
        assert once.resources.extra_disk_bytes > 0
        assert corgi.resources.extra_disk_bytes == 0

    def test_corgipile_matches_shuffle_once_accuracy(self, problem):
        train, test = problem
        kwargs = dict(epochs=8, block_size=8 * 1024, learning_rate=0.05)
        corgi = run_in_db_system("corgipile", "corgipile", train, test, "lr", SSD, **kwargs)
        once = run_in_db_system("corgipile", "shuffle_once", train, test, "lr", SSD, **kwargs)
        none = run_in_db_system("corgipile", "no_shuffle", train, test, "lr", SSD, **kwargs)
        assert abs(corgi.history.final.test_score - once.history.final.test_score) < 0.05
        assert none.history.final.test_score < corgi.history.final.test_score

    def test_double_buffer_faster_than_single(self, problem):
        train, test = problem
        double = run_in_db_system(
            "corgipile", "corgipile", train, test, "lr", HDD, epochs=2,
            block_size=16 * 1024,
        )
        single = run_in_db_system(
            "corgipile", "corgipile_single_buffer", train, test, "lr", HDD, epochs=2,
            block_size=16 * 1024,
        )
        assert double.timeline.total_time_s <= single.timeline.total_time_s

    def test_unknown_strategy(self, db):
        query = TrainQuery(table="higgs", model="lr", strategy="chaos")
        with pytest.raises(Exception):
            db.train(query)


class TestSystems:
    def test_madlib_slower_per_epoch_than_bismarck(self, problem):
        train, test = problem
        madlib = run_in_db_system(
            "madlib", "no_shuffle", train, test, "svm", SSD, epochs=2, block_size=16 * 1024
        )
        bismarck = run_in_db_system(
            "bismarck", "no_shuffle", train, test, "svm", SSD, epochs=2, block_size=16 * 1024
        )
        assert madlib.resources.compute_seconds > bismarck.resources.compute_seconds

    def test_madlib_rejects_sparse_glm(self):
        sparse = make_binary_sparse(200, 100, seed=0)
        assert not madlib_supports("lr", sparse)
        with pytest.raises(ValueError):
            run_in_db_system("madlib", "no_shuffle", sparse, None, "lr", SSD, epochs=1)

    def test_profiles_ordering(self):
        assert MADLIB_PROFILE.per_tuple_s > BISMARCK_PROFILE.per_tuple_s
        assert PYTORCH_PROFILE.per_tuple_s > MADLIB_PROFILE.per_tuple_s

    def test_compressed_table_costs_more_compute(self, problem):
        train, test = problem
        plain = run_in_db_system(
            "corgipile", "corgipile", train, test, "lr", SSD, epochs=2,
            block_size=16 * 1024, compress=False,
        )
        packed = run_in_db_system(
            "corgipile", "corgipile", train, test, "lr", SSD, epochs=2,
            block_size=16 * 1024, compress=True,
        )
        assert packed.resources.compute_seconds > plain.resources.compute_seconds


class TestFramework:
    def test_run_framework_timeline(self, problem):
        train, test = problem
        model = LogisticRegression(train.n_features)
        run = run_framework(
            train, test, model, "corgipile", SSD, epochs=3, tuples_per_block=15
        )
        assert run.per_epoch_s > 0
        assert len(run.timeline.points) == 3
        assert run.history.final.test_score > 0.6

    def test_in_memory_faster_when_io_bound(self, problem):
        # Use a near-free compute profile so I/O dominates the epoch.
        from repro.db import ComputeProfile

        light = ComputeProfile("light", per_tuple_s=1e-9, per_value_s=0.0)
        train, test = problem
        fast = run_framework(
            train, test, LogisticRegression(train.n_features), "no_shuffle", HDD,
            epochs=1, in_memory=True, compute=light,
        )
        slow = run_framework(
            train, test, LogisticRegression(train.n_features), "no_shuffle", HDD,
            epochs=1, in_memory=False, compute=light,
        )
        assert fast.per_epoch_s < slow.per_epoch_s
        assert fast.timeline.setup_s > 0  # paid the initial load

    def test_workers_divide_compute(self, problem):
        train, test = problem
        one = run_framework(
            train, test, LogisticRegression(train.n_features), "no_shuffle", SSD,
            epochs=1, in_memory=True, n_workers=1,
        )
        eight = run_framework(
            train, test, LogisticRegression(train.n_features), "no_shuffle", SSD,
            epochs=1, in_memory=True, n_workers=8,
        )
        assert eight.per_epoch_s < one.per_epoch_s


class TestResources:
    def test_corgipile_buffer_memory_accounted(self, problem):
        train, test = problem
        result = run_in_db_system(
            "corgipile", "corgipile", train, test, "lr", SSD, epochs=1,
            block_size=16 * 1024, buffer_fraction=0.1,
        )
        assert result.resources.buffer_memory_bytes > 0
        assert result.resources.cpu_utilisation > 0

    def test_no_shuffle_needs_no_buffer(self, problem):
        train, test = problem
        result = run_in_db_system(
            "corgipile", "no_shuffle", train, test, "lr", SSD, epochs=1,
            block_size=16 * 1024,
        )
        assert result.resources.buffer_memory_bytes == 0


class TestTimeline:
    def test_time_to_reach_and_speedup(self):
        a = Timeline(system="a")
        b = Timeline(system="b", setup_s=10.0)
        for e in range(3):
            a.append(1.0, e, 0.5, 0.6, 0.6 + 0.1 * e)
            b.append(1.0, e, 0.5, 0.6, 0.6 + 0.1 * e)
        assert a.time_to_reach(0.7) == pytest.approx(2.0)
        assert b.time_to_reach(0.7) == pytest.approx(12.0)
        assert a.speedup_over(b, 0.7) == pytest.approx(6.0)
        assert a.time_to_reach(0.99) is None


class TestModelTableValidation:
    def test_binary_model_on_multiclass_table_rejected(self):
        from repro.data import make_multiclass_dense
        from repro.db import EngineError

        db = MiniDB(page_bytes=1024)
        db.create_table("m", make_multiclass_dense(100, 4, 3, seed=0))
        with pytest.raises(EngineError, match="binary"):
            db.execute("SELECT * FROM m TRAIN BY svm")

    def test_softmax_on_binary_table_rejected(self):
        from repro.data import make_binary_dense
        from repro.db import EngineError

        db = MiniDB(page_bytes=1024)
        db.create_table("b", make_binary_dense(100, 4, seed=0))
        with pytest.raises(EngineError, match="multiclass"):
            db.execute("SELECT * FROM b TRAIN BY softmax")

    def test_linreg_on_binary_table_rejected(self):
        from repro.data import make_binary_dense
        from repro.db import EngineError

        db = MiniDB(page_bytes=1024)
        db.create_table("b", make_binary_dense(100, 4, seed=0))
        with pytest.raises(EngineError, match="regression"):
            db.execute("SELECT * FROM b TRAIN BY linreg")

    def test_matching_tasks_accepted(self):
        from repro.data import make_multiclass_dense

        db = MiniDB(page_bytes=1024)
        db.create_table("m", make_multiclass_dense(200, 6, 3, separation=3.0, seed=0))
        result = db.execute(
            "SELECT * FROM m TRAIN BY softmax WITH max_epoch_num = 2, block_size = 4KB"
        )
        assert result.history.epochs == 2


class TestParallelWorkers:
    """``WITH workers = PN`` routes through the multi-process engine."""

    def test_sync_parallel_train_and_predict(self, db, problem):
        train, test = problem
        result = db.execute(
            "SELECT * FROM higgs TRAIN BY lr WITH workers = 2, max_epoch_num = 2, "
            "batch_size = 32, learning_rate = 0.05, block_size = 2KB",
            test=test,
        )
        assert result.query.workers == 2
        assert result.query.extra["parallel"]["n_workers"] == 2
        assert result.query.extra["parallel"]["tuples_processed"] > 0
        assert len(result.timeline.points) == 2
        assert result.timeline.total_time_s > 0  # measured, not modeled
        assert result.resources.io_seconds == 0.0
        assert result.history.final.train_score > 0.7
        preds = db.execute(f"SELECT * FROM higgs PREDICT BY {result.model_id}")
        assert preds.shape == (train.n_tuples,)

    def test_epoch_aggregation(self, db):
        result = db.execute(
            "SELECT * FROM higgs TRAIN BY lr WITH workers = 2, "
            "aggregation = 'epoch', max_epoch_num = 2, learning_rate = 0.05, "
            "block_size = 2KB"
        )
        assert result.query.extra["parallel"]["mode"] == "epoch"
        assert result.history.final.train_score > 0.7

    def test_default_block_size_still_shards(self, db):
        # A block_size that would pack the whole table into fewer blocks than
        # there are workers must be capped, not allowed to leave a shard
        # empty (sync mode would silently train nothing).
        result = db.execute(
            "SELECT * FROM higgs TRAIN BY lr WITH workers = 2, max_epoch_num = 2, "
            "batch_size = 32, learning_rate = 0.05, block_size = 64MB"
        )
        assert result.query.extra["parallel"]["sync_steps"] > 0
        assert result.history.final.train_score > 0.7

    def test_unfillable_sync_batch_rejected(self, db):
        from repro.db import EngineError

        tiny = make_binary_dense(40, 4, separation=1.0, seed=0)
        db.create_table("tiny", tiny)
        with pytest.raises(EngineError, match="sync step"):
            db.execute(
                "SELECT * FROM tiny TRAIN BY lr WITH workers = 2, "
                "max_epoch_num = 1, batch_size = 64"
            )

    def test_bad_aggregation_rejected(self, db):
        from repro.db import EngineError

        with pytest.raises(EngineError, match="aggregation"):
            db.execute(
                "SELECT * FROM higgs TRAIN BY lr WITH workers = 2, "
                "aggregation = 'gossip'"
            )

    def test_non_corgipile_strategy_rejected(self, db):
        from repro.db import EngineError

        with pytest.raises(EngineError, match="corgipile"):
            db.execute(
                "SELECT * FROM higgs TRAIN BY lr WITH workers = 2, "
                "strategy = 'no_shuffle'"
            )
