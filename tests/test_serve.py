"""The training daemon: protocol, sessions, job queue, crash recovery.

Three layers of coverage:

* protocol units — frame round-trips, bounds, blob codec (no sockets);
* in-process integration — a real :class:`ReproServer` on an ephemeral
  port, driven by real :class:`ReproClient` connections: concurrent
  sessions with isolated catalogs, the async TRAIN lifecycle, cancel
  mid-job, admission-control rejection;
* out-of-process crash test — the daemon as a subprocess, SIGKILLed
  mid-TRAIN and restarted over the same data dir; the resumed job's model
  must be *bit-identical* to an uninterrupted run of the same statement.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.serve import (
    ConnectionClosed,
    ProtocolError,
    ReproClient,
    ReproServer,
    SaturatedError,
    ServerError,
    decode_blob,
    decode_frame,
    encode_blob,
    encode_frame,
    err,
    ok,
    recv_frame,
    send_frame,
)

REPO_ROOT = Path(__file__).resolve().parents[1]

#: One short statement used throughout; small dataset, tiny blocks.
TRAIN_SQL = (
    "SELECT * FROM susy TRAIN BY lr "
    "WITH max_epoch_num = 2, block_size = 16KB, buffer_fraction = 0.2"
)
#: A statement slow enough to still be running when we interfere with it.
SLOW_TRAIN_SQL = (
    "SELECT * FROM susy TRAIN BY lr "
    "WITH max_epoch_num = 200, block_size = 16KB, buffer_fraction = 0.2"
)


# ======================================================================
# Protocol units
# ======================================================================


class TestProtocol:
    def test_frame_round_trip(self):
        message = {"type": "sql", "sql": "SELECT 1", "nested": {"a": [1, 2.5]}}
        frame = encode_frame(message)
        assert frame[:4] == len(frame[4:]).to_bytes(4, "big")
        assert decode_frame(frame[4:]) == message

    def test_frame_serialises_numpy(self):
        frame = encode_frame({"x": np.float64(1.5), "v": np.arange(3)})
        assert decode_frame(frame[4:]) == {"x": 1.5, "v": [0, 1, 2]}

    def test_oversized_frame_rejected(self, monkeypatch):
        monkeypatch.setattr("repro.serve.protocol.MAX_FRAME_BYTES", 16)
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_frame({"pad": "x" * 64})

    def test_undecodable_payload_rejected(self):
        with pytest.raises(ProtocolError, match="undecodable"):
            decode_frame(b"\xff\xfenot json")
        with pytest.raises(ProtocolError, match="object"):
            decode_frame(b"[1, 2, 3]")

    def test_socket_round_trip_and_clean_close(self):
        a, b = socket.socketpair()
        try:
            send_frame(a, ok(session="s1"))
            send_frame(a, err("nope", "bad"))
            assert recv_frame(b) == {"ok": True, "session": "s1"}
            assert recv_frame(b) == {"ok": False, "code": "nope", "error": "bad"}
            a.close()
            with pytest.raises(ConnectionClosed):
                recv_frame(b)
        finally:
            b.close()

    def test_mid_frame_death_is_a_protocol_error(self):
        a, b = socket.socketpair()
        try:
            frame = encode_frame({"type": "hello"})
            a.sendall(frame[: len(frame) - 3])  # die 3 bytes short
            a.close()
            with pytest.raises(ProtocolError, match="short"):
                recv_frame(b)
        finally:
            b.close()

    def test_blob_codec_round_trip(self):
        blob = os.urandom(257)
        assert decode_blob(encode_blob(blob)) == blob
        with pytest.raises(ProtocolError, match="blob"):
            decode_blob("not//valid//base64!!")


# ======================================================================
# In-process integration
# ======================================================================


@pytest.fixture(autouse=True)
def fresh_obs():
    """Each test gets a clean process-wide registry.

    Session ids restart at ``s1`` for every server instance, so without a
    reset the per-session ``serve.session.s1.*`` meters would accumulate
    across tests (a pure test artifact: real daemons are one per process).
    """
    from repro import obs

    obs.reset()
    yield
    obs.reset()


@pytest.fixture()
def server(tmp_path):
    srv = ReproServer(
        tmp_path / "state",
        job_workers=1,
        max_queued=4,
        checkpoint_every_tuples=128,
    ).start()
    yield srv
    srv.stop()


def connect(server: ReproServer) -> ReproClient:
    return ReproClient(server.host, server.port)


class TestServerSessions:
    def test_train_job_lifecycle(self, server):
        with connect(server) as client:
            client.load("susy")
            job_id = client.submit(TRAIN_SQL)
            final = client.wait(job_id, timeout=120)
            assert final["state"] == "done"
            assert final["result"]["epochs"] == 2
            assert final["result"]["tuples_seen"] > 0
            # The finished model is addressable from the owning session...
            pred = client.sql(f"SELECT * FROM susy PREDICT BY {job_id}")
            assert pred["n_predictions"] > 0
            # ...and downloadable as a real model object.
            model = client.fetch_model(job_id)
            assert model.w.shape[0] > 0

    def test_select_runs_inline(self, server):
        with connect(server) as client:
            client.load("susy")
            result = client.sql("SELECT * FROM susy LIMIT 5")["result"]
            assert len(result["rows"]) == 5
            assert result["n_tuples"] > 5

    def test_four_concurrent_sessions_with_isolated_catalogs(self, server):
        """Four clients share one daemon but see only their own tables."""
        datasets = ["susy", "higgs", "criteo", "susy"]
        results: dict[int, dict] = {}
        errors: list[Exception] = []

        def run(i: int) -> None:
            try:
                with connect(server) as client:
                    # Everyone names their table "t"; contents must not leak.
                    info = client.load(datasets[i], table="t", seed=i)
                    seen = client.sql("SELECT * FROM t")["result"]
                    results[i] = {
                        "loaded": info["n_tuples"],
                        "seen": seen["n_tuples"],
                        "features": seen["n_features"],
                    }
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=run, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        assert len(results) == 4
        for i, seen in results.items():
            assert seen["seen"] == seen["loaded"]
        # susy and higgs genuinely differ, so a leak would be visible.
        assert results[0]["features"] != results[1]["features"]

    def test_models_do_not_leak_between_sessions(self, server):
        with connect(server) as owner, connect(server) as other:
            owner.load("susy")
            other.load("susy")
            job_id = owner.submit(TRAIN_SQL)
            assert owner.wait(job_id, timeout=120)["state"] == "done"
            assert owner.sql(f"SELECT * FROM susy PREDICT BY {job_id}")
            with pytest.raises(ServerError):
                other.sql(f"SELECT * FROM susy PREDICT BY {job_id}")
            # The job *listing* is scoped too unless asked for all.
            assert other.jobs() == []
            assert [j["job_id"] for j in other.jobs(all_sessions=True)] == [job_id]

    def test_unknown_table_and_parse_errors_are_typed(self, server):
        with connect(server) as client:
            with pytest.raises(ServerError) as excinfo:
                client.sql("SELECT * FROM nowhere")
            assert excinfo.value.code in ("engine_error", "not_found")
            with pytest.raises(ServerError) as excinfo:
                client.sql("FROBNICATE THE DATABASE")
            assert excinfo.value.code == "parse_error"

    def test_cancel_mid_train(self, server):
        with connect(server) as client:
            client.load("susy")
            job_id = client.submit(SLOW_TRAIN_SQL)
            deadline = time.monotonic() + 60
            while client.status(job_id)["state"] == "queued":
                assert time.monotonic() < deadline, "job never started"
                time.sleep(0.02)
            client.cancel(job_id)
            final = client.wait(job_id, timeout=60)
            assert final["state"] == "cancelled"
            with pytest.raises(ServerError):
                client.fetch_model(job_id)

    def test_stats_surface(self, server):
        with connect(server) as client:
            client.load("susy")
            job_id = client.submit(TRAIN_SQL)
            client.wait(job_id, timeout=120)
            stats = client.stats()
            assert stats["server"]["sessions_open"] == 1
            assert stats["queue"]["capacity"] == 4
            assert stats["jobs"]["done"] >= 1
            assert stats["jobs"]["queue_wait_s"]["count"] >= 1
            sid = client.session_id
            assert stats["sessions"][sid]["jobs_submitted"] == 1


class TestAdmissionControl:
    def test_saturated_queue_rejects_with_retry_after(self, tmp_path):
        server = ReproServer(
            tmp_path / "state", job_workers=1, max_queued=1
        ).start()
        try:
            with connect(server) as client:
                client.load("susy")
                # Occupy the single worker, then fill the single queue slot.
                running = client.submit(SLOW_TRAIN_SQL)
                deadline = time.monotonic() + 60
                while client.status(running)["state"] == "queued":
                    assert time.monotonic() < deadline
                    time.sleep(0.02)
                queued = client.submit(SLOW_TRAIN_SQL)
                with pytest.raises(SaturatedError) as excinfo:
                    client.submit(SLOW_TRAIN_SQL)
                assert excinfo.value.retry_after_s > 0
                assert excinfo.value.code == "saturated"
                # The daemon stays responsive while saturated (no hang).
                assert client.stats()["queue"]["depth"] == 1
                client.cancel(queued)
                client.cancel(running)
        finally:
            server.stop()


# ======================================================================
# Crash recovery — the daemon as a subprocess, SIGKILLed mid-TRAIN
# ======================================================================

RESUME_SQL = (
    "SELECT * FROM susy TRAIN BY lr "
    "WITH max_epoch_num = 40, block_size = 16KB, buffer_fraction = 0.2, seed = 3"
)


def spawn_daemon(data_dir: Path) -> subprocess.Popen:
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--data-dir", str(data_dir),
            "--job-workers", "1",
            "--checkpoint-every", "64",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + 30
    server_file = data_dir / "server.json"
    while time.monotonic() < deadline:
        if server_file.exists() and proc.poll() is None:
            return proc
        if proc.poll() is not None:
            raise RuntimeError("daemon died during startup")
        time.sleep(0.05)
    proc.kill()
    raise RuntimeError("daemon never advertised its port")


def connect_to_dir(data_dir: Path, timeout: float = 30.0) -> ReproClient:
    deadline = time.monotonic() + timeout
    while True:
        try:
            return ReproClient.from_server_file(data_dir)
        except (OSError, ConnectionError):
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.05)


class TestCrashRecovery:
    def test_sigkill_mid_train_then_restart_resumes_bit_exact(self, tmp_path):
        # --- Reference: the same statement, uninterrupted. ---------------
        ref_dir = tmp_path / "reference"
        proc = spawn_daemon(ref_dir)
        try:
            with connect_to_dir(ref_dir) as client:
                client.load("susy")
                job_id = client.submit(RESUME_SQL)
                assert client.wait(job_id, timeout=300)["state"] == "done"
                reference = client.fetch_model(job_id)
                client.shutdown()
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

        # --- Victim: SIGKILL once a mid-epoch checkpoint exists. ---------
        crash_dir = tmp_path / "crash"
        proc = spawn_daemon(crash_dir)
        try:
            with connect_to_dir(crash_dir) as client:
                client.load("susy")
                job_id = client.submit(RESUME_SQL)
            ckpt = crash_dir / "jobs" / f"{job_id}.ckpt.npz"
            deadline = time.monotonic() + 120
            while not ckpt.exists():
                assert time.monotonic() < deadline, "no checkpoint before kill"
                assert proc.poll() is None
                time.sleep(0.01)
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)

            spec = json.loads((crash_dir / "jobs" / f"{job_id}.json").read_text())
            assert spec["state"] in ("queued", "running")

            # --- Restart over the same directory; the journal resumes. ---
            proc = spawn_daemon(crash_dir)
            with connect_to_dir(crash_dir) as client:
                final = client.wait(job_id, timeout=300)
                assert final["state"] == "done"
                resumed = client.fetch_model(job_id)
                client.shutdown()
            proc.wait(timeout=30)

            spec = json.loads((crash_dir / "jobs" / f"{job_id}.json").read_text())
            assert spec.get("recovered") is True
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

        # Bit-exact: the kill+resume run converged to the identical model.
        np.testing.assert_array_equal(resumed.w, reference.w)
        assert resumed.b == reference.b


# ======================================================================
# Durable job journal details
# ======================================================================


class TestJobJournal:
    def test_specs_survive_and_terminal_jobs_are_not_reenqueued(self, tmp_path):
        state = tmp_path / "state"
        server = ReproServer(state, job_workers=1).start()
        with connect(server) as client:
            client.load("susy")
            job_id = client.submit(TRAIN_SQL)
            assert client.wait(job_id, timeout=120)["state"] == "done"
        server.stop()

        spec = json.loads((state / "jobs" / f"{job_id}.json").read_text())
        assert spec["state"] == "done"
        assert (state / "jobs" / f"{job_id}.model.npz").exists()
        assert not (state / "jobs" / f"{job_id}.ckpt.npz").exists()

        # A second daemon over the same dir sees the job but re-runs nothing.
        server = ReproServer(state, job_workers=1).start()
        try:
            with connect(server) as client:
                jobs = client.jobs(all_sessions=True)
                assert [j["job_id"] for j in jobs] == [job_id]
                assert jobs[0]["state"] == "done"
                # Job ids keep counting upward across incarnations.
                client.load("susy")
                next_id = client.submit(TRAIN_SQL)
                assert next_id != job_id
                assert client.wait(next_id, timeout=120)["state"] == "done"
        finally:
            server.stop()

    def test_stop_requeues_running_jobs_for_next_boot(self, tmp_path):
        state = tmp_path / "state"
        server = ReproServer(state, job_workers=1).start()
        with connect(server) as client:
            client.load("susy")
            job_id = client.submit(SLOW_TRAIN_SQL)
            deadline = time.monotonic() + 60
            while client.status(job_id)["state"] == "queued":
                assert time.monotonic() < deadline
                time.sleep(0.02)
        server.stop()  # graceful: interrupts the job at a batch boundary

        spec = json.loads((state / "jobs" / f"{job_id}.json").read_text())
        assert spec["state"] == "queued"
        assert spec.get("interrupted") is True


class TestAdvisorOverTheWire:
    """``strategy = auto`` jobs journal the advisor's full decision and
    serve it back through the status protocol, round-trippable into an
    :class:`~repro.db.advisor.AdvisorDecision`."""

    AUTO_SQL = (
        "SELECT * FROM susy TRAIN BY lr WITH strategy = auto, "
        "max_epoch_num = 2, block_size = 16KB, buffer_fraction = 0.2"
    )

    def test_auto_job_journals_and_serves_decision(self, tmp_path):
        from repro.db.advisor import AdvisorDecision

        state = tmp_path / "state"
        server = ReproServer(state, job_workers=1, device="hdd").start()
        try:
            with connect(server) as client:
                client.load("susy", order="clustered")
                job_id = client.submit(self.AUTO_SQL)
                final = client.wait(job_id, timeout=120)
        finally:
            server.stop()
        assert final["state"] == "done"
        # The journalled strategy is the advisor's concrete resolution.
        assert final["strategy"] in (
            "no_shuffle", "block_reversal", "block_reshuffle",
            "corgipile", "corgi2", "shuffle_once", "random_access",
        )
        decision = AdvisorDecision.from_doc(final["advisor"])
        assert decision.strategy == final["strategy"]
        assert decision.device == "hdd"
        assert decision.hd.hd >= 1.0
        assert "Advisor (device=hdd" in decision.render()
        # And the on-disk journal carries the same doc verbatim.
        spec = json.loads((state / "jobs" / f"{job_id}.json").read_text())
        assert spec["advisor"] == final["advisor"]

    def test_fixed_strategy_jobs_skip_the_advisor(self, server):
        with connect(server) as client:
            client.load("susy")
            job_id = client.submit(TRAIN_SQL)
            final = client.wait(job_id, timeout=120)
        assert final["state"] == "done"
        assert final["strategy"] == "corgipile"
        assert "advisor" not in final


# ======================================================================
# Protocol v2 negotiation
# ======================================================================


class TestProtocolNegotiation:
    def _raw_hello(self, server, version):
        with socket.create_connection((server.host, server.port), timeout=10) as sock:
            send_frame(sock, {"type": "hello", "version": version})
            reply = recv_frame(sock)
            if reply.get("ok"):
                send_frame(sock, {"type": "bye"})
                recv_frame(sock)
            return reply

    def test_v2_hello_negotiates_v2(self, server):
        reply = self._raw_hello(server, 2)
        assert reply["ok"] and reply["version"] == 2

    def test_v1_client_still_connects(self, server):
        """Old clients keep working: the reply echoes their version and the
        v2-only payload fields are extras they never read."""
        reply = self._raw_hello(server, 1)
        assert reply["ok"] and reply["version"] == 1

    def test_future_version_rejected_with_range(self, server):
        reply = self._raw_hello(server, 99)
        assert not reply["ok"]
        assert reply["code"] == "version_mismatch"
        assert reply["server_version"] == 2
        assert reply["min_version"] == 1

    def test_non_integer_version_rejected(self, server):
        reply = self._raw_hello(server, "two")
        assert not reply["ok"] and reply["code"] == "version_mismatch"


# ======================================================================
# Grid TRAIN jobs over the wire
# ======================================================================

GRID_TRAIN_SQL = (
    "SELECT * FROM susy TRAIN BY lr "
    "WITH max_epoch_num = 2, block_size = 16KB, buffer_fraction = 0.2, seed = 3, "
    "grid = (learning_rate = 0.1 | 0.01, l2 = 0 | 0.0001)"
)


class TestGridJobs:
    def test_grid_job_round_trip(self, server):
        with connect(server) as client:
            client.load("susy")
            job_id = client.submit(GRID_TRAIN_SQL)
            final = client.wait(job_id, timeout=300)
            assert final["state"] == "done", final.get("error")

            # The canonical TrainSpec document travels with the status.
            assert final["spec"]["grid"]["n_configs"] == 4
            assert final["grid"]["n_configs"] == 4

            result = final["result"]
            leaderboard = result["grid"]["leaderboard"]
            assert len(leaderboard) == 4
            assert [row["rank"] for row in leaderboard] == [0, 1, 2, 3]
            losses = [row["final_train_loss"] for row in leaderboard]
            assert losses == sorted(losses)
            assert result["grid"]["best"]["config"] == leaderboard[0]["config"]
            assert result["schedule"]["n_models"] == 4

            # Slot progress was journalled along the way.
            progress = final["grid_progress"]
            assert progress["slots_done"] == progress["total_slots"]
            assert progress["epochs_completed"] == [2, 2, 2, 2]

            # The winner is addressable like any finished job's model.
            pred = client.sql(f"SELECT * FROM susy PREDICT BY {job_id}")
            assert pred["n_predictions"] > 0
            model = client.fetch_model(job_id)
            assert model.w.size > 0

    def test_grid_sigkill_restart_resumes_bit_exact(self, tmp_path):
        grid_resume_sql = GRID_TRAIN_SQL.replace(
            "max_epoch_num = 2", "max_epoch_num = 6"
        )
        # --- Reference: the same grid, uninterrupted. --------------------
        ref_dir = tmp_path / "reference"
        proc = spawn_daemon(ref_dir)
        try:
            with connect_to_dir(ref_dir) as client:
                client.load("susy")
                job_id = client.submit(grid_resume_sql)
                ref_final = client.wait(job_id, timeout=600)
                assert ref_final["state"] == "done"
                reference = client.fetch_model(job_id)
                client.shutdown()
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

        # --- Victim: SIGKILL once the slot checkpoint exists. ------------
        crash_dir = tmp_path / "crash"
        proc = spawn_daemon(crash_dir)
        try:
            with connect_to_dir(crash_dir) as client:
                client.load("susy")
                job_id = client.submit(grid_resume_sql)
            ckpt = crash_dir / "jobs" / f"{job_id}.ckpt.npz"
            deadline = time.monotonic() + 120
            while not ckpt.exists():
                assert time.monotonic() < deadline, "no checkpoint before kill"
                assert proc.poll() is None
                time.sleep(0.01)
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)

            proc = spawn_daemon(crash_dir)
            with connect_to_dir(crash_dir) as client:
                final = client.wait(job_id, timeout=600)
                assert final["state"] == "done"
                resumed = client.fetch_model(job_id)
                client.shutdown()
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

        # Bit-exact winner, identical leaderboard.
        np.testing.assert_array_equal(resumed.w, reference.w)
        assert resumed.b == reference.b
        ref_rows = ref_final["result"]["grid"]["leaderboard"]
        res_rows = final["result"]["grid"]["leaderboard"]
        assert [r["config"] for r in res_rows] == [r["config"] for r in ref_rows]
        assert [r["final_train_loss"] for r in res_rows] == [
            r["final_train_loss"] for r in ref_rows
        ]

    def test_grid_where_combination_rejected(self, server):
        with connect(server) as client:
            client.load("susy")
            with pytest.raises(ServerError, match="grid"):
                client.submit(
                    "SELECT * FROM susy WHERE f0 >= 0 TRAIN BY lr "
                    "WITH max_epoch_num = 1, block_size = 16KB, "
                    "grid = (lr = 0.1 | 0.01)"
                )
