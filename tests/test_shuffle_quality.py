"""Statistical shuffle-quality suite.

Seeded goodness-of-fit tests over the shuffle strategies' *visit orders*
(no training required for most): chi-square and KS uniformity of per-tuple
visit positions, mean-displacement mixing against the full-shuffle
reference, block-locality contrasts that separate in-block schemes from
buffered ones — plus an end-to-end convergence-ordering check on clustered
data (Corgi² ≥ CorgiPile ≥ No-Shuffle in final quality).

All statistics run at fixed seeds against α = 0.01 critical values from
:mod:`repro.theory.randomness` (numpy-only — tier-1 CI has no scipy).  The
CI ``advisor-smoke`` job re-runs the whole file under several seeds via the
``SHUFFLE_QUALITY_SEED`` env var; every test must hold for any seed in that
matrix, so thresholds are set with real margin, not at the knife's edge.
"""

import os

import numpy as np
import pytest

from repro.core.corgipile import CorgiPileShuffle
from repro.data import BlockLayout, clustered_by_label, make_binary_dense
from repro.ml import ExponentialDecay, LogisticRegression, Trainer
from repro.shuffle import (
    BlockReshuffle,
    BlockReversal,
    Corgi2Shuffle,
    EpochShuffle,
    NoShuffle,
    make_strategy,
)
from repro.theory.randomness import (
    chi_square_critical,
    chi_square_statistic,
    expected_mean_displacement,
    ks_critical,
    ks_statistic_uniform,
    mean_displacement,
    visit_position_matrix,
)

SEED = int(os.environ.get("SHUFFLE_QUALITY_SEED", "0"))

N_TUPLES = 512
TUPLES_PER_BLOCK = 32
LAYOUT = BlockLayout(N_TUPLES, TUPLES_PER_BLOCK)
EPOCHS = 200


def _positions(strategy, epochs=EPOCHS) -> np.ndarray:
    """(epochs, n) matrix of visit positions, scaled to [0, 1)."""
    return visit_position_matrix(strategy, epochs) / N_TUPLES


class TestVisitPositionUniformity:
    """Tuple-level mixing: where in the epoch does each tuple get visited?

    For a well-mixing strategy the visit position of any fixed tuple,
    sampled across epochs, is ~uniform over the epoch; for No-Shuffle it
    is a single atom.  KS and chi-square agree on which side each
    strategy falls.
    """

    @pytest.mark.parametrize(
        "name",
        ["epoch_shuffle", "corgipile", "corgi2", "block_reshuffle"],
    )
    def test_mixing_strategies_pass_ks(self, name):
        strategy = make_strategy(name, LAYOUT, buffer_fraction=0.25, seed=SEED)
        pos = _positions(strategy)
        crit = ks_critical(EPOCHS, alpha=0.01)
        # Spot-check a spread of tuples; a Bonferroni-ish allowance (a few
        # marginal failures out of 16 at alpha=0.01 would still be
        # consistent with uniformity, but none should blow past 2x).
        tuples = np.linspace(0, N_TUPLES - 1, 16).astype(int)
        stats = [ks_statistic_uniform(pos[:, t]) for t in tuples]
        assert sum(s > crit for s in stats) <= 2, (name, stats, crit)
        assert max(stats) < 2.0 * crit, (name, max(stats), crit)

    def test_no_shuffle_fails_ks_catastrophically(self):
        strategy = NoShuffle(N_TUPLES, seed=SEED)
        pos = _positions(strategy, epochs=50)
        crit = ks_critical(50, alpha=0.01)
        # Every visit lands at the same position: D = max(q, 1-q), which
        # is ≈ 0.99 for tuples near either end of the table and exactly
        # 0.5 even at the midpoint — all far above the α = 0.01 critical.
        stats = [
            ks_statistic_uniform(pos[:, t])
            for t in (5, N_TUPLES // 2, N_TUPLES - 6)
        ]
        assert min(stats) > 2.0 * crit
        assert max(stats) > 4.0 * crit

    @pytest.mark.parametrize("name", ["corgipile", "corgi2"])
    def test_chi_square_per_tuple_uniform(self, name):
        strategy = make_strategy(name, LAYOUT, buffer_fraction=0.25, seed=SEED)
        pos = _positions(strategy)
        bins = 8
        crit = chi_square_critical(bins - 1, alpha=0.01)
        flagged = 0
        tuples = np.linspace(0, N_TUPLES - 1, 12).astype(int)
        for t in tuples:
            counts = np.histogram(pos[:, t], bins=bins, range=(0.0, 1.0))[0]
            stat, dof = chi_square_statistic(counts)
            assert dof == bins - 1
            flagged += stat > crit
        assert flagged <= 2, (name, flagged)

    def test_chi_square_flags_no_shuffle(self):
        strategy = NoShuffle(N_TUPLES, seed=SEED)
        pos = _positions(strategy, epochs=50)
        counts = np.histogram(pos[:, 7], bins=8, range=(0.0, 1.0))[0]
        stat, dof = chi_square_statistic(counts)
        assert stat > 10.0 * chi_square_critical(dof, alpha=0.01)


class TestMeanDisplacement:
    """How far does a tuple travel from its stored position, per epoch?"""

    def test_full_shuffle_reference(self):
        strategy = EpochShuffle(N_TUPLES, seed=SEED)
        expected = expected_mean_displacement(N_TUPLES)
        moved = np.mean(
            [mean_displacement(strategy.epoch_indices(e)) for e in range(20)]
        )
        assert abs(moved - expected) / expected < 0.10

    def test_corgipile_approaches_full_shuffle(self):
        # Block positions are uniform and the buffer shuffles tuples, so
        # CorgiPile's displacement lands near the full-shuffle n/3 even at
        # a 25% buffer.
        strategy = CorgiPileShuffle.from_buffer_fraction(LAYOUT, 0.25, seed=SEED)
        expected = expected_mean_displacement(N_TUPLES)
        moved = np.mean(
            [mean_displacement(strategy.epoch_indices(e)) for e in range(20)]
        )
        assert moved > 0.75 * expected

    def test_ordering_no_shuffle_to_full(self):
        expected = expected_mean_displacement(N_TUPLES)
        no_shuffle = mean_displacement(NoShuffle(N_TUPLES, seed=SEED).epoch_indices(0))
        reshuffle = np.mean(
            [
                mean_displacement(BlockReshuffle(LAYOUT, seed=SEED).epoch_indices(e))
                for e in range(20)
            ]
        )
        full = np.mean(
            [
                mean_displacement(EpochShuffle(N_TUPLES, seed=SEED).epoch_indices(e))
                for e in range(20)
            ]
        )
        assert no_shuffle == 0.0
        assert 0.0 < reshuffle
        # Block schemes move tuples via block placement — same order of
        # magnitude as full shuffle, but never meaningfully beyond it.
        assert reshuffle < 1.1 * expected
        assert abs(full - expected) / expected < 0.10

    def test_corgi2_offline_order_mixes(self):
        strategy = Corgi2Shuffle.from_buffer_fraction(LAYOUT, 0.25, seed=SEED)
        offline = mean_displacement(strategy.offline_order)
        # The offline pass alone (before any online epoch) already moves
        # tuples a macroscopic fraction of the table.
        assert offline > 0.3 * expected_mean_displacement(N_TUPLES)


class TestBlockLocality:
    """The statistic that *separates* in-block schemes from buffered ones:
    do same-block neighbours stay adjacent in the visit order?"""

    @staticmethod
    def _same_block_gap(strategy, epoch: int) -> float:
        order = np.asarray(strategy.epoch_indices(epoch))
        inverse = np.empty(order.size, dtype=np.int64)
        inverse[order] = np.arange(order.size)
        # Mean visit-distance between the two halves of each block.
        a = inverse[np.arange(0, N_TUPLES, TUPLES_PER_BLOCK)]
        b = inverse[np.arange(TUPLES_PER_BLOCK - 1, N_TUPLES, TUPLES_PER_BLOCK)]
        return float(np.mean(np.abs(a - b)))

    def test_in_block_schemes_keep_neighbours_close(self):
        for cls in (BlockReshuffle, BlockReversal):
            strategy = cls(LAYOUT, seed=SEED)
            for epoch in (0, 1, 3):
                gap = self._same_block_gap(strategy, epoch)
                assert gap < TUPLES_PER_BLOCK, (cls.__name__, epoch, gap)

    def test_buffered_schemes_scatter_neighbours(self):
        corgi = CorgiPileShuffle.from_buffer_fraction(LAYOUT, 0.25, seed=SEED)
        gap = np.mean([self._same_block_gap(corgi, e) for e in range(10)])
        # The buffer holds 4 blocks: neighbours scatter across the fill.
        assert gap > TUPLES_PER_BLOCK

    def test_corgi2_scatters_beyond_corgipile(self):
        corgi = CorgiPileShuffle.from_buffer_fraction(LAYOUT, 0.25, seed=SEED)
        corgi2 = Corgi2Shuffle.from_buffer_fraction(LAYOUT, 0.25, seed=SEED)
        gap1 = np.mean([self._same_block_gap(corgi, e) for e in range(10)])
        gap2 = np.mean([self._same_block_gap(corgi2, e) for e in range(10)])
        # The offline re-group split the original blocks before the online
        # buffer ever saw them, so original neighbours scatter further.
        assert gap2 > gap1


class TestDeterminismAndValidity:
    """Every strategy must produce valid permutations, replayable by seed."""

    NAMES = (
        "no_shuffle",
        "shuffle_once",
        "epoch_shuffle",
        "block_only",
        "block_reshuffle",
        "block_reversal",
        "corgipile",
        "corgi2",
    )

    @pytest.mark.parametrize("name", NAMES)
    def test_valid_permutation_and_replay(self, name):
        base = np.arange(N_TUPLES)
        s1 = make_strategy(name, LAYOUT, buffer_fraction=0.25, seed=SEED)
        s2 = make_strategy(name, LAYOUT, buffer_fraction=0.25, seed=SEED)
        for epoch in (0, 1):
            order = np.asarray(s1.epoch_indices(epoch))
            assert np.array_equal(np.sort(order), base), name
            assert np.array_equal(order, s2.epoch_indices(epoch)), name

    @pytest.mark.parametrize("name", ["block_reshuffle", "block_reversal", "corgi2"])
    def test_epochs_differ_and_seeds_differ(self, name):
        strategy = make_strategy(name, LAYOUT, buffer_fraction=0.25, seed=SEED)
        other = make_strategy(name, LAYOUT, buffer_fraction=0.25, seed=SEED + 1)
        assert not np.array_equal(strategy.epoch_indices(0), strategy.epoch_indices(1))
        assert not np.array_equal(strategy.epoch_indices(0), other.epoch_indices(0))

    def test_block_reversal_flips_within_block_order(self):
        strategy = BlockReversal(LAYOUT, seed=SEED)
        order = np.asarray(strategy.epoch_indices(1))
        # Find block 0's tuples in the epoch-1 order: contiguous and reversed.
        where = np.where(order < TUPLES_PER_BLOCK)[0]
        assert np.array_equal(order[where], np.arange(TUPLES_PER_BLOCK)[::-1])


class TestConvergenceOrdering:
    """On clustered data, final loss orders Corgi² ≤ CorgiPile ≤ No-Shuffle."""

    @pytest.fixture(scope="class")
    def losses(self):
        dataset = clustered_by_label(
            make_binary_dense(1536, 8, separation=1.2, seed=SEED), seed=SEED
        )
        layout = dataset.layout(64)
        out = {}
        for name in ("no_shuffle", "corgipile", "corgi2", "epoch_shuffle"):
            strategy = make_strategy(name, layout, buffer_fraction=0.1, seed=SEED)
            model = LogisticRegression(dataset.n_features)
            history = Trainer(
                model,
                dataset,
                strategy,
                epochs=6,
                schedule=ExponentialDecay(0.1, 0.95),
            ).run()
            out[name] = history.final.train_loss
        return out

    def test_corgipile_beats_no_shuffle(self, losses):
        assert losses["corgipile"] < 0.9 * losses["no_shuffle"]

    def test_corgi2_at_least_matches_corgipile(self, losses):
        assert losses["corgi2"] <= 1.05 * losses["corgipile"]

    def test_corgi2_close_to_full_shuffle(self, losses):
        assert losses["corgi2"] <= 1.10 * losses["epoch_shuffle"]
