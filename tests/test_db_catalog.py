"""Tests for the catalog and table statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.db import Catalog, UnknownTableError


class TestCatalog:
    def test_create_and_get(self, dense_binary):
        catalog = Catalog(page_bytes=1024)
        info = catalog.create_table("t", dense_binary)
        assert catalog.get("t") is info
        assert "t" in catalog
        assert catalog.names() == ["t"]

    def test_duplicate_rejected(self, dense_binary):
        catalog = Catalog(page_bytes=1024)
        catalog.create_table("t", dense_binary)
        with pytest.raises(ValueError):
            catalog.create_table("t", dense_binary)

    def test_drop(self, dense_binary):
        catalog = Catalog(page_bytes=1024)
        catalog.create_table("t", dense_binary)
        catalog.drop_table("t")
        assert "t" not in catalog
        with pytest.raises(UnknownTableError):
            catalog.drop_table("t")

    def test_unknown_get(self):
        with pytest.raises(UnknownTableError):
            Catalog().get("ghost")

    def test_labels(self, dense_binary):
        catalog = Catalog(page_bytes=1024)
        catalog.create_table("t", dense_binary)
        np.testing.assert_array_equal(catalog.labels("t"), dense_binary.y)


class TestTableStatistics:
    def test_dense_values_per_tuple(self, dense_binary):
        info = Catalog(page_bytes=1024).create_table("t", dense_binary)
        assert info.values_per_tuple == dense_binary.n_features

    def test_sparse_values_per_tuple(self, sparse_binary):
        info = Catalog(page_bytes=1024).create_table("t", sparse_binary)
        expected = sparse_binary.X.nnz / sparse_binary.n_tuples
        assert info.values_per_tuple == pytest.approx(expected)

    def test_tuple_bytes_dense(self, dense_binary):
        info = Catalog(page_bytes=1024).create_table("t", dense_binary)
        # header(20) + 8 * n_features
        assert info.tuple_bytes == pytest.approx(20 + 8 * dense_binary.n_features)

    def test_table_bytes_covers_pages(self, dense_binary):
        info = Catalog(page_bytes=1024).create_table("t", dense_binary)
        assert info.table_bytes == info.heap.n_pages * 1024
        assert info.table_bytes >= info.heap.payload_bytes

    def test_n_tuples(self, dense_binary):
        info = Catalog(page_bytes=1024).create_table("t", dense_binary)
        assert info.n_tuples == dense_binary.n_tuples
