"""Tests for LIBSVM and CSV dataset I/O."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    make_multiclass_sparse,
    make_regression,
    read_csv,
    read_libsvm,
    write_csv,
    write_libsvm,
)


class TestLibsvmRoundtrip:
    def test_dense_roundtrip(self, dense_binary, tmp_path):
        path = tmp_path / "d.libsvm"
        write_libsvm(dense_binary, path)
        back = read_libsvm(path, n_features=dense_binary.n_features, dense=True)
        np.testing.assert_allclose(back.X, dense_binary.X, atol=1e-12)
        np.testing.assert_allclose(back.y, dense_binary.y)

    def test_sparse_roundtrip(self, sparse_binary, tmp_path):
        path = tmp_path / "s.libsvm"
        write_libsvm(sparse_binary, path)
        back = read_libsvm(path, n_features=sparse_binary.n_features)
        assert back.is_sparse
        np.testing.assert_allclose(back.X.to_dense(), sparse_binary.X.to_dense(), atol=1e-12)

    def test_multiclass_labels_are_ints(self, tmp_path):
        ds = make_multiclass_sparse(20, 50, 3, seed=0)
        path = tmp_path / "m.libsvm"
        write_libsvm(ds, path)
        back = read_libsvm(path, n_features=50, task="multiclass")
        assert back.y.dtype == np.int64
        np.testing.assert_array_equal(back.y, ds.y)

    def test_infers_feature_count(self, sparse_binary, tmp_path):
        path = tmp_path / "s.libsvm"
        write_libsvm(sparse_binary, path)
        back = read_libsvm(path)
        # Inferred dimensionality = highest index present (may be below the
        # declared schema when trailing features are never active).
        assert back.n_features <= sparse_binary.n_features
        assert back.n_tuples == sparse_binary.n_tuples

    def test_one_based_indices_on_disk(self, sparse_binary, tmp_path):
        path = tmp_path / "s.libsvm"
        write_libsvm(sparse_binary, path)
        first = path.read_text().splitlines()[0]
        indices = [int(tok.split(":")[0]) for tok in first.split()[1:]]
        assert min(indices) >= 1


class TestLibsvmErrors:
    def test_bad_label(self, tmp_path):
        path = tmp_path / "bad.libsvm"
        path.write_text("not-a-number 1:2.0\n")
        with pytest.raises(ValueError, match="bad label"):
            read_libsvm(path)

    def test_bad_token(self, tmp_path):
        path = tmp_path / "bad.libsvm"
        path.write_text("1 nonsense\n")
        with pytest.raises(ValueError, match="bad feature token"):
            read_libsvm(path)

    def test_zero_based_index_rejected(self, tmp_path):
        path = tmp_path / "bad.libsvm"
        path.write_text("1 0:2.0\n")
        with pytest.raises(ValueError, match="1-based"):
            read_libsvm(path)

    def test_too_small_n_features(self, tmp_path):
        path = tmp_path / "x.libsvm"
        path.write_text("1 5:1.0\n")
        with pytest.raises(ValueError, match="n_features"):
            read_libsvm(path, n_features=3)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.libsvm"
        path.write_text("# only a comment\n")
        with pytest.raises(ValueError, match="no examples"):
            read_libsvm(path)

    def test_unsorted_indices_accepted(self, tmp_path):
        path = tmp_path / "u.libsvm"
        path.write_text("1 3:3.0 1:1.0\n")
        ds = read_libsvm(path, dense=True)
        np.testing.assert_allclose(ds.X[0], [1.0, 0.0, 3.0])

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "c.libsvm"
        path.write_text("# header\n\n1 1:1.0\n-1 2:2.0\n")
        assert read_libsvm(path).n_tuples == 2


class TestCsv:
    def test_roundtrip(self, dense_binary, tmp_path):
        path = tmp_path / "d.csv"
        write_csv(dense_binary, path)
        back = read_csv(path)
        np.testing.assert_allclose(back.X, dense_binary.X, atol=1e-12)
        np.testing.assert_allclose(back.y, dense_binary.y)

    def test_regression_roundtrip(self, tmp_path):
        ds = make_regression(30, 4, seed=0)
        path = tmp_path / "r.csv"
        write_csv(ds, path)
        back = read_csv(path, task="regression")
        np.testing.assert_allclose(back.y, ds.y, atol=1e-12)
        assert back.task == "regression"

    def test_sparse_export_rejected(self, sparse_binary, tmp_path):
        with pytest.raises(ValueError, match="dense"):
            write_csv(sparse_binary, tmp_path / "x.csv")

    def test_header_present(self, dense_binary, tmp_path):
        path = tmp_path / "d.csv"
        write_csv(dense_binary, path)
        header = path.read_text().splitlines()[0]
        assert header.startswith("f0,") and header.endswith(",label")

    def test_too_few_columns(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("label\n1.0\n")
        with pytest.raises(ValueError):
            read_csv(path)
