"""Tests for the Trainer and ConvergenceHistory."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CorgiPileShuffle
from repro.data import clustered_by_label, make_binary_dense
from repro.ml import (
    Adam,
    ConstantLR,
    ExponentialDecay,
    LogisticRegression,
    Trainer,
    fixed_order_source,
)
from repro.ml.trainer import ConvergenceHistory, EpochRecord
from repro.shuffle import NoShuffle, ShuffleOnce


@pytest.fixture()
def problem():
    ds = make_binary_dense(400, 8, separation=1.5, seed=0)
    train, test = ds.split(0.8, seed=1)
    return train, test


class TestTrainerModes:
    def test_per_tuple_history(self, problem):
        train, test = problem
        trainer = Trainer(
            LogisticRegression(8),
            train,
            ShuffleOnce(train.n_tuples, seed=0),
            epochs=4,
            schedule=ExponentialDecay(0.1),
            test=test,
        )
        history = trainer.run()
        assert history.epochs == 4
        assert history.final.tuples_seen == 4 * train.n_tuples
        assert history.final.test_score > 0.8

    def test_minibatch_mode(self, problem):
        train, test = problem
        trainer = Trainer(
            LogisticRegression(8),
            train,
            ShuffleOnce(train.n_tuples, seed=0),
            epochs=6,
            schedule=ConstantLR(0.5),
            batch_size=32,
            test=test,
        )
        assert trainer.run().final.test_score > 0.8

    def test_adam_optimizer(self, problem):
        train, test = problem
        model = LogisticRegression(8)
        trainer = Trainer(
            model,
            train,
            ShuffleOnce(train.n_tuples, seed=0),
            epochs=6,
            schedule=ConstantLR(0.05),
            batch_size=32,
            optimizer=Adam(model),
            test=test,
        )
        assert trainer.run().final.test_score > 0.8

    def test_training_loss_decreases(self, problem):
        train, _ = problem
        trainer = Trainer(
            LogisticRegression(8),
            train,
            ShuffleOnce(train.n_tuples, seed=0),
            epochs=5,
            schedule=ExponentialDecay(0.1),
        )
        losses = trainer.run().train_losses
        assert losses[-1] < losses[0]

    def test_clustered_no_shuffle_hurts(self, problem):
        train, test = problem
        clustered = clustered_by_label(train)
        run = lambda strategy: Trainer(
            LogisticRegression(8),
            clustered,
            strategy,
            epochs=3,
            schedule=ConstantLR(0.1),
            test=test,
        ).run()
        none = run(NoShuffle(clustered.n_tuples))
        once = run(ShuffleOnce(clustered.n_tuples, seed=0))
        assert once.final.test_score > none.final.test_score

    def test_corgipile_index_source(self, problem):
        train, test = problem
        clustered = clustered_by_label(train)
        cp = CorgiPileShuffle(clustered.layout(10), buffer_blocks=4, seed=0)
        history = Trainer(
            LogisticRegression(8),
            clustered,
            cp,
            epochs=5,
            schedule=ExponentialDecay(0.1),
            test=test,
        ).run()
        assert history.strategy == "corgipile"
        assert history.final.test_score > 0.8

    def test_validation(self, problem):
        train, _ = problem
        strategy = NoShuffle(train.n_tuples)
        with pytest.raises(ValueError):
            Trainer(LogisticRegression(8), train, strategy, epochs=0)
        with pytest.raises(ValueError):
            Trainer(LogisticRegression(8), train, strategy, epochs=1, batch_size=0)

    def test_fixed_order_source(self, problem):
        train, _ = problem
        orders = [np.arange(train.n_tuples), np.arange(train.n_tuples)[::-1]]
        source = fixed_order_source("custom", orders)
        np.testing.assert_array_equal(source.epoch_indices(1), orders[1])
        np.testing.assert_array_equal(source.epoch_indices(2), orders[0])
        history = Trainer(
            LogisticRegression(8), train, source, epochs=2, schedule=ConstantLR(0.05)
        ).run()
        assert history.strategy == "custom"


class TestConvergenceHistory:
    def _record(self, epoch, test_score):
        return EpochRecord(epoch, 0.1, 1.0, 0.5, test_score, 100)

    def test_epochs_to_reach(self):
        history = ConvergenceHistory("s", "m")
        for e, score in enumerate([0.5, 0.7, 0.9, 0.95]):
            history.append(self._record(e, score))
        assert history.epochs_to_reach(0.9) == 3
        assert history.epochs_to_reach(0.99) is None

    def test_best_test_score(self):
        history = ConvergenceHistory("s", "m")
        for e, score in enumerate([0.5, 0.9, 0.7]):
            history.append(self._record(e, score))
        assert history.best_test_score() == 0.9

    def test_empty_history_raises(self):
        history = ConvergenceHistory("s", "m")
        with pytest.raises(ValueError):
            _ = history.final
        with pytest.raises(ValueError):
            history.best_test_score()

    def test_test_scores_skip_none(self):
        history = ConvergenceHistory("s", "m")
        history.append(self._record(0, None))
        history.append(self._record(1, 0.8))
        assert history.test_scores == [0.8]
