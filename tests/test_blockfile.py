"""Tests for the on-disk block file format (the PyTorch-side storage)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.storage import BlockFileReader, write_block_file


@pytest.fixture()
def dense_file(tmp_path, dense_binary):
    path = tmp_path / "dense.blocks"
    entries = write_block_file(dense_binary, path, tuples_per_block=50)
    return path, entries


class TestWrite:
    def test_block_count(self, dense_file, dense_binary):
        _, entries = dense_file
        assert len(entries) == -(-dense_binary.n_tuples // 50)

    def test_offsets_contiguous(self, dense_file):
        _, entries = dense_file
        expected = 0
        for entry in entries:
            assert entry.offset == expected
            expected += entry.length

    def test_index_sidecar_written(self, dense_file):
        path, _ = dense_file
        assert (path.parent / (path.name + ".index.json")).exists()

    def test_invalid_block_size(self, tmp_path, dense_binary):
        with pytest.raises(ValueError):
            write_block_file(dense_binary, tmp_path / "x", tuples_per_block=0)


class TestRead:
    def test_read_all_blocks_covers_dataset(self, dense_file, dense_binary):
        path, _ = dense_file
        with BlockFileReader(path) as reader:
            ids = []
            for b in range(reader.n_blocks):
                ids.extend(t.tuple_id for t in reader.read_block(b))
        assert sorted(ids) == list(range(dense_binary.n_tuples))

    def test_block_content_matches_dataset(self, dense_file, dense_binary):
        path, _ = dense_file
        with BlockFileReader(path) as reader:
            records = reader.read_block(2)
        for record in records:
            np.testing.assert_allclose(record.features, dense_binary.X[record.tuple_id])
            assert record.label == dense_binary.y[record.tuple_id]

    def test_byte_accounting(self, dense_file):
        path, entries = dense_file
        with BlockFileReader(path) as reader:
            reader.read_block(0)
            reader.read_block(3)
            assert reader.blocks_read == 2
            assert reader.bytes_read == entries[0].length + entries[3].length

    def test_sparse_roundtrip(self, tmp_path, sparse_binary):
        path = tmp_path / "sparse.blocks"
        write_block_file(sparse_binary, path, tuples_per_block=32)
        with BlockFileReader(path) as reader:
            records = reader.read_block(0)
            assert records[0].is_sparse
            np.testing.assert_allclose(
                records[0].features.to_dense(), sparse_binary.X.to_dense()[0]
            )

    def test_random_block_access_out_of_order(self, dense_file):
        path, _ = dense_file
        with BlockFileReader(path) as reader:
            last = reader.read_block(reader.n_blocks - 1)
            first = reader.read_block(0)
        assert first[0].tuple_id == 0
        assert last[-1].tuple_id > first[-1].tuple_id
