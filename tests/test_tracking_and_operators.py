"""Tests for Trainer callbacks, the gradient tracker, and PermutedScan."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import BlockLayout, clustered_by_label, make_binary_dense
from repro.db import Catalog, MiniDB, run_in_db_system
from repro.db.engine import ENGINE_PROFILE
from repro.db.operators import PermutedScanOperator
from repro.db.timing import RuntimeContext
from repro.ml import ExponentialDecay, LogisticRegression, Trainer
from repro.shuffle import ShuffleOnce
from repro.storage import HDD_SCALED, SSD
from repro.theory import GradientStatsTracker


@pytest.fixture()
def clustered_problem():
    ds = make_binary_dense(600, 8, separation=1.0, seed=0)
    return clustered_by_label(ds, seed=0)


class TestCallbacks:
    def test_callbacks_invoked_per_epoch(self, clustered_problem):
        calls = []
        Trainer(
            LogisticRegression(8),
            clustered_problem,
            ShuffleOnce(600, seed=0),
            epochs=4,
            schedule=ExponentialDecay(0.05),
            callbacks=[lambda epoch, model, record: calls.append(epoch)],
        ).run()
        assert calls == [0, 1, 2, 3]

    def test_callback_sees_live_model(self, clustered_problem):
        snapshots = []
        model = LogisticRegression(8)
        Trainer(
            model,
            clustered_problem,
            ShuffleOnce(600, seed=0),
            epochs=2,
            schedule=ExponentialDecay(0.05),
            callbacks=[lambda e, m, r: snapshots.append(m is model)],
        ).run()
        assert snapshots == [True, True]


class TestGradientStatsTracker:
    def test_tracks_every_epoch(self, clustered_problem):
        layout = BlockLayout(600, 20)
        tracker = GradientStatsTracker(clustered_problem, layout)
        Trainer(
            LogisticRegression(8),
            clustered_problem,
            ShuffleOnce(600, seed=0),
            epochs=3,
            schedule=ExponentialDecay(0.05),
            callbacks=[tracker],
        ).run()
        assert len(tracker.history) == 3
        assert tracker.final.epoch == 2
        assert all(s.sigma2 > 0 for s in tracker.history)
        assert all(1e-6 < s.hd <= layout.tuples_per_block for s in tracker.history)

    def test_hd_series_stays_above_shuffled(self, clustered_problem):
        layout = BlockLayout(600, 20)
        shuffled = clustered_problem.shuffled(seed=3)
        tracked_c = GradientStatsTracker(clustered_problem, layout)
        tracked_s = GradientStatsTracker(shuffled, layout)
        for dataset, tracker in ((clustered_problem, tracked_c), (shuffled, tracked_s)):
            Trainer(
                LogisticRegression(8), dataset, ShuffleOnce(600, seed=0),
                epochs=3, schedule=ExponentialDecay(0.05), callbacks=[tracker],
            ).run()
        assert all(
            c > s for c, s in zip(tracked_c.hd_series(), tracked_s.hd_series())
        )

    def test_empty_tracker_raises(self, clustered_problem):
        tracker = GradientStatsTracker(clustered_problem, BlockLayout(600, 20))
        with pytest.raises(ValueError):
            _ = tracker.final


class TestPermutedScan:
    @pytest.fixture()
    def table(self, clustered_problem):
        return Catalog(page_bytes=512).create_table("t", clustered_problem)

    def test_emits_permutation(self, table):
        ctx = RuntimeContext(device=SSD, compute=ENGINE_PROFILE)
        op = PermutedScanOperator(table, ctx, seed=1, charge="random_tuple")
        op.open()
        ids = [r.tuple_id for r in op]
        assert sorted(ids) == list(range(table.n_tuples))
        assert ids != sorted(ids)

    def test_rescan_new_permutation(self, table):
        ctx = RuntimeContext(device=SSD, compute=ENGINE_PROFILE)
        op = PermutedScanOperator(table, ctx, seed=1, charge="sort")
        op.open()
        first = [r.tuple_id for r in op]
        op.rescan()
        second = [r.tuple_id for r in op]
        assert first != second
        assert sorted(first) == sorted(second)

    def test_sort_mode_charges_passes_upfront(self, table):
        ctx = RuntimeContext(device=HDD_SCALED, compute=ENGINE_PROFILE)
        op = PermutedScanOperator(table, ctx, seed=1, charge="sort")
        op.open()
        expected = PermutedScanOperator.SORT_PASSES * HDD_SCALED.sequential_time(
            float(table.heap.payload_bytes)
        )
        assert ctx.total_io_s == pytest.approx(expected, rel=1e-6)

    def test_invalid_charge_mode(self, table):
        ctx = RuntimeContext(device=SSD, compute=ENGINE_PROFILE)
        with pytest.raises(ValueError):
            PermutedScanOperator(table, ctx, charge="wishful")


class TestNewEngineStrategies:
    def test_epoch_shuffle_converges_like_shuffle_once(self, clustered_problem):
        train, test = clustered_problem.split(0.9, seed=1)
        train = clustered_by_label(train, seed=0)
        es = run_in_db_system(
            "corgipile", "epoch_shuffle", train, test, "lr", HDD_SCALED,
            epochs=5, block_size=4096,
        )
        so = run_in_db_system(
            "corgipile", "shuffle_once", train, test, "lr", HDD_SCALED,
            epochs=5, block_size=4096,
        )
        assert abs(es.history.final.test_score - so.history.final.test_score) < 0.08
        # Epoch Shuffle pays the sort every epoch; Shuffle Once only once.
        assert es.timeline.total_time_s > so.timeline.total_time_s - so.timeline.setup_s

    def test_random_access_statistically_ideal(self, clustered_problem):
        train, test = clustered_problem.split(0.9, seed=1)
        train = clustered_by_label(train, seed=0)
        ra = run_in_db_system(
            "corgipile", "random_access", train, test, "lr", HDD_SCALED,
            epochs=5, block_size=4096,
        )
        ns = run_in_db_system(
            "corgipile", "no_shuffle", train, test, "lr", HDD_SCALED,
            epochs=5, block_size=4096,
        )
        assert ra.history.final.test_score > ns.history.final.test_score

    def test_explain_covers_new_strategies(self, clustered_problem):
        db = MiniDB(page_bytes=1024)
        db.create_table("t", clustered_problem)
        assert "PermutedScan" in db.execute(
            "EXPLAIN SELECT * FROM t TRAIN BY lr WITH strategy = epoch_shuffle"
        )
        assert "vanilla SGD" in db.execute(
            "EXPLAIN SELECT * FROM t TRAIN BY lr WITH strategy = random_access"
        )
