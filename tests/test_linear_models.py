"""Tests for the generalized linear models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import make_binary_dense, make_binary_sparse, make_regression
from repro.data.sparse import SparseMatrix
from repro.ml import LinearRegression, LinearSVM, LogisticRegression


def numeric_gradient(model, X, y, eps=1e-6):
    grads = {}
    for key, param in model.params.items():
        grad = np.zeros_like(param)
        flat = param.ravel()
        gflat = grad.ravel()
        for i in range(flat.size):
            orig = flat[i]
            flat[i] = orig + eps
            up = model.loss(X, y)
            flat[i] = orig - eps
            down = model.loss(X, y)
            flat[i] = orig
            gflat[i] = (up - down) / (2 * eps)
        grads[key] = grad
    return grads


class TestGradients:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: LogisticRegression(5),
            lambda: LinearSVM(5, l2=0.01),
            lambda: LinearRegression(5, l2=0.001),
        ],
    )
    def test_analytic_matches_numeric(self, factory):
        rng = np.random.default_rng(0)
        model = factory()
        model.params["w"][:] = rng.standard_normal(5) * 0.5
        model.params["b"][:] = 0.3
        X = rng.standard_normal((12, 5))
        if isinstance(model, LinearRegression):
            y = rng.standard_normal(12)
        else:
            y = np.where(rng.random(12) < 0.5, 1.0, -1.0)
        analytic = model.gradient(X, y)
        numeric = numeric_gradient(model, X, y)
        for key in analytic:
            np.testing.assert_allclose(analytic[key], numeric[key], atol=1e-4)

    def test_sparse_gradient_matches_dense(self, sparse_binary):
        dense_X = sparse_binary.X.to_dense()
        m1 = LogisticRegression(sparse_binary.n_features)
        m2 = LogisticRegression(sparse_binary.n_features)
        g_sparse = m1.gradient(sparse_binary.X, sparse_binary.y)
        g_dense = m2.gradient(dense_X, sparse_binary.y)
        np.testing.assert_allclose(g_sparse["w"], g_dense["w"], atol=1e-10)
        np.testing.assert_allclose(g_sparse["b"], g_dense["b"], atol=1e-10)


class TestStepExample:
    def test_dense_step_equals_gradient_step(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal(6)
        y = 1.0
        a = LogisticRegression(6)
        b = LogisticRegression(6)
        a.step_example(x, y, lr=0.1)
        grads = b.gradient(x.reshape(1, -1), np.array([y]))
        b.apply_gradient(grads, 0.1)
        np.testing.assert_allclose(a.w, b.w, atol=1e-12)
        np.testing.assert_allclose(a.b, b.b, atol=1e-12)

    def test_sparse_step_equals_dense_step(self, sparse_binary):
        row = sparse_binary.X.row(3)
        y = float(sparse_binary.y[3])
        a = LinearSVM(sparse_binary.n_features, l2=0.0)
        b = LinearSVM(sparse_binary.n_features, l2=0.0)
        a.step_example(row, y, lr=0.05)
        b.step_example(row.to_dense(), y, lr=0.05)
        np.testing.assert_allclose(a.w, b.w, atol=1e-12)

    def test_hinge_no_update_outside_margin(self):
        model = LinearSVM(3, l2=0.0)
        model.params["w"][:] = np.array([10.0, 0.0, 0.0])
        before = model.w.copy()
        model.step_example(np.array([1.0, 0.0, 0.0]), 1.0, lr=0.1)  # margin >> 1
        np.testing.assert_allclose(model.w, before)

    def test_l2_decays_weights(self):
        model = LinearSVM(2, l2=0.5)
        model.params["w"][:] = np.array([1.0, 1.0])
        model.step_example(np.array([1.0, 0.0]), 1.0, lr=0.1)  # within margin
        # Weight decay applied: w *= (1 - lr*l2) before the hinge update.
        assert model.w[1] == pytest.approx(0.95)


class TestTrainingQuality:
    def test_logistic_learns_separable_data(self):
        ds = make_binary_dense(800, 6, separation=2.5, seed=0)
        model = LogisticRegression(6)
        rng = np.random.default_rng(0)
        for _ in range(3):
            for i in rng.permutation(800):
                model.step_example(ds.X[i], float(ds.y[i]), lr=0.05)
        assert model.score(ds.X, ds.y) > 0.95

    def test_svm_learns_sparse_data(self):
        ds = make_binary_sparse(400, 120, nnz_per_row=15, separation=1.5, seed=2)
        model = LinearSVM(120)
        rng = np.random.default_rng(0)
        for _ in range(4):
            for i in rng.permutation(400):
                model.step_example(ds.X.row(int(i)), float(ds.y[i]), lr=0.05)
        assert model.score(ds.X, ds.y) > 0.9

    def test_linear_regression_r2(self):
        ds = make_regression(600, 5, noise=0.05, seed=1)
        model = LinearRegression(5)
        rng = np.random.default_rng(0)
        for epoch in range(5):
            lr = 0.05 * 0.9**epoch
            for i in rng.permutation(600):
                model.step_example(ds.X[i], float(ds.y[i]), lr=lr)
        assert model.score(ds.X, ds.y) > 0.95


class TestScoresAndPredictions:
    def test_predict_signs(self):
        model = LogisticRegression(2)
        model.params["w"][:] = np.array([1.0, 0.0])
        X = np.array([[2.0, 0.0], [-2.0, 0.0]])
        np.testing.assert_array_equal(model.predict(X), [1.0, -1.0])

    def test_r2_of_mean_predictor_zero(self):
        model = LinearRegression(2)  # zero weights predicts 0
        X = np.zeros((4, 2))
        y = np.array([-1.0, 1.0, -1.0, 1.0])  # mean 0 => ss_res == ss_tot
        assert model.score(X, y) == pytest.approx(0.0)

    def test_decision_function_sparse(self, sparse_binary):
        model = LogisticRegression(sparse_binary.n_features)
        model.params["w"][:] = np.ones(sparse_binary.n_features)
        z_sparse = model.decision_function(sparse_binary.X)
        z_dense = model.decision_function(sparse_binary.X.to_dense())
        np.testing.assert_allclose(z_sparse, z_dense, atol=1e-10)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            LogisticRegression(0)
        with pytest.raises(ValueError):
            LinearSVM(3, l2=-1.0)

    def test_parameter_vector(self):
        model = LogisticRegression(3)
        vec = model.parameter_vector()
        assert vec.shape == (4,)  # 3 weights + bias
