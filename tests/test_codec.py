"""Tests for the binary tuple codec."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.sparse import SparseRow
from repro.storage import TupleSchema, decode_tuple, encode_tuple


class TestDenseCodec:
    def test_roundtrip(self):
        features = np.array([1.5, -2.0, 0.0, 3.25])
        payload = encode_tuple(7, -1.0, features)
        decoded, offset = decode_tuple(payload, 0, TupleSchema(4))
        assert offset == len(payload)
        assert decoded.tuple_id == 7
        assert decoded.label == -1.0
        assert not decoded.is_sparse
        np.testing.assert_allclose(decoded.features, features)

    def test_size_matches_schema(self):
        schema = TupleSchema(10)
        payload = encode_tuple(0, 1.0, np.zeros(10))
        assert len(payload) == schema.dense_tuple_bytes()

    def test_multiple_tuples_in_buffer(self):
        buf = encode_tuple(0, 1.0, np.array([1.0])) + encode_tuple(1, -1.0, np.array([2.0]))
        schema = TupleSchema(1)
        first, offset = decode_tuple(buf, 0, schema)
        second, end = decode_tuple(buf, offset, schema)
        assert first.tuple_id == 0 and second.tuple_id == 1
        assert end == len(buf)


class TestSparseCodec:
    def test_roundtrip(self):
        row = SparseRow([2, 9, 40], [0.5, -1.5, 2.0], 100)
        payload = encode_tuple(3, 1.0, row)
        decoded, offset = decode_tuple(payload, 0, TupleSchema(100, sparse=True))
        assert offset == len(payload)
        assert decoded.is_sparse
        np.testing.assert_array_equal(decoded.features.indices, row.indices)
        np.testing.assert_allclose(decoded.features.values, row.values)
        assert decoded.features.n_features == 100

    def test_empty_row(self):
        row = SparseRow([], [], 10)
        payload = encode_tuple(0, -1.0, row)
        decoded, _ = decode_tuple(payload, 0, TupleSchema(10, sparse=True))
        assert decoded.features.nnz == 0

    def test_size_matches_schema(self):
        schema = TupleSchema(100, sparse=True)
        row = SparseRow([1, 2, 3], [1.0, 2.0, 3.0], 100)
        assert len(encode_tuple(0, 1.0, row)) == schema.sparse_tuple_bytes(3)


@settings(max_examples=50, deadline=None)
@given(
    tuple_id=st.integers(0, 2**40),
    label=st.floats(-100, 100, allow_nan=False),
    values=st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=1, max_size=20),
)
def test_property_dense_roundtrip(tuple_id, label, values):
    features = np.array(values, dtype=np.float64)
    payload = encode_tuple(tuple_id, label, features)
    decoded, offset = decode_tuple(payload, 0, TupleSchema(len(values)))
    assert offset == len(payload)
    assert decoded.tuple_id == tuple_id
    assert decoded.label == pytest.approx(label)
    np.testing.assert_allclose(decoded.features, features)


@settings(max_examples=50, deadline=None)
@given(
    data=st.lists(
        st.tuples(st.integers(0, 999), st.floats(-10, 10, allow_nan=False)),
        min_size=0,
        max_size=15,
        unique_by=lambda t: t[0],
    )
)
def test_property_sparse_roundtrip(data):
    data.sort()
    indices = np.array([d[0] for d in data], dtype=np.int64)
    values = np.array([d[1] for d in data], dtype=np.float64)
    row = SparseRow(indices, values, 1000)
    payload = encode_tuple(5, 1.0, row)
    decoded, _ = decode_tuple(payload, 0, TupleSchema(1000, sparse=True))
    np.testing.assert_array_equal(decoded.features.indices, indices)
    np.testing.assert_allclose(decoded.features.values, values)
