"""Tests for the LRU buffer pool."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import StorageStats
from repro.faults import FaultPlan, FaultSpec, FaultyHeapFile
from repro.storage import BufferPool, HeapFile, ReadExhaustedError, RetryPolicy


@pytest.fixture()
def heap(dense_binary) -> HeapFile:
    return HeapFile.from_dataset(dense_binary, page_bytes=1024)


class TestBufferPool:
    def test_miss_then_hit(self, heap):
        pool = BufferPool(heap, capacity_pages=4)
        pool.get_page(0)
        assert (pool.hits, pool.misses) == (0, 1)
        pool.get_page(0)
        assert (pool.hits, pool.misses) == (1, 1)

    def test_traced_flags(self, heap):
        pool = BufferPool(heap, capacity_pages=4)
        _, hit = pool.get_page_traced(2)
        assert hit is False
        _, hit = pool.get_page_traced(2)
        assert hit is True

    def test_lru_eviction(self, heap):
        pool = BufferPool(heap, capacity_pages=2)
        pool.get_page(0)
        pool.get_page(1)
        pool.get_page(2)  # evicts page 0
        assert pool.cached_pages == 2
        _, hit = pool.get_page_traced(0)
        assert hit is False

    def test_lru_recency_update(self, heap):
        pool = BufferPool(heap, capacity_pages=2)
        pool.get_page(0)
        pool.get_page(1)
        pool.get_page(0)  # page 0 becomes most recent
        pool.get_page(2)  # evicts page 1
        _, hit = pool.get_page_traced(0)
        assert hit is True

    def test_clear(self, heap):
        pool = BufferPool(heap, capacity_pages=4)
        pool.get_page(0)
        pool.clear()
        assert pool.cached_pages == 0
        _, hit = pool.get_page_traced(0)
        assert hit is False

    def test_hit_rate(self, heap):
        pool = BufferPool(heap, capacity_pages=8)
        assert pool.hit_rate == 0.0
        pool.get_page(0)
        pool.get_page(0)
        pool.get_page(0)
        assert pool.hit_rate == pytest.approx(2 / 3)

    def test_reset_stats(self, heap):
        pool = BufferPool(heap, capacity_pages=8)
        pool.get_page(0)
        pool.reset_stats()
        assert (pool.hits, pool.misses) == (0, 0)
        assert pool.cached_pages == 1  # cache content survives

    def test_invalid_capacity(self, heap):
        with pytest.raises(ValueError):
            BufferPool(heap, capacity_pages=0)

    def test_page_content_identity(self, heap):
        pool = BufferPool(heap, capacity_pages=4)
        tuples = pool.get_page(1)
        assert tuples[0].tuple_id == heap.read_page(1)[0].tuple_id

    def test_handed_out_page_is_immutable(self, heap):
        """Regression: callers must not be able to corrupt the shared cache."""
        pool = BufferPool(heap, capacity_pages=4)
        page = pool.get_page(0)
        assert isinstance(page, tuple)
        with pytest.raises((TypeError, AttributeError)):
            page[0] = None  # type: ignore[index]
        with pytest.raises(AttributeError):
            page.append(None)  # type: ignore[attr-defined]

    def test_cache_unaffected_by_reader_copies(self, heap):
        pool = BufferPool(heap, capacity_pages=4)
        first = pool.get_page(0)
        mutated = list(first)
        mutated.clear()  # a caller mangling its own copy...
        again = pool.get_page(0)
        assert len(again) == len(first)  # ...leaves the cached page intact
        assert again[0].tuple_id == heap.read_page(0)[0].tuple_id


class TestBufferPoolFaultInvalidation:
    """Regression (satellite d): a retried page read must invalidate the
    decoded-batch cache — a batch cached before the fault window opened can
    never be served once an attempt on that page fails its checksum."""

    def _faulty_pool(self, heap, spec, capacity=4, max_attempts=3):
        plan = FaultPlan(specs=[spec])
        stats = StorageStats("pool-faults")
        faulty = FaultyHeapFile(heap, plan, storage_stats=stats)
        pool = BufferPool(
            faulty,
            capacity_pages=capacity,
            retry=RetryPolicy(max_attempts=max_attempts),
            storage_stats=stats,
        )
        return pool, stats

    def test_failed_attempt_invalidates_cached_batch(self, heap):
        # Read 1 is clean and caches the page; read 2 opens the fault window.
        pool, stats = self._faulty_pool(
            heap, FaultSpec("torn", unit="page", target=0, times=1, from_read=2)
        )
        clean = pool.get_batch(0)  # read call 1: clean, cached
        assert pool.is_cached(0)
        refreshed = pool.refresh(0)  # read call 2: torn, retried, re-verified
        assert stats.checksum_failures == 1
        assert stats.retries == 1
        assert stats.cache_invalidations >= 1
        # The recovered page is verified content, identical to the clean read.
        assert np.array_equal(clean.ids, pool.get_batch(0).ids)
        assert [t.tuple_id for t in refreshed] == list(clean.ids)

    def test_exhausted_read_leaves_nothing_cached(self, heap):
        pool, stats = self._faulty_pool(
            heap,
            FaultSpec("torn", unit="page", target=1, times=5, from_read=2),
            max_attempts=2,
        )
        pool.get_page(1)  # clean first read, cached
        with pytest.raises(ReadExhaustedError):
            pool.refresh(1)
        # The pre-fault batch must not have survived as a stale "hit".
        assert not pool.is_cached(1)
        assert stats.exhausted_reads == 1

    def test_recovery_recaches_verified_content(self, heap):
        pool, stats = self._faulty_pool(
            heap, FaultSpec("torn", unit="page", target=2, times=1, from_read=1)
        )
        tuples = pool.get_page(2)  # torn once, retried to success
        assert stats.retries == 1
        assert pool.is_cached(2)
        _, hit = pool.get_page_traced(2)  # the verified re-read is cached
        assert hit is True
        expected = heap.read_page(2)
        assert [t.tuple_id for t in tuples] == [t.tuple_id for t in expected]

    def test_unfaulted_pages_keep_their_entries(self, heap):
        pool, _ = self._faulty_pool(
            heap, FaultSpec("torn", unit="page", target=0, times=1, from_read=2)
        )
        pool.get_page(0)
        pool.get_page(3)
        pool.refresh(0)  # fault window on page 0 only
        assert pool.is_cached(3)  # neighbours are untouched
