"""Tests for the LRU buffer pool."""

from __future__ import annotations

import pytest

from repro.storage import BufferPool, HeapFile


@pytest.fixture()
def heap(dense_binary) -> HeapFile:
    return HeapFile.from_dataset(dense_binary, page_bytes=1024)


class TestBufferPool:
    def test_miss_then_hit(self, heap):
        pool = BufferPool(heap, capacity_pages=4)
        pool.get_page(0)
        assert (pool.hits, pool.misses) == (0, 1)
        pool.get_page(0)
        assert (pool.hits, pool.misses) == (1, 1)

    def test_traced_flags(self, heap):
        pool = BufferPool(heap, capacity_pages=4)
        _, hit = pool.get_page_traced(2)
        assert hit is False
        _, hit = pool.get_page_traced(2)
        assert hit is True

    def test_lru_eviction(self, heap):
        pool = BufferPool(heap, capacity_pages=2)
        pool.get_page(0)
        pool.get_page(1)
        pool.get_page(2)  # evicts page 0
        assert pool.cached_pages == 2
        _, hit = pool.get_page_traced(0)
        assert hit is False

    def test_lru_recency_update(self, heap):
        pool = BufferPool(heap, capacity_pages=2)
        pool.get_page(0)
        pool.get_page(1)
        pool.get_page(0)  # page 0 becomes most recent
        pool.get_page(2)  # evicts page 1
        _, hit = pool.get_page_traced(0)
        assert hit is True

    def test_clear(self, heap):
        pool = BufferPool(heap, capacity_pages=4)
        pool.get_page(0)
        pool.clear()
        assert pool.cached_pages == 0
        _, hit = pool.get_page_traced(0)
        assert hit is False

    def test_hit_rate(self, heap):
        pool = BufferPool(heap, capacity_pages=8)
        assert pool.hit_rate == 0.0
        pool.get_page(0)
        pool.get_page(0)
        pool.get_page(0)
        assert pool.hit_rate == pytest.approx(2 / 3)

    def test_reset_stats(self, heap):
        pool = BufferPool(heap, capacity_pages=8)
        pool.get_page(0)
        pool.reset_stats()
        assert (pool.hits, pool.misses) == (0, 0)
        assert pool.cached_pages == 1  # cache content survives

    def test_invalid_capacity(self, heap):
        with pytest.raises(ValueError):
            BufferPool(heap, capacity_pages=0)

    def test_page_content_identity(self, heap):
        pool = BufferPool(heap, capacity_pages=4)
        tuples = pool.get_page(1)
        assert tuples[0].tuple_id == heap.read_page(1)[0].tuple_id

    def test_handed_out_page_is_immutable(self, heap):
        """Regression: callers must not be able to corrupt the shared cache."""
        pool = BufferPool(heap, capacity_pages=4)
        page = pool.get_page(0)
        assert isinstance(page, tuple)
        with pytest.raises((TypeError, AttributeError)):
            page[0] = None  # type: ignore[index]
        with pytest.raises(AttributeError):
            page.append(None)  # type: ignore[attr-defined]

    def test_cache_unaffected_by_reader_copies(self, heap):
        pool = BufferPool(heap, capacity_pages=4)
        first = pool.get_page(0)
        mutated = list(first)
        mutated.clear()  # a caller mangling its own copy...
        again = pool.get_page(0)
        assert len(again) == len(first)  # ...leaves the cached page intact
        assert again[0].tuple_id == heap.read_page(0)[0].tuple_id
