"""Tests for AdaGrad/RMSprop and early stopping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import make_binary_dense
from repro.ml import AdaGrad, ConstantLR, EarlyStopping, LogisticRegression, RMSprop, Trainer
from repro.shuffle import ShuffleOnce

from .test_optim_schedules import _Quadratic


class TestAdaGrad:
    def test_converges_on_quadratic(self):
        model = _Quadratic([2.0, -1.0])
        opt = AdaGrad(model)
        for _ in range(3000):
            opt.step(model.grad(), lr=0.5)
        np.testing.assert_allclose(model.params["w"], model.target, atol=1e-2)

    def test_effective_lr_shrinks(self):
        model = _Quadratic([100.0])
        opt = AdaGrad(model)
        opt.step({"w": np.array([-1.0])}, lr=1.0)
        first = model.params["w"][0]
        opt.step({"w": np.array([-1.0])}, lr=1.0)
        second = model.params["w"][0] - first
        assert second < first  # accumulated square damps later steps

    def test_trains_logistic_regression(self):
        ds = make_binary_dense(500, 6, separation=2.0, seed=0)
        model = LogisticRegression(6)
        history = Trainer(
            model, ds, ShuffleOnce(500, seed=0),
            epochs=6, schedule=ConstantLR(0.5), batch_size=32,
            optimizer=AdaGrad(model),
        ).run()
        assert history.final.train_score > 0.9


class TestRMSprop:
    def test_converges_on_quadratic(self):
        model = _Quadratic([1.0, 3.0])
        opt = RMSprop(model)
        for _ in range(3000):
            opt.step(model.grad(), lr=0.01)
        np.testing.assert_allclose(model.params["w"], model.target, atol=1e-2)

    def test_rho_validation(self):
        with pytest.raises(ValueError):
            RMSprop(_Quadratic([1.0]), rho=1.0)

    def test_normalises_gradient_scale(self):
        # Steady-state RMSprop step size is ~lr regardless of gradient scale.
        small = _Quadratic([1e6])
        big = _Quadratic([1e6])
        opt_s, opt_b = RMSprop(small), RMSprop(big)
        for _ in range(50):
            opt_s.step({"w": np.array([-1.0])}, lr=0.1)
            opt_b.step({"w": np.array([-1000.0])}, lr=0.1)
        assert small.params["w"][0] == pytest.approx(big.params["w"][0], rel=0.05)


class TestEarlyStopping:
    def test_stops_after_patience(self):
        stopper = EarlyStopping(patience=2, min_delta=0.0, restore_best=False)
        params = {"w": np.zeros(1)}
        assert stopper.update(0.5, params) is False
        assert stopper.update(0.5, params) is False  # stale 1
        assert stopper.update(0.5, params) is True  # stale 2 => stop

    def test_improvement_resets_patience(self):
        stopper = EarlyStopping(patience=2, min_delta=0.01)
        params = {"w": np.zeros(1)}
        stopper.update(0.5, params)
        stopper.update(0.4, params)  # stale 1
        assert stopper.update(0.6, params) is False  # improvement resets
        assert stopper.update(0.6, params) is False
        assert stopper.update(0.6, params) is True

    def test_restore_best_rolls_back(self):
        stopper = EarlyStopping(patience=1, restore_best=True)
        params = {"w": np.array([1.0])}
        stopper.update(0.9, params)  # best snapshot at w=1
        params["w"][0] = 42.0
        stopper.update(0.1, params)  # worse
        stopper.restore(params)
        assert params["w"][0] == 1.0
        assert stopper.best_metric == 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)
        with pytest.raises(ValueError):
            EarlyStopping(min_delta=-1.0)

    def test_trainer_integration_stops_early(self):
        ds = make_binary_dense(400, 5, separation=3.0, seed=0)
        train, test = ds.split(0.8, seed=1)
        model = LogisticRegression(5)
        history = Trainer(
            model, train, ShuffleOnce(train.n_tuples, seed=0),
            epochs=50, schedule=ConstantLR(0.2), test=test,
            early_stopping=EarlyStopping(patience=3, min_delta=1e-4),
        ).run()
        # Easy separable data converges immediately => stops long before 50.
        assert history.epochs < 50
        assert history.final.test_score > 0.95

    def test_trainer_without_test_uses_loss(self):
        ds = make_binary_dense(300, 5, separation=3.0, seed=0)
        model = LogisticRegression(5)
        history = Trainer(
            model, ds, ShuffleOnce(300, seed=0),
            epochs=40, schedule=ConstantLR(0.2),
            early_stopping=EarlyStopping(patience=2),
        ).run()
        assert history.epochs < 40
