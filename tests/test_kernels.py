"""Fused ``step_block`` kernels: equivalence with the per-tuple reference path.

The fused kernels must preserve per-tuple standard-SGD semantics exactly —
same visit order, one update per tuple — so every test here compares the
fused path against the ``step_example`` reference loop (reachable as the
unbound ``SupervisedModel.step_block``) and asserts the parameters agree to
1e-9 or better.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import make_binary_dense, make_binary_sparse
from repro.data.sparse import SparseMatrix, SparseRow
from repro.db import MiniDB, TrainQuery
from repro.ml import (
    ExponentialDecay,
    LinearRegression,
    LinearSVM,
    LogisticRegression,
    Trainer,
    csr_rows_unique,
)
from repro.bench import run_kernel_bench
from repro.ml.losses import HingeLoss, LogisticLoss, SquaredLoss
from repro.ml.models.base import SupervisedModel
from repro.ml.streaming import train_streaming
from repro.ml.trainer import fixed_order_source
from repro.core.dataloader import Batch

# LinearRegression diverges at lr=0.05 on d=64 standard-normal rows, which
# exponentially amplifies rounding noise; use a stable rate for it.
_MODEL_CASES = [
    (LogisticRegression, 0.05),
    (LinearSVM, 0.05),
    (LinearRegression, 0.01),
]


def _dense_problem(n=200, d=64, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.standard_normal((n, d))
    y = np.where(rng.random(n) < 0.5, -1.0, 1.0)
    return X, y


def _sparse_problem(n=200, d=500, nnz=10, seed=0):
    rng = np.random.default_rng(seed)
    rows = [
        SparseRow(
            np.sort(rng.choice(d, size=nnz, replace=False)),
            rng.standard_normal(nnz),
            d,
        )
        for _ in range(n)
    ]
    y = np.where(rng.random(n) < 0.5, -1.0, 1.0)
    return SparseMatrix.from_rows(rows, d), y


def _run_pair(model_cls, X, y, lr, *, l2, fit_intercept, epochs=3, seed=0):
    d = X.shape[1]
    ref = model_cls(d, l2=l2, fit_intercept=fit_intercept)
    fused = model_cls(d, l2=l2, fit_intercept=fit_intercept)
    rng = np.random.default_rng(seed)
    for _ in range(epochs):
        order = rng.permutation(len(y))
        # Unbound call = the hoisted per-tuple step_example reference loop.
        SupervisedModel.step_block(ref, X, y, lr, order=order)
        fused.step_block(X, y, lr, order=order)
    return ref, fused


class TestFusedEquivalence:
    @pytest.mark.parametrize("model_cls,lr", _MODEL_CASES)
    @pytest.mark.parametrize("l2", [0.0, 1e-3])
    @pytest.mark.parametrize("fit_intercept", [True, False])
    def test_dense(self, model_cls, lr, l2, fit_intercept):
        X, y = _dense_problem()
        ref, fused = _run_pair(model_cls, X, y, lr, l2=l2, fit_intercept=fit_intercept)
        np.testing.assert_allclose(fused.w, ref.w, rtol=0, atol=1e-9)
        assert abs(fused.b - ref.b) <= 1e-9

    @pytest.mark.parametrize("model_cls,lr", _MODEL_CASES)
    @pytest.mark.parametrize("l2", [0.0, 1e-3])
    @pytest.mark.parametrize("fit_intercept", [True, False])
    def test_sparse(self, model_cls, lr, l2, fit_intercept):
        X, y = _sparse_problem()
        ref, fused = _run_pair(model_cls, X, y, lr, l2=l2, fit_intercept=fit_intercept)
        np.testing.assert_allclose(fused.w, ref.w, rtol=0, atol=1e-9)
        assert abs(fused.b - ref.b) <= 1e-9

    def test_default_order_is_sequential(self):
        X, y = _dense_problem(n=50, d=8)
        ref = LogisticRegression(8)
        fused = LogisticRegression(8)
        SupervisedModel.step_block(ref, X, y, 0.05, order=np.arange(50))
        fused.step_block(X, y, 0.05)  # order=None means 0..n-1
        np.testing.assert_allclose(fused.w, ref.w, rtol=0, atol=1e-9)

    def test_no_l2_dense_is_tight(self):
        # Without l2 there is no lazy-scaling rescale at all; the only
        # remaining divergence is ulp-level (math.exp vs np.exp in the loss).
        X, y = _dense_problem(n=100, d=16)
        ref, fused = _run_pair(LogisticRegression, X, y, 0.05, l2=0.0, fit_intercept=True)
        np.testing.assert_allclose(fused.w, ref.w, rtol=0, atol=1e-12)


class TestFusedPipelines:
    def test_trainer_fused_matches_scalar(self):
        data = make_binary_dense(300, 10, separation=1.0, seed=5)
        orders = [np.random.default_rng(7 + e).permutation(data.n_tuples) for e in range(3)]

        def run(fused):
            model = LogisticRegression(data.n_features, l2=1e-3)
            Trainer(
                model,
                data,
                fixed_order_source("fixed", orders),
                epochs=3,
                schedule=ExponentialDecay(0.05),
                fused=fused,
            ).run()
            return model

        scalar, fused = run(False), run(True)
        np.testing.assert_allclose(fused.w, scalar.w, rtol=0, atol=1e-9)
        assert abs(fused.b - scalar.b) <= 1e-9

    def test_trainer_fused_sparse(self):
        data = make_binary_sparse(200, 80, nnz_per_row=8, separation=1.0, seed=3)
        orders = [np.random.default_rng(11).permutation(data.n_tuples)]

        def run(fused):
            model = LinearSVM(data.n_features)
            Trainer(
                model,
                data,
                fixed_order_source("fixed", orders),
                epochs=2,
                schedule=ExponentialDecay(0.05),
                fused=fused,
            ).run()
            return model

        scalar, fused = run(False), run(True)
        np.testing.assert_allclose(fused.w, scalar.w, rtol=0, atol=1e-9)

    def test_streaming_fused_matches_scalar(self):
        data = make_binary_dense(256, 6, separation=1.0, seed=2)

        def loader(_epoch):
            for lo in range(0, data.n_tuples, 64):
                hi = min(lo + 64, data.n_tuples)
                yield Batch(data.X[lo:hi], data.y[lo:hi], np.arange(lo, hi))

        def run(fused):
            model = LogisticRegression(data.n_features, l2=1e-3)
            train_streaming(
                model,
                loader,
                epochs=2,
                schedule=ExponentialDecay(0.05),
                per_tuple=True,
                fused=fused,
            )
            return model

        scalar, fused = run(False), run(True)
        np.testing.assert_allclose(fused.w, scalar.w, rtol=0, atol=1e-9)

    def test_db_operator_fused_matches_scalar(self):
        data = make_binary_dense(200, 8, separation=1.2, seed=9)

        def run(fused):
            db = MiniDB(page_bytes=1024)
            db.create_table("t", data)
            query = TrainQuery(
                table="t",
                model="lr",
                strategy="corgipile",
                max_epoch_num=2,
                block_size=2048,
                seed=0,
                fused=fused,
            )
            return db.train(query).model

        scalar, fused = run(False), run(True)
        np.testing.assert_allclose(fused.w, scalar.w, rtol=0, atol=1e-9)
        assert abs(fused.b - scalar.b) <= 1e-9


class TestScalarLossDerivative:
    @pytest.mark.parametrize("loss", [LogisticLoss(), HingeLoss(), SquaredLoss()])
    def test_matches_array_path(self, loss):
        for z in (-600.0, -5.0, -1.0, -1e-12, 0.0, 0.3, 1.0, 4.0, 600.0):
            for y in (-1.0, 1.0, 0.5):
                expected = float(loss.dloss_dz(np.float64(z), np.float64(y)))
                assert loss.dloss_dz_scalar(z, y) == pytest.approx(expected, abs=1e-12)


class TestSparseRowScatter:
    def test_unique_indices_fast_path(self):
        row = SparseRow([1, 4, 7], [1.0, 2.0, 3.0], 10)
        assert row.has_unique_indices
        out = np.zeros(10)
        row.add_into(out, scale=2.0)
        np.testing.assert_array_equal(out[[1, 4, 7]], [2.0, 4.0, 6.0])

    def test_duplicate_indices_fall_back_to_accumulation(self):
        row = SparseRow([3, 3, 5], [1.0, 2.0, 4.0], 10)
        assert not row.has_unique_indices
        out = np.zeros(10)
        row.add_into(out, 1.0)
        # np.add.at semantics: duplicates accumulate.
        assert out[3] == 3.0 and out[5] == 4.0

    def test_csr_rows_unique(self):
        unique = SparseMatrix.from_rows(
            [SparseRow([0, 2], [1.0, 1.0], 4), SparseRow([1, 3], [1.0, 1.0], 4)], 4
        )
        assert csr_rows_unique(unique.indptr, unique.indices)
        # Descending within a row -> not strictly increasing -> not provably unique.
        dup = SparseMatrix(
            np.array([0, 2, 4]),
            np.array([2, 2, 1, 3]),
            np.array([1.0, 1.0, 1.0, 1.0]),
            (2, 4),
        )
        assert not csr_rows_unique(dup.indptr, dup.indices)
        # Row boundaries may legitimately "decrease" across rows.
        boundary = SparseMatrix(
            np.array([0, 2, 4]),
            np.array([2, 3, 0, 1]),
            np.array([1.0, 1.0, 1.0, 1.0]),
            (2, 4),
        )
        assert csr_rows_unique(boundary.indptr, boundary.indices)


class TestBenchHarness:
    def test_run_kernel_bench_smoke(self):
        doc = run_kernel_bench(quick=True, seed=0, repeats=1)
        assert doc["config"] == "quick"
        names = [r["name"] for r in doc["records"]]
        assert names == [
            "decode-dense",
            "decode-sparse",
            "decode-columnar-dense",
            "decode-columnar-sparse",
            "epoch-dense-lr",
            "epoch-sparse-lr",
        ]
        for record in doc["records"]:
            assert record["scalar_s"] > 0 and record["fused_s"] > 0
            assert record["speedup"] > 0
        summary = doc["summary"]
        assert set(summary) == {
            "epoch_speedup",
            "epoch_dense_speedup",
            "decode_speedup",
            "columnar_decode_speedup",
            "columnar_decode_dense_speedup",
            "columnar_bytes_ratio_dense",
            "columnar_bytes_ratio_sparse",
            "min_speedup",
        }
        assert summary["min_speedup"] == min(r["speedup"] for r in doc["records"])
        # The columnar payload must be smaller than the row payload.
        assert summary["columnar_bytes_ratio_sparse"] < 1.0
        assert summary["columnar_bytes_ratio_dense"] < 1.0
