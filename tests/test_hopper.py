"""Model-hopper parallelism: schedule invariants, bit-exactness, resume.

The hopper's whole correctness story is one sentence — every model walks
the identical ``(epoch, shard)`` stream a solo run walks, just shifted in
time — so these tests pin (a) the schedule algebra that makes that true,
(b) bit-exact equality between the multi-process engine, the in-process
reference, and per-config solo runs, and (c) crash+resume landing on the
same bits, including through the SQL ``TRAIN ... WITH grid`` surface.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import make_binary_dense
from repro.db import MiniDB, parse_query
from repro.db.engine import GridTrainResult
from repro.ml import LogisticRegression
from repro.parallel import (
    HopperEngine,
    HopperSchedule,
    modeled_walls,
    run_hopper_inprocess,
)
from repro.storage import write_block_file


# ----------------------------------------------------------------------
# Schedule algebra
# ----------------------------------------------------------------------


class TestHopperSchedule:
    def test_pipeline_shape(self):
        sch = HopperSchedule(4, 4, 3)
        assert sch.stream_length == 12
        assert sch.total_slots == 15  # E*P + S - 1
        assert sch.bubble_ratio == pytest.approx(15 / 12)

    def test_every_model_walks_the_canonical_stream(self):
        sch = HopperSchedule(3, 4, 2)
        canonical = [(e, w) for e in range(2) for w in range(4)]
        for m in range(3):
            assert sch.visits(m) == canonical

    def test_no_worker_hosts_two_models_in_a_slot(self):
        sch = HopperSchedule(4, 4, 3)
        for t in range(sch.total_slots):
            hosts = {}
            for w in range(sch.n_workers):
                m = sch.model_at(w, t)
                if m is not None:
                    assert m not in hosts, f"model {m} on two workers at slot {t}"
                    hosts[m] = w

    def test_more_models_than_workers_rejected(self):
        with pytest.raises(ValueError, match="collision-free"):
            HopperSchedule(5, 4, 3)

    def test_epoch_completions_in_order(self):
        sch = HopperSchedule(2, 3, 2)
        completions = [
            (t, m, sch.completes_epoch(m, t))
            for t in range(sch.total_slots)
            for m in range(2)
            if sch.completes_epoch(m, t) is not None
        ]
        # Each model completes each epoch exactly once, epochs in order,
        # model m one slot after model m-1.
        for m in range(2):
            mine = [(t, e) for t, mm, e in completions if mm == m]
            assert [e for _, e in mine] == [0, 1]
            for t, e in mine:
                assert t == (e + 1) * sch.n_workers - 1 + m


@settings(max_examples=60, deadline=None)
@given(
    n_workers=st.integers(1, 8),
    extra_workers=st.integers(0, 4),
    epochs=st.integers(1, 5),
    data=st.data(),
)
def test_property_hopper_visit_coverage(n_workers, extra_workers, epochs, data):
    """Every model visits every (epoch, shard) pair exactly once, in
    canonical order, and no two models share a shard within a slot."""
    P = n_workers + extra_workers
    S = data.draw(st.integers(1, P))
    sch = HopperSchedule(S, P, epochs)
    canonical = [(e, w) for e in range(epochs) for w in range(P)]
    seen_by_slot: dict[int, set[int]] = {}
    for m in range(S):
        visits = sch.visits(m)
        assert visits == canonical
        assert len(set(visits)) == epochs * P  # each pair exactly once
    for t in range(sch.total_slots):
        active = [sch.model_at(w, t) for w in range(P)]
        models = [m for m in active if m is not None]
        assert len(models) == len(set(models))
        seen_by_slot[t] = set(models)
    # Work conservation: total active units == S * E * P.
    assert sum(len(v) for v in seen_by_slot.values()) == S * epochs * P


# ----------------------------------------------------------------------
# Bit-exact execution
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def block_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("hopper") / "hopper.blocks"
    dataset = make_binary_dense(320, 8, seed=0)
    write_block_file(dataset, path, 20)
    return path


_KW = dict(
    lrs=[0.1, 0.05, 0.1, 0.05],
    decays=[0.95, 0.95, 0.9, 0.9],
    epochs=3,
    n_workers=4,
    buffer_blocks=2,
    seed=5,
)


def _models():
    return [LogisticRegression(8, seed=1) for _ in range(4)]


class TestHopperEngine:
    def test_multiprocess_matches_inprocess_and_solo(self, block_file):
        result = HopperEngine(block_file, _models(), **_KW).run()
        assert result.slots_run == 15
        assert result.tuples_processed == 4 * 3 * 320

        ref, ref_hist, units = run_hopper_inprocess(block_file, _models(), **_KW)
        for mp_model, ref_model in zip(result.models, ref):
            assert np.array_equal(
                mp_model.parameter_vector(), ref_model.parameter_vector()
            )

        # Each grid config is bit-identical to training it alone: the
        # hopper only reorders when work happens, never what it computes.
        for i in range(4):
            solo, _, _ = run_hopper_inprocess(
                block_file,
                [LogisticRegression(8, seed=1)],
                lrs=[_KW["lrs"][i]],
                decays=[_KW["decays"][i]],
                epochs=3,
                n_workers=4,
                buffer_blocks=2,
                seed=5,
            )
            assert np.array_equal(
                result.models[i].parameter_vector(), solo[0].parameter_vector()
            )

        walls = modeled_walls(HopperSchedule(4, 4, 3), units)
        assert walls["slots"] == 15
        assert walls["speedup"] > 1.0

    def test_leaderboard_ranked_and_deterministic(self, block_file):
        first = HopperEngine(block_file, _models(), **_KW).run()
        second = HopperEngine(block_file, _models(), **_KW).run()
        lb1, lb2 = first.leaderboard(), second.leaderboard()
        assert [r["rank"] for r in lb1] == [0, 1, 2, 3]
        losses = [r["final_train_loss"] for r in lb1]
        assert losses == sorted(losses)
        # Same seed, same bits, same leaderboard — run to run.
        for a, b in zip(lb1, lb2):
            assert a["config"] == b["config"]
            assert a["final_train_loss"] == b["final_train_loss"]
        for m1, m2 in zip(first.models, second.models):
            assert np.array_equal(m1.parameter_vector(), m2.parameter_vector())

    def test_kill_and_resume_bit_exact(self, block_file, tmp_path):
        class Boom(Exception):
            pass

        full = HopperEngine(block_file, _models(), **_KW).run()

        ckpt = tmp_path / "grid.ckpt.npz"

        def killer(slot, _doc):
            if slot == 6:
                raise Boom()

        with pytest.raises(Boom):
            HopperEngine(
                block_file, _models(), checkpoint_path=ckpt, on_slot=killer, **_KW
            ).run()
        assert ckpt.exists()

        resumed = HopperEngine(
            block_file, _models(), checkpoint_path=ckpt, **_KW
        ).run(resume=True)
        assert resumed.slots_run < 15  # picked up mid-schedule
        for a, b in zip(full.models, resumed.models):
            assert np.array_equal(a.parameter_vector(), b.parameter_vector())
        for hf, hr in zip(full.histories, resumed.histories):
            assert len(hf.records) == len(hr.records) == 3
            for ra, rb in zip(hf.records, hr.records):
                assert ra.train_loss == rb.train_loss


# ----------------------------------------------------------------------
# The SQL surface
# ----------------------------------------------------------------------


GRID_SQL = (
    "SELECT * FROM t TRAIN BY lr WITH max_epoch_num = 2, block_size = 8KB, "
    "buffer_fraction = 0.2, seed = 3, grid = (lr = 0.1 | 0.01, l2 = 0 | 0.0001)"
)


class TestGridTrain:
    @pytest.fixture()
    def db(self, dense_binary):
        db = MiniDB(page_bytes=1024)
        db.create_table("t", dense_binary)
        return db

    def test_grid_train_leaderboard(self, db):
        result = db.execute(GRID_SQL)
        assert isinstance(result, GridTrainResult)
        assert len(result.leaderboard) == 4
        assert [r["rank"] for r in result.leaderboard] == [0, 1, 2, 3]
        labels = {r["label"] for r in result.leaderboard}
        assert labels == {
            "lr=0.1, l2=0",
            "lr=0.1, l2=0.0001",
            "lr=0.01, l2=0",
            "lr=0.01, l2=0.0001",
        }
        # Every config's model is registered and addressable.
        for row in result.leaderboard:
            assert row["model_id"] == f"grid_{row['config']}"
            model = db.get_model(row["model_id"])
            assert model.parameter_vector().size > 0
        # The winner is the returned model.
        best = db.get_model(result.leaderboard[0]["model_id"])
        assert np.array_equal(best.parameter_vector(), result.model.parameter_vector())
        assert result.query.extra["hopper"]["schedule"]["n_models"] == 4
        assert result.query.extra["grid"]["n_configs"] == 4

    def test_grid_config_bit_identical_to_solo_train(self, db, dense_binary):
        result = db.execute(GRID_SQL)
        for row in result.leaderboard:
            solo_db = MiniDB(page_bytes=1024)
            solo_db.create_table("t", dense_binary)
            lr, l2 = row["values"]["lr"], row["values"]["l2"]
            # workers pinned to the grid's P: the shard layout (hence the
            # tuple stream) depends on it, and bit-exactness is per-stream.
            solo = solo_db.execute(
                "SELECT * FROM t TRAIN BY lr WITH max_epoch_num = 2, "
                "block_size = 8KB, buffer_fraction = 0.2, seed = 3, "
                f"workers = 4, grid = (lr = {lr}, l2 = {l2})"
            )
            assert np.array_equal(
                db.get_model(row["model_id"]).parameter_vector(),
                solo.model.parameter_vector(),
            )

    def test_grid_rejects_where(self, db):
        query = parse_query(GRID_SQL)
        query.where = parse_query(
            "SELECT * FROM t WHERE f0 >= 0 TRAIN BY lr WITH max_epoch_num = 1"
        ).where
        with pytest.raises(Exception, match="grid"):
            db.train(query)

    def test_explain_shows_hop_schedule(self, db):
        plan = db.explain(parse_query(GRID_SQL))
        assert "ModelHopper" in plan
        assert "4 models x 4 shard workers" in plan
        assert "slot   0" in plan
