"""Tests for MultiWorkerLoader and the EVALUATE BY query."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MultiWorkerLoader
from repro.data import make_binary_dense, make_regression
from repro.db import EvaluateQuery, MiniDB, UnknownModelError, parse_query
from repro.ml import ExponentialDecay, LogisticRegression
from repro.ml.streaming import train_streaming
from repro.storage import write_block_file


@pytest.fixture()
def block_file(tmp_path, dense_binary):
    path = tmp_path / "mw.blocks"
    write_block_file(dense_binary, path, tuples_per_block=30)
    return path


class TestMultiWorkerLoader:
    def test_covers_dataset_once(self, block_file, dense_binary):
        with MultiWorkerLoader(block_file, 3, 2, batch_size=32, seed=0) as loader:
            ids = [int(i) for batch in loader for i in batch.tuple_ids]
        assert sorted(ids) == list(range(dense_binary.n_tuples))

    def test_round_robin_interleaves_workers(self, block_file):
        with MultiWorkerLoader(block_file, 2, 2, batch_size=32, seed=0) as loader:
            batches = list(loader)
        # First two batches come from different workers: they draw from
        # disjoint block slices, so their tuple-id ranges cannot coincide.
        assert set(batches[0].tuple_ids.tolist()).isdisjoint(batches[1].tuple_ids.tolist())

    def test_set_epoch_changes_order(self, block_file):
        with MultiWorkerLoader(block_file, 2, 2, batch_size=32, seed=0) as loader:
            first = [int(i) for b in loader for i in b.tuple_ids]
            loader.set_epoch(1)
            second = [int(i) for b in loader for i in b.tuple_ids]
        assert first != second
        assert sorted(first) == sorted(second)

    def test_trains_a_model(self, block_file, dense_binary):
        model = LogisticRegression(dense_binary.n_features)
        with MultiWorkerLoader(block_file, 2, 2, batch_size=32, seed=0) as loader:

            def factory(epoch: int):
                loader.set_epoch(epoch)
                return loader

            history = train_streaming(
                model, factory, epochs=5,
                schedule=ExponentialDecay(0.5), test=dense_binary,
            )
        assert history.final.test_score > 0.85

    def test_validation(self, block_file):
        with pytest.raises(ValueError):
            MultiWorkerLoader(block_file, 0, 2, batch_size=8)
        with pytest.raises(ValueError):
            MultiWorkerLoader(block_file, 2, 2, batch_size=0)

    def test_n_properties(self, block_file, dense_binary):
        with MultiWorkerLoader(block_file, 4, 1, batch_size=16) as loader:
            assert loader.n_workers == 4
            assert loader.n_tuples == dense_binary.n_tuples


class TestEvaluateQuery:
    def test_parse(self):
        query = parse_query("SELECT * FROM t EVALUATE BY model_2")
        assert isinstance(query, EvaluateQuery)
        assert query.model_id == "model_2"

    def test_accuracy_metric(self):
        ds = make_binary_dense(400, 6, separation=2.5, seed=0)
        db = MiniDB(page_bytes=1024)
        db.create_table("t", ds)
        result = db.execute(
            "SELECT * FROM t TRAIN BY lr WITH max_epoch_num = 3, block_size = 4KB"
        )
        report = db.execute(f"SELECT * FROM t EVALUATE BY {result.model_id}")
        assert report["metric"] == "accuracy"
        assert report["value"] > 0.9
        assert report["n_tuples"] == 400

    def test_r2_metric_for_regression(self):
        ds = make_regression(400, 5, noise=0.1, seed=0)
        db = MiniDB(page_bytes=1024)
        db.create_table("r", ds)
        result = db.execute(
            "SELECT * FROM r TRAIN BY linreg WITH max_epoch_num = 5, "
            "learning_rate = 0.05, block_size = 4KB"
        )
        report = db.execute(f"SELECT * FROM r EVALUATE BY {result.model_id}")
        assert report["metric"] == "r2"
        assert report["value"] > 0.8

    def test_unknown_model(self):
        ds = make_binary_dense(50, 4, seed=0)
        db = MiniDB(page_bytes=1024)
        db.create_table("t", ds)
        with pytest.raises(UnknownModelError):
            db.execute("SELECT * FROM t EVALUATE BY model_404")

    def test_evaluate_on_second_table(self):
        full = make_binary_dense(600, 6, separation=2.5, seed=0)
        train, holdout = full.split(0.7, seed=1)
        db = MiniDB(page_bytes=1024)
        db.create_table("train", train)
        db.create_table("holdout", holdout)
        result = db.execute(
            "SELECT * FROM train TRAIN BY lr WITH max_epoch_num = 3, block_size = 4KB"
        )
        report = db.execute(f"SELECT * FROM holdout EVALUATE BY {result.model_id}")
        assert report["table"] == "holdout"
        assert report["value"] > 0.85
