"""Composite WHERE planning: costed access paths and the supported shape.

``plan_where_access`` enumerates scan / per-index probe / multi-index
intersection for an AND-of-ranges predicate, charges each by the pages its
candidate set touches, and resolves positions through the cheapest — every
path must return the *same* positions, only the charged I/O differs.  A
``!=`` term has no range form and now fails loudly with
:class:`UnsupportedPredicateError` instead of silently scanning.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import make_binary_dense
from repro.db import MiniDB, parse_query
from repro.db.catalog import Catalog
from repro.db.errors import UnsupportedPredicateError
from repro.db.query import CreateIndexQuery, parse_predicate
from repro.db.where import (
    check_supported_shape,
    plan_where_access,
    qualifying_positions,
)
from repro.storage import SSD


@pytest.fixture(scope="module")
def banded():
    """f0 ascending and f1 descending with position, so ``f0 >= a AND
    f1 >= b`` is a narrow contiguous band while each single-column range
    covers about half the table — the shape where the intersection path
    beats both single probes and the scan."""
    dataset = make_binary_dense(800, 4, seed=0)
    dataset.X[:, 0] = np.linspace(0.0, 1.0, 800)
    dataset.X[:, 1] = np.linspace(1.0, 0.0, 800)
    return dataset


def _db(dataset, *indexes):
    db = MiniDB(page_bytes=1024)
    db.create_table("t", dataset)
    for column in indexes:
        db.create_index(CreateIndexQuery(name=f"ix_{column}", table="t", column=column))
    return db


BAND_PRED = "f0 >= 0.4 AND f1 >= 0.5"  # positions [320, 400]: one tight band


class TestPlanWhereAccess:
    def test_all_paths_enumerated_and_costed(self, banded):
        db = _db(banded, "f0", "f1")
        table = db.catalog.get("t")
        predicate = parse_predicate(BAND_PRED)
        positions, index, doc = plan_where_access(table, predicate, SSD)
        assert set(doc["paths"]) == {"scan", "index:ix_f0", "index:ix_f1", "intersect"}
        for path in doc["paths"].values():
            assert path["est_s"] >= 0.0
        assert doc["paths"]["intersect"]["indexes"] == ["ix_f0", "ix_f1"]
        # The intersection's candidate set is the band, far smaller than
        # either single-column range.
        n_inter = doc["paths"]["intersect"]["n_candidates"]
        assert n_inter < doc["paths"]["index:ix_f0"]["n_candidates"]
        assert n_inter < doc["paths"]["index:ix_f1"]["n_candidates"]

    def test_intersect_wins_on_the_band(self, banded):
        db = _db(banded, "f0", "f1")
        table = db.catalog.get("t")
        positions, index, doc = plan_where_access(
            table, parse_predicate(BAND_PRED), SSD
        )
        assert doc["access"] == "intersect"
        assert index is None  # intersect path carries no single probe index
        costs = doc["paths"]
        assert costs["intersect"]["est_s"] < costs["scan"]["est_s"]
        assert costs["intersect"]["est_s"] < costs["index:ix_f0"]["est_s"]

    def test_every_path_returns_identical_positions(self, banded):
        """The access choice changes charged I/O, never the answer."""
        predicate = parse_predicate(BAND_PRED)
        expected = None
        for indexes in ((), ("f0",), ("f1",), ("f0", "f1")):
            table = _db(banded, *indexes).catalog.get("t")
            positions, _index, _doc = plan_where_access(table, predicate, SSD)
            reference = qualifying_positions(table, predicate)
            assert np.array_equal(positions, reference)
            if expected is None:
                expected = np.asarray(positions)
            else:
                assert np.array_equal(positions, expected)

    def test_no_index_falls_back_to_scan(self, banded):
        table = _db(banded).catalog.get("t")
        _positions, index, doc = plan_where_access(
            table, parse_predicate(BAND_PRED), SSD
        )
        assert doc["access"] == "scan"
        assert index is None
        assert set(doc["paths"]) == {"scan"}


class TestUnsupportedShape:
    def test_not_equal_raises_typed_error(self):
        with pytest.raises(UnsupportedPredicateError, match="range form"):
            check_supported_shape(parse_predicate("f0 != 0.5"))

    def test_not_equal_in_conjunction_raises(self):
        with pytest.raises(UnsupportedPredicateError):
            check_supported_shape(parse_predicate("f0 >= 0 AND f1 != 1"))

    def test_train_where_rejects_not_equal(self, banded):
        db = _db(banded, "f0")
        query = parse_query(
            "SELECT * FROM t WHERE f0 != 0.5 TRAIN BY lr WITH max_epoch_num = 1, "
            "block_size = 8KB"
        )
        with pytest.raises(UnsupportedPredicateError):
            db.train(query)

    def test_ranges_still_accepted(self):
        check_supported_shape(parse_predicate("f0 >= 0 AND f0 < 1 AND label = 1"))


class TestEngineIntegration:
    def test_access_doc_lands_in_where_extra(self, banded):
        db = _db(banded, "f0", "f1")
        result = db.execute(
            f"SELECT * FROM t WHERE {BAND_PRED} TRAIN BY lr "
            "WITH max_epoch_num = 1, block_size = 8KB, seed = 2"
        )
        where_doc = result.query.extra["where"]
        assert where_doc["access"] == "intersect"
        assert "paths" in where_doc and "intersect" in where_doc["paths"]
        # plan_where_access settled candidate enumeration, so the physical
        # fetch positions straight into the qualifying pages.
        assert where_doc["fetch"] == "index"

    def test_explain_renders_costed_path_table(self, banded):
        db = _db(banded, "f0", "f1")
        plan = db.explain(
            parse_query(
                f"SELECT * FROM t WHERE {BAND_PRED} TRAIN BY lr "
                "WITH max_epoch_num = 1, block_size = 8KB"
            )
        )
        assert "intersect" in plan
        assert "=> " in plan  # the chosen-path marker
        for name in ("scan", "index:ix_f0", "index:ix_f1"):
            assert name in plan
