"""Tests for the benchmark harness utilities (reporting + runners)."""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    format_curve,
    format_table,
    history_row,
    run_convergence_sweep,
    save_records,
)
from repro.data import clustered_by_label, make_binary_dense
from repro.ml import LogisticRegression


class TestFormatTable:
    def test_basic_alignment(self):
        rows = [{"a": 1, "b": "xx"}, {"a": 22, "b": "y"}]
        text = format_table(rows, title="t")
        lines = text.splitlines()
        assert lines[0] == "t"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5
        # All data lines have equal width.
        assert len(set(len(line) for line in lines[2:])) <= 2

    def test_column_selection_and_missing(self):
        rows = [{"a": 1}]
        text = format_table(rows, columns=["a", "z"])
        assert "z" in text

    def test_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_float_formatting(self):
        rows = [{"v": 0.123456}, {"v": 1.2e-7}, {"v": 12345.6}, {"v": 0.0}]
        text = format_table(rows)
        assert "0.1235" in text
        assert "1.200e-07" in text
        assert "1.235e+04" in text

    def test_curve_rendering(self):
        text = format_curve("name", [0.1, 0.5, 0.9])
        assert text.startswith("name")
        assert "0.9000" in text

    def test_curve_empty(self):
        assert "(empty)" in format_curve("x", [])

    def test_curve_constant_series(self):
        # Zero span must not divide by zero.
        text = format_curve("flat", [0.5, 0.5, 0.5])
        assert "0.5000" in text


class TestSaveRecords:
    def test_creates_directories_and_valid_json(self, tmp_path):
        target = tmp_path / "nested" / "out.json"
        path = save_records([{"x": 1}], target)
        assert path.exists()
        assert json.loads(path.read_text()) == [{"x": 1}]

    def test_non_serialisable_values_stringified(self, tmp_path):
        class Odd:
            def __str__(self):
                return "odd!"

        path = save_records([{"x": Odd()}], tmp_path / "o.json")
        assert json.loads(path.read_text()) == [{"x": "odd!"}]


class TestRunners:
    @pytest.fixture(scope="class")
    def sweep(self):
        ds = make_binary_dense(400, 6, separation=1.5, seed=0)
        train, test = ds.split(0.8, seed=1)
        return run_convergence_sweep(
            clustered_by_label(train, seed=0),
            test,
            lambda: LogisticRegression(6),
            ("shuffle_once", "no_shuffle"),
            epochs=4,
            learning_rate=0.1,
            tuples_per_block=20,
            seed=0,
        )

    def test_histories_per_strategy(self, sweep):
        assert set(sweep.histories) == {"shuffle_once", "no_shuffle"}
        assert all(h.epochs == 4 for h in sweep.histories.values())

    def test_final_and_converged_scores(self, sweep):
        finals = sweep.final_scores()
        converged = sweep.converged_scores(tail=2)
        assert set(finals) == set(converged)
        assert all(0.0 <= v <= 1.0 for v in finals.values())

    def test_rows_shape(self, sweep):
        rows = sweep.rows()
        assert len(rows) == 2
        assert {"dataset", "model", "strategy", "epochs", "test_acc"} <= set(rows[0])

    def test_history_row_without_test(self):
        from repro.ml.trainer import ConvergenceHistory, EpochRecord

        history = ConvergenceHistory("s", "m")
        history.append(EpochRecord(0, 0.1, 1.0, 0.5, None, 10))
        row = history_row("d", "m", "s", history)
        assert row["test_acc"] is None

    def test_fresh_model_per_strategy(self, sweep):
        # Each strategy trains its own model from the same zero init: both
        # improve on the log(2) starting loss, and their loss trajectories
        # differ (they saw different orders).
        import math

        losses = {name: h.train_losses for name, h in sweep.histories.items()}
        assert all(seq[-1] < math.log(2) for seq in losses.values())
        assert losses["shuffle_once"] != losses["no_shuffle"]


class TestParallelBench:
    def test_quick_sweep_document(self):
        from repro.bench import parallel_bench_rows, run_parallel_bench

        doc = run_parallel_bench(
            quick=True, seed=0, workers_list=(1, 2), modes=("epoch",)
        )
        assert doc["bench"] == "parallel-scaling"
        assert doc["host_cores"] >= 1
        assert len(doc["records"]) == 2
        for rec in doc["records"]:
            assert rec["measured_epoch_wall_s"] > 0
            assert rec["speedup_source"] in ("measured", "modeled")
            # The modeled wall never claims better than perfect scaling.
            base = doc["records"][0]["measured_epoch_wall_s"]
            assert rec["modeled_epoch_wall_s"] >= base / rec["workers"] - 1e-9
        one, two = doc["records"]
        assert one["workers"] == 1 and one["epoch_speedup_vs_1"] == 1.0
        assert two["epoch_speedup_vs_1"] > 0
        summary = doc["summary"]
        assert summary["headline_workers"] == 2
        assert summary["epoch_speedup_at_max_workers"] == two["epoch_speedup_vs_1"]
        rows = parallel_bench_rows(doc)
        assert len(rows) == 2 and "speedup" in rows[0]
