"""Cross-process transport of the observability counters.

The multi-process engine (:mod:`repro.parallel`) pickles per-worker
``LoaderStats``/``StorageStats`` back to the coordinator and folds them
into one report; these tests pin the pickle and merge semantics the engine
relies on — including the details that are easy to regress: locks are not
transported (a fresh one is created on load), ``max_queue_depth`` merges by
max rather than sum, and derived properties survive the round-trip.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.stats import LoaderStats, StorageStats
from repro.faults.plan import FaultPlan, FaultSpec


def loaded_loader(name: str = "w") -> LoaderStats:
    s = LoaderStats(name)
    s.record_put(depth_after=3, stalled_s=0.5)
    s.record_put(depth_after=1, stalled_s=0.25)
    s.record_get(waited_s=0.125)
    s.record_buffer_filled(40)
    s.record_buffer_drained(40)
    s.record_cancelled_put(stalled_s=0.0625)
    s.record_thread_started()
    s.record_thread_joined()
    return s


def loaded_storage(name: str = "s") -> StorageStats:
    s = StorageStats(name)
    s.record_attempt()
    s.record_ok()
    s.record_fault(ValueError("transient-ish"))
    s.record_retry()
    s.record_latency(0.5)
    s.record_crash()
    s.record_cache_invalidation()
    return s


class TestPickle:
    def test_loader_stats_roundtrip(self):
        s = loaded_loader()
        clone = pickle.loads(pickle.dumps(s))
        assert clone.as_dict() == s.as_dict()
        assert clone._lock is not s._lock
        # the clone keeps working (its lock is real)
        clone.record_put(depth_after=9, stalled_s=0.0)
        assert clone.items_produced == s.items_produced + 1
        assert clone.max_queue_depth == 9

    def test_storage_stats_roundtrip(self):
        s = loaded_storage()
        clone = pickle.loads(pickle.dumps(s))
        assert clone.as_dict() == s.as_dict()
        assert clone.faults_injected == s.faults_injected
        clone.record_retry()
        assert clone.retries == s.retries + 1

    def test_fault_plan_roundtrip_preserves_schedule(self):
        plan = FaultPlan(
            seed=3,
            specs=[FaultSpec(kind="transient", unit="page", target=2, times=2)],
            p_transient=0.4,
            p_torn=0.2,
            max_failures=3,
            crash_at_tuple=100,
        )
        # prime the memo + read-call counters so latch state transports
        plan.decide("block", 5, 1)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.describe() == plan.describe()
        for target in range(16):
            for attempt in (1, 2, 3):
                assert clone.decide("block", target, attempt) == plan.decide(
                    "block", target, attempt
                )
        assert clone.tuples_before_crash(40) == 60

    def test_fault_plan_crash_latch_transports(self):
        plan = FaultPlan(seed=0, crash_at_tuple=5)
        with pytest.raises(Exception):
            plan.fire_crash()
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.tuples_before_crash(0) is None  # fired latch survived


class TestMerge:
    def test_sum_and_max_fields(self):
        a, b = loaded_loader("a"), loaded_loader("b")
        b.record_put(depth_after=7, stalled_s=1.0)  # deeper queue than a
        total = a + b
        assert total.items_produced == a.items_produced + b.items_produced
        assert total.producer_stall_s == pytest.approx(
            a.producer_stall_s + b.producer_stall_s
        )
        assert total.max_queue_depth == 7  # max, not sum
        assert total.name == "a+b"

    def test_add_preserves_shared_name(self):
        total = loaded_loader("w") + loaded_loader("w")
        assert total.name == "w"

    def test_add_leaves_operands_untouched(self):
        a, b = loaded_loader("a"), loaded_loader("b")
        before_a, before_b = a.as_dict(), b.as_dict()
        a + b
        assert a.as_dict() == before_a
        assert b.as_dict() == before_b

    def test_iadd_merges_in_place(self):
        a, b = loaded_loader("a"), loaded_loader("b")
        want = a.items_consumed + b.items_consumed
        a += b
        assert a.items_consumed == want

    def test_merge_storage(self):
        a, b = loaded_storage("a"), loaded_storage("b")
        total = a + b
        assert total.read_attempts == 2
        assert total.faults_injected == a.faults_injected + b.faults_injected
        assert total.latency_injected_s == pytest.approx(1.0)

    def test_merge_rejects_cross_type(self):
        with pytest.raises(TypeError):
            LoaderStats("a").merge(loaded_storage())
        with pytest.raises(TypeError):
            LoaderStats("a") + loaded_storage()  # noqa: B018 - operator raises

    def test_merge_many_workers_matches_manual_total(self):
        workers = [loaded_loader(f"w{i}") for i in range(4)]
        total = LoaderStats("all")
        for w in workers:
            total.merge(pickle.loads(pickle.dumps(w)))  # as the engine does
        assert total.items_produced == sum(w.items_produced for w in workers)
        assert total.tuples_buffered == sum(w.tuples_buffered for w in workers)
        assert total.overlap_fraction == pytest.approx(workers[0].overlap_fraction)
