"""Tests for optimisers, learning-rate schedules, and metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml import (
    SGD,
    Adam,
    ConstantLR,
    ExponentialDecay,
    InverseEpochDecay,
    LinearRegression,
    StepDecay,
    accuracy,
    r_squared,
    top_k_accuracy,
)


class _Quadratic:
    """A tiny quadratic 'model': L(w) = 0.5 * ||w - target||^2."""

    def __init__(self, target):
        self.target = np.asarray(target, dtype=float)
        self._params = {"w": np.zeros_like(self.target)}

    @property
    def params(self):
        return self._params

    def grad(self):
        return {"w": self._params["w"] - self.target}


class TestSGD:
    def test_plain_step(self):
        model = _Quadratic([1.0, -1.0])
        opt = SGD(model)
        opt.step(model.grad(), lr=0.5)
        np.testing.assert_allclose(model.params["w"], [0.5, -0.5])

    def test_momentum_accumulates(self):
        model = _Quadratic([1.0])
        opt = SGD(model, momentum=0.9)
        opt.step({"w": np.array([-1.0])}, lr=0.1)
        opt.step({"w": np.array([-1.0])}, lr=0.1)
        # Second step includes momentum: v = 0.9*(-1) + (-1) = -1.9.
        assert model.params["w"][0] == pytest.approx(0.1 + 0.19)

    def test_momentum_validation(self):
        with pytest.raises(ValueError):
            SGD(_Quadratic([1.0]), momentum=1.0)

    def test_converges_on_quadratic(self):
        model = _Quadratic([3.0, -2.0, 0.5])
        opt = SGD(model, momentum=0.5)
        for _ in range(200):
            opt.step(model.grad(), lr=0.1)
        np.testing.assert_allclose(model.params["w"], model.target, atol=1e-6)


class TestAdam:
    def test_first_step_size_is_lr(self):
        model = _Quadratic([10.0])
        opt = Adam(model)
        opt.step(model.grad(), lr=0.01)
        # Bias-corrected Adam's first step is ~lr regardless of gradient scale.
        assert abs(model.params["w"][0]) == pytest.approx(0.01, rel=1e-3)

    def test_converges_on_quadratic(self):
        model = _Quadratic([1.0, 2.0])
        opt = Adam(model)
        for _ in range(2000):
            opt.step(model.grad(), lr=0.05)
        np.testing.assert_allclose(model.params["w"], model.target, atol=1e-3)

    def test_state_is_per_parameter(self):
        model = LinearRegression(3)
        opt = Adam(model)
        opt.step({"w": np.ones(3), "b": np.ones(1)}, lr=0.1)
        assert set(opt._m) == {"w", "b"}


class TestSchedules:
    def test_constant(self):
        s = ConstantLR(0.1)
        assert s(0) == s(100) == 0.1

    def test_exponential(self):
        s = ExponentialDecay(0.1, decay=0.5)
        assert s(0) == 0.1
        assert s(2) == pytest.approx(0.025)

    def test_step_decay(self):
        s = StepDecay(1.0, step=30, factor=0.1)
        assert s(29) == 1.0
        assert s(30) == pytest.approx(0.1)
        assert s(60) == pytest.approx(0.01)

    def test_inverse_epoch(self):
        s = InverseEpochDecay(scale=6.0, offset=2.0)
        assert s(0) == 3.0
        assert s(4) == 1.0

    def test_inverse_epoch_offset_validation(self):
        with pytest.raises(ValueError):
            InverseEpochDecay(scale=1.0, offset=0.5)


class TestMetrics:
    def test_accuracy(self):
        assert accuracy(np.array([1, -1, 1]), np.array([1, 1, 1])) == pytest.approx(2 / 3)

    def test_accuracy_validation(self):
        with pytest.raises(ValueError):
            accuracy(np.array([1]), np.array([1, 2]))
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))

    def test_top_k(self):
        logits = np.array([[0.1, 0.9, 0.0], [0.8, 0.1, 0.1]])
        labels = np.array([2, 0])
        assert top_k_accuracy(logits, labels, k=1) == pytest.approx(0.5)
        assert top_k_accuracy(logits, labels, k=2) == pytest.approx(0.5)
        assert top_k_accuracy(logits, labels, k=3) == pytest.approx(1.0)

    def test_top_k_validation(self):
        with pytest.raises(ValueError):
            top_k_accuracy(np.zeros((2, 3)), np.zeros(2), k=4)
        with pytest.raises(ValueError):
            top_k_accuracy(np.zeros(3), np.zeros(3), k=1)

    def test_r_squared_perfect(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r_squared(y, y) == pytest.approx(1.0)

    def test_r_squared_mean_predictor(self):
        y = np.array([1.0, 2.0, 3.0])
        pred = np.full(3, 2.0)
        assert r_squared(pred, y) == pytest.approx(0.0)

    def test_r_squared_constant_target(self):
        y = np.ones(3)
        assert r_squared(np.ones(3), y) == 1.0
        assert r_squared(np.zeros(3), y) == 0.0
