"""Edge-case tests for the comparator systems and the timing context."""

from __future__ import annotations

import pytest

from repro.core import CorgiPileShuffle
from repro.data import make_binary_dense
from repro.db import ComputeProfile, RuntimeContext, Timeline, run_framework
from repro.db.engine import ENGINE_PROFILE
from repro.ml import LogisticRegression, MLPClassifier
from repro.storage import SSD, SSD_SCALED


class TestRuntimeContext:
    def _ctx(self, double=True):
        return RuntimeContext(
            device=SSD, compute=ENGINE_PROFILE, double_buffer=double,
            values_per_tuple=10.0,
        )

    def test_fill_pairing(self):
        ctx = self._ctx()
        ctx.charge_device_read(1000, random=True)
        ctx.end_fill(50)
        assert ctx.tuples_processed == 50
        assert ctx.total_io_s > 0
        assert ctx.total_compute_s > 0

    def test_trailing_io_without_consumer_still_counted(self):
        ctx = self._ctx()
        ctx.charge_device_read(10_000, random=False)
        wall = ctx.epoch_wall_time()
        assert wall > 0

    def test_epoch_wall_resets_fills(self):
        ctx = self._ctx()
        ctx.charge_device_read(1000, random=True)
        ctx.end_fill(10)
        first = ctx.epoch_wall_time()
        second = ctx.epoch_wall_time()
        assert first > 0 and second == 0.0

    def test_single_buffer_serialises(self):
        walls = {}
        for double in (True, False):
            ctx = self._ctx(double)
            for _ in range(4):
                ctx.charge_device_read(100_000, random=True)
                ctx.end_fill(1000)
            walls[double] = ctx.epoch_wall_time()
        assert walls[True] <= walls[False]

    def test_compute_profile_decompression(self):
        profile = ComputeProfile("p", 1e-6, 1e-9, decompress_per_byte_s=1e-8)
        plain = profile.tuple_compute_s(10)
        packed = profile.tuple_compute_s(10, compressed_bytes=200)
        assert packed == pytest.approx(plain + 2e-6)


class TestTimelineEdges:
    def test_speedup_none_when_target_unreached(self):
        a = Timeline(system="a")
        b = Timeline(system="b")
        a.append(1.0, 0, 0.5, 0.6, 0.6)
        b.append(1.0, 0, 0.5, 0.6, 0.9)
        assert a.speedup_over(b, 0.8) is None  # a never reaches it
        assert b.speedup_over(a, 0.8) is None  # a never reaches it either

    def test_empty_timeline(self):
        t = Timeline(system="x", setup_s=2.0)
        assert t.total_time_s == 2.0
        assert t.final_test_score is None
        assert t.time_to_reach(0.5) is None


class TestRunFrameworkVariants:
    @pytest.fixture(scope="class")
    def problem(self):
        ds = make_binary_dense(600, 8, separation=1.5, seed=0)
        return ds.split(0.8, seed=1)

    def test_accepts_strategy_object(self, problem):
        train, test = problem
        cp = CorgiPileShuffle(train.layout(20), 3, seed=0)
        run = run_framework(
            train, test, LogisticRegression(8), cp, SSD_SCALED, epochs=2,
        )
        assert run.timeline.system.endswith("corgipile")

    def test_adam_path(self, problem):
        train, test = problem
        run = run_framework(
            train, test, LogisticRegression(8), "shuffle_once", SSD_SCALED,
            epochs=4, batch_size=16, use_adam=True, learning_rate=0.05,
        )
        assert run.history.final.test_score > 0.8

    def test_shuffle_once_epoch_equivalents_override(self, problem):
        train, test = problem
        run = run_framework(
            train, test, LogisticRegression(8), "shuffle_once", SSD_SCALED,
            epochs=2, shuffle_once_epoch_equivalents=23.0,
        )
        assert run.timeline.setup_s == pytest.approx(23.0 * run.per_epoch_s)

    def test_epoch_equivalents_only_applies_to_shuffle_once(self, problem):
        train, test = problem
        run = run_framework(
            train, test, LogisticRegression(8), "corgipile", SSD_SCALED,
            epochs=2, tuples_per_block=20, shuffle_once_epoch_equivalents=23.0,
        )
        assert run.timeline.setup_s == 0.0

    def test_multiclass_labels_cast_for_mlp(self):
        from repro.data import make_multiclass_dense

        ds = make_multiclass_dense(300, 8, 3, separation=3.0, seed=0)
        train, test = ds.split(0.8, seed=1)
        run = run_framework(
            train, test, MLPClassifier(8, 12, 3, seed=0), "shuffle_once",
            SSD_SCALED, epochs=5, batch_size=16, learning_rate=0.2,
        )
        assert run.history.final.test_score > 0.8
