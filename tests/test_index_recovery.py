"""Index durability: faulty node reads, SIGKILL mid-DML, CRC-clean recovery."""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.faults import FaultPlan
from repro.faults.store import FaultyIndexReader
from repro.faults.plan import FaultSpec
from repro.obs import StorageMetrics
from repro.storage.index import BPlusTree, IndexFileReader, save_index
from repro.storage.retry import ReadExhaustedError, RetryPolicy
from repro.storage.rid import RID

from tests import _dml_workload as workload

REPO_ROOT = Path(__file__).resolve().parent.parent


def _saved_index(tmp_path, n: int = 300):
    pairs = [(float(i % 40), RID(i // 8, i % 8)) for i in range(n)]
    tree = BPlusTree.bulk_load(pairs, order=8)
    return save_index(tree, "f0", tmp_path / "t.ix.idx"), sorted(pairs)


class TestFaultyIndexReader:
    def test_transient_and_torn_reads_absorbed(self, tmp_path):
        path, pairs = _saved_index(tmp_path)
        stats = StorageMetrics("ix")
        plan = FaultPlan(seed=1, p_transient=0.3, p_torn=0.4, max_failures=2)
        reader = FaultyIndexReader(path, plan, storage_stats=stats)
        assert list(reader.items()) == pairs
        assert stats.faults_injected > 0
        assert stats.retries > 0

    def test_pinned_torn_leaf_retries_clean(self, tmp_path):
        path, pairs = _saved_index(tmp_path)
        header_nodes = IndexFileReader(path).n_nodes
        # Tear the last node (a leaf) once; the retry must read it clean.
        plan = FaultPlan(
            seed=0,
            specs=[FaultSpec(kind="torn", unit="index_node", target=header_nodes - 1)],
        )
        reader = FaultyIndexReader(path, plan)
        assert list(reader.items()) == pairs

    def test_persistent_tear_exhausts_retries(self, tmp_path):
        path, _pairs = _saved_index(tmp_path)
        plan = FaultPlan(
            seed=0,
            specs=[FaultSpec(kind="torn", unit="index_node", target=0, times=10)],
        )
        # A retry budget smaller than the tear window must give up loudly.
        reader = FaultyIndexReader(path, plan, retry=RetryPolicy(max_attempts=3))
        with pytest.raises(ReadExhaustedError):
            list(reader.items())

    def test_faulty_validate_still_passes(self, tmp_path):
        path, _pairs = _saved_index(tmp_path)
        plan = FaultPlan(seed=3, p_torn=0.5, max_failures=1)
        report = FaultyIndexReader(path, plan).validate()
        assert report["entries"] == 300


class TestSigkillRecovery:
    def test_sigkill_mid_dml_leaves_crc_clean_consistent_index(self, tmp_path):
        """Kill -9 a DML stream; the surviving ``.idx`` must validate and
        equal the index state after *some* completed prefix of the ops."""
        n_ops = 5000
        child = subprocess.Popen(
            [sys.executable, str(REPO_ROOT / "tests" / "_dml_workload.py"),
             str(tmp_path), str(n_ops)],
            env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
        )
        try:
            deadline = time.time() + 60
            ready = tmp_path / "ready"
            while not ready.exists():
                if child.poll() is not None:
                    raise AssertionError(
                        f"child exited early: {child.stderr.read().decode()}"
                    )
                if time.time() > deadline:
                    raise AssertionError("child never reached the ready mark")
                time.sleep(0.01)
            time.sleep(0.05)  # let it get properly mid-stream
            child.send_signal(signal.SIGKILL)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:
                child.kill()
                child.wait(timeout=30)
        assert not (tmp_path / "done").exists(), "child finished before the kill"

        idx_path = tmp_path / "t.ix.idx"
        assert idx_path.exists()
        # 1. CRC-clean: durable_write's old-or-new guarantee means the file
        #    always validates, kill or no kill.
        reader = IndexFileReader(idx_path)
        reader.validate()
        file_entries = set(reader.items())

        # 2. Consistent: replay the deterministic op stream; the persisted
        #    tree must equal the in-memory index after some prefix at or
        #    past the ready mark (each op persists before the next starts).
        _catalog, info = workload.make_table(None)
        tree = info.indexes["ix"].tree

        class _Matched(Exception):
            pass

        matched = -1
        if set(tree.items()) == file_entries:
            matched = 0

        def probe(completed: int) -> None:
            nonlocal matched
            if set(tree.items()) == file_entries:
                matched = completed
                raise _Matched

        if matched < 0:
            try:
                workload.apply_ops(info, n_ops, progress=probe)
            except _Matched:
                pass
        assert matched >= workload.READY_AT, (
            f"persisted index matches no replayed DML state "
            f"({len(file_entries)} entries on disk)"
        )
        # And the matched state is itself heap-consistent by construction:
        # rebuild the index from the file and check tree invariants.
        rebuilt = reader.to_tree()
        rebuilt.check_invariants()
        assert set(rebuilt.items()) == file_entries
