"""Tests for model save/load."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml import (
    LinearRegression,
    LinearSVM,
    LogisticRegression,
    MLPClassifier,
    SoftmaxRegression,
    load_model,
    model_from_bytes,
    model_to_bytes,
    save_model,
)


def _models():
    lr = LogisticRegression(5, l2=0.01)
    lr.params["w"][:] = np.arange(5, dtype=float)
    lr.params["b"][:] = 0.5
    svm = LinearSVM(3)
    svm.params["w"][:] = [1.0, -2.0, 0.25]
    linreg = LinearRegression(4, fit_intercept=False)
    softmax = SoftmaxRegression(4, 3, l2=0.1)
    softmax.params["W"][:] = np.random.default_rng(0).standard_normal((4, 3))
    mlp = MLPClassifier(6, 4, 3, seed=2)
    return [lr, svm, linreg, softmax, mlp]


class TestRoundtrip:
    @pytest.mark.parametrize("model", _models(), ids=lambda m: type(m).__name__)
    def test_bytes_roundtrip_preserves_params(self, model):
        clone = model_from_bytes(model_to_bytes(model))
        assert type(clone) is type(model)
        for key, value in model.params.items():
            np.testing.assert_allclose(clone.params[key], value)

    def test_roundtrip_preserves_predictions(self, dense_binary):
        model = LogisticRegression(dense_binary.n_features)
        model.params["w"][:] = np.random.default_rng(1).standard_normal(
            dense_binary.n_features
        )
        clone = model_from_bytes(model_to_bytes(model))
        np.testing.assert_array_equal(
            clone.predict(dense_binary.X), model.predict(dense_binary.X)
        )

    def test_config_preserved(self):
        model = LogisticRegression(5, l2=0.25, fit_intercept=False)
        clone = model_from_bytes(model_to_bytes(model))
        assert clone.l2 == 0.25
        assert clone.fit_intercept is False

    def test_file_roundtrip(self, tmp_path):
        model = LinearSVM(4)
        model.params["w"][:] = [1, 2, 3, 4]
        path = save_model(model, tmp_path / "model.npz")
        clone = load_model(path)
        np.testing.assert_allclose(clone.w, model.w)

    def test_loaded_model_trainable(self, dense_binary):
        model = model_from_bytes(model_to_bytes(LogisticRegression(dense_binary.n_features)))
        before = model.loss(dense_binary.X, dense_binary.y)
        for i in range(100):
            model.step_example(dense_binary.X[i], float(dense_binary.y[i]), lr=0.1)
        assert model.loss(dense_binary.X, dense_binary.y) < before


class TestErrors:
    def test_unknown_model_type(self):
        class Weird:
            params = {"w": np.zeros(2)}

        with pytest.raises(TypeError):
            model_to_bytes(Weird())

    def test_corrupt_class_name(self):
        blob = model_to_bytes(LogisticRegression(3))
        tampered = blob.replace(b"LogisticRegression", b"QuantumRegression!")
        with pytest.raises(ValueError):
            model_from_bytes(tampered)
