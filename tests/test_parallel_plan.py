"""Shard-planner edge cases and simulation-equality guarantees.

The satellite checklist pins: ``n_blocks < n_workers``, uneven splits,
single-block tables, and — the load-bearing one — equality of the
concatenated executed tuple order with ``MultiProcessCorgiPile``'s
simulated stream for PN ∈ {1, 2, 4}.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.distributed import MultiProcessCorgiPile
from repro.core.stats import LoaderStats
from repro.data.dataset import BlockLayout
from repro.data.generators import make_binary_dense, make_binary_sparse
from repro.parallel import ShardFetcher, ShardPlanner
from repro.storage import write_block_file
from repro.storage.blockfile import BlockFileReader


@pytest.fixture()
def block_file(tmp_path):
    ds = make_binary_dense(200, 6, seed=0)
    path = tmp_path / "plan.blk"
    write_block_file(ds, path, tuples_per_block=20)
    return path, ds


class TestPlannerConstruction:
    def test_for_block_file_reads_layout(self, block_file):
        path, ds = block_file
        planner = ShardPlanner.for_block_file(path, n_workers=2, buffer_blocks=2, seed=7)
        assert planner.n_tuples == ds.n_tuples
        assert planner.tuples_per_block == 20
        assert planner.n_blocks == 10
        assert planner.describe()["seed"] == 7

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardPlanner(100, 10, n_workers=0, buffer_blocks=2)
        with pytest.raises(ValueError):
            ShardPlanner(100, 10, n_workers=2, buffer_blocks=0)
        planner = ShardPlanner(100, 10, n_workers=3, buffer_blocks=2)
        with pytest.raises(ValueError):
            planner.per_worker_batch(32)  # not divisible by 3
        with pytest.raises(ValueError):
            planner.per_worker_batch(0)

    def test_planner_is_picklable(self):
        import pickle

        planner = ShardPlanner(100, 10, n_workers=4, buffer_blocks=2, seed=3)
        clone = pickle.loads(pickle.dumps(planner))
        for w in range(4):
            assert np.array_equal(
                clone.worker_epoch_indices(1, w), planner.worker_epoch_indices(1, w)
            )


class TestEdgeCases:
    def test_fewer_blocks_than_workers(self):
        # 2 blocks over 4 workers: two shards are empty, nothing crashes,
        # and the non-empty shards cover the table exactly once.
        planner = ShardPlanner(40, 20, n_workers=4, buffer_blocks=1, seed=0)
        sizes = planner.shard_sizes(0)
        assert sorted(sizes) == [0, 0, 20, 20]
        all_indices = np.concatenate(
            [planner.worker_epoch_indices(0, w) for w in range(4)]
        )
        assert sorted(all_indices.tolist()) == list(range(40))
        assert planner.sync_steps(0, 8) == 0  # smallest shard is empty

    def test_uneven_split(self):
        # 7 blocks over 2 workers → 4 + 3 blocks; last block is short.
        planner = ShardPlanner(65, 10, n_workers=2, buffer_blocks=2, seed=1)
        assert planner.n_blocks == 7
        blocks = planner.worker_blocks(0)
        assert [len(b) for b in blocks] == [4, 3]
        assert sum(planner.shard_sizes(0)) == 65

    def test_single_block_table(self):
        planner = ShardPlanner(15, 20, n_workers=2, buffer_blocks=2, seed=0)
        assert planner.n_blocks == 1
        sizes = planner.shard_sizes(0)
        assert sorted(sizes) == [0, 15]
        covered = np.concatenate([planner.worker_epoch_indices(0, w) for w in range(2)])
        assert sorted(covered.tolist()) == list(range(15))

    def test_buffer_fills_group_sizes(self):
        planner = ShardPlanner(200, 20, n_workers=2, buffer_blocks=2, seed=0)
        fills = planner.worker_buffer_fills(0, 0)
        assert [len(g) for g, _ in fills] == [2, 2, 1]  # 5 blocks in groups of 2
        for group, indices in fills:
            expect = sum(planner.layout.block_size(int(b)) for b in group)
            assert indices.size == expect


class TestSimulationEquality:
    """The planner's streams ARE the MultiProcessCorgiPile simulation."""

    @pytest.mark.parametrize("pn", [1, 2, 4])
    def test_concatenated_order_matches_simulation(self, pn):
        planner = ShardPlanner(640, 20, n_workers=pn, buffer_blocks=2, seed=5)
        sim = MultiProcessCorgiPile(
            BlockLayout(640, 20), pn, buffer_blocks_per_worker=2, seed=5
        )
        for epoch in range(3):
            for w in range(pn):
                assert np.array_equal(
                    planner.worker_epoch_indices(epoch, w),
                    sim.worker_epoch_indices(epoch, w),
                )
            assert np.array_equal(
                planner.epoch_indices(epoch, 8 * pn), sim.epoch_indices(epoch, 8 * pn)
            )

    @pytest.mark.parametrize("pn", [1, 2, 4])
    def test_sync_steps_match_global_batches(self, pn):
        planner = ShardPlanner(500, 20, n_workers=pn, buffer_blocks=2, seed=2)
        gbs = 4 * pn
        for epoch in range(2):
            batches = list(planner.global_batches(epoch, gbs))
            assert planner.sync_steps(epoch, gbs) == len(batches)


class TestShardFetcher:
    """Executed data access reproduces the simulated visit order."""

    def test_fetch_fill_rows_follow_visit_order(self, block_file, tmp_path):
        path, ds = block_file
        planner = ShardPlanner.for_block_file(path, n_workers=2, buffer_blocks=2, seed=4)
        stats = LoaderStats("fetch")
        with BlockFileReader(path) as reader:
            fetcher = ShardFetcher(reader, planner.tuples_per_block, stats)
            for group, indices in planner.worker_buffer_fills(0, 1):
                X, y = fetcher.fetch_fill(group, indices)
                assert np.array_equal(y, ds.y[indices])
                assert np.allclose(X, ds.X[indices])
        assert stats.buffers_filled == len(planner.worker_buffer_fills(0, 1))
        assert stats.tuples_buffered == planner.shard_sizes(0)[1]

    def test_fetch_fill_sparse(self, tmp_path):
        ds = make_binary_sparse(120, 40, seed=3)
        path = tmp_path / "sparse.blk"
        write_block_file(ds, path, tuples_per_block=30)
        planner = ShardPlanner.for_block_file(path, n_workers=2, buffer_blocks=1, seed=0)
        with BlockFileReader(path) as reader:
            fetcher = ShardFetcher(reader, planner.tuples_per_block)
            group, indices = planner.worker_buffer_fills(0, 0)[0]
            X, y = fetcher.fetch_fill(group, indices)
            assert np.array_equal(y, ds.y[indices])
            dense = X.toarray() if hasattr(X, "toarray") else X.to_dense()
            want = ds.X.take_rows(np.asarray(indices)).to_dense()
            assert np.allclose(dense, want)
