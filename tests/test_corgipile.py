"""Tests for the CorgiPile shuffle and the Block-Only ablation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CorgiPileShuffle
from repro.data import BlockLayout
from repro.shuffle import BlockOnlyShuffle
from repro.theory import label_mixing_deviation, position_rank_correlation

from .conftest import assert_is_permutation


class TestCorgiPileFullPass:
    def setup_method(self):
        self.layout = BlockLayout(600, 20)  # 30 blocks
        self.cp = CorgiPileShuffle(self.layout, buffer_blocks=5, seed=3)

    def test_visits_every_tuple_once(self):
        assert_is_permutation(self.cp.epoch_indices(0), 600)

    def test_epochs_differ(self):
        assert not np.array_equal(self.cp.epoch_indices(0), self.cp.epoch_indices(1))

    def test_deterministic_per_epoch(self):
        np.testing.assert_array_equal(self.cp.epoch_indices(2), self.cp.epoch_indices(2))

    def test_buffer_fills_partition_epoch(self):
        fills = self.cp.buffer_fills(0)
        assert len(fills) == 6  # 30 blocks / 5 per fill
        assert all(f.size == 100 for f in fills)
        flat = np.concatenate(fills)
        np.testing.assert_array_equal(flat, self.cp.epoch_indices(0))

    def test_fill_contents_are_whole_blocks(self):
        fills = self.cp.buffer_fills(0)
        order = self.cp.epoch_block_order(0)
        first_fill_blocks = set(order[:5].tolist())
        expected = set()
        for b in first_fill_blocks:
            expected.update(self.layout.block_indices(b).tolist())
        assert set(fills[0].tolist()) == expected

    def test_tuples_shuffled_within_fill(self):
        fills = self.cp.buffer_fills(0)
        # A sorted fill would mean no tuple-level shuffle happened.
        assert not np.all(np.diff(fills[0]) > 0)

    def test_randomness_close_to_full_shuffle(self):
        order = self.cp.epoch_indices(0)
        assert abs(position_rank_correlation(order)) < 0.35

    def test_block_order_matches_buffer_fills(self):
        order = self.cp.epoch_block_order(1)
        fills = self.cp.buffer_fills(1)
        rebuilt = []
        for fill in fills:
            blocks = {self.layout.block_of(int(t)) for t in fill}
            rebuilt.extend(sorted(blocks, key=lambda b: list(order).index(b)))
        assert sorted(rebuilt) == sorted(order.tolist())

    def test_ragged_last_block(self):
        layout = BlockLayout(105, 20)  # 6 blocks, last has 5 tuples
        cp = CorgiPileShuffle(layout, buffer_blocks=2, seed=0)
        assert_is_permutation(cp.epoch_indices(0), 105)

    def test_buffer_larger_than_table_clamped(self):
        cp = CorgiPileShuffle(self.layout, buffer_blocks=999, seed=0)
        assert cp.buffer_blocks == self.layout.n_blocks
        assert_is_permutation(cp.epoch_indices(0), 600)
        # With the whole table buffered CorgiPile degenerates to a full
        # per-epoch shuffle.
        assert abs(position_rank_correlation(cp.epoch_indices(0))) < 0.15


class TestCorgiPileSampled:
    def test_epoch_covers_only_buffered_blocks(self):
        layout = BlockLayout(600, 20)
        cp = CorgiPileShuffle(layout, buffer_blocks=5, seed=1, mode="sampled")
        order = cp.epoch_indices(0)
        assert order.size == 100
        blocks = {layout.block_of(int(t)) for t in order}
        assert len(blocks) == 5

    def test_without_replacement_within_epoch(self):
        layout = BlockLayout(200, 10)
        cp = CorgiPileShuffle(layout, buffer_blocks=8, seed=1, mode="sampled")
        order = cp.epoch_indices(0)
        assert len(set(order.tolist())) == order.size

    def test_blocks_visited(self):
        layout = BlockLayout(600, 20)
        assert CorgiPileShuffle(layout, 5, mode="sampled").blocks_visited(0) == 5
        assert CorgiPileShuffle(layout, 5).blocks_visited(0) == 30


class TestCorgiPileConstruction:
    def test_invalid_buffer(self):
        with pytest.raises(ValueError):
            CorgiPileShuffle(BlockLayout(10, 2), buffer_blocks=0)

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            CorgiPileShuffle(BlockLayout(10, 2), 1, mode="lazy")

    def test_from_buffer_fraction(self):
        layout = BlockLayout(1000, 10)  # 100 blocks
        cp = CorgiPileShuffle.from_buffer_fraction(layout, 0.1)
        assert cp.buffer_blocks == 10

    def test_from_buffer_fraction_minimum_one(self):
        layout = BlockLayout(100, 50)  # 2 blocks
        cp = CorgiPileShuffle.from_buffer_fraction(layout, 0.01)
        assert cp.buffer_blocks == 1

    def test_from_buffer_fraction_invalid(self):
        with pytest.raises(ValueError):
            CorgiPileShuffle.from_buffer_fraction(BlockLayout(10, 2), 0.0)


class TestCorgiPileTrace:
    def test_random_block_reads(self):
        layout = BlockLayout(600, 20)
        cp = CorgiPileShuffle(layout, 5, seed=0)
        trace = cp.epoch_trace(tuple_bytes=50.0)
        (event,) = trace.events
        assert event.kind == "rand"
        assert event.count == 30
        assert event.n_bytes_each == 20 * 50.0

    def test_no_setup_cost(self):
        cp = CorgiPileShuffle(BlockLayout(100, 10), 2)
        assert len(cp.setup_trace(8.0)) == 0


class TestBlockOnly:
    def test_is_permutation(self):
        s = BlockOnlyShuffle(BlockLayout(600, 20), seed=0)
        assert_is_permutation(s.epoch_indices(0), 600)

    def test_in_block_order_preserved(self):
        layout = BlockLayout(100, 10)
        s = BlockOnlyShuffle(layout, seed=0)
        order = s.epoch_indices(0)
        for lo in range(0, 100, 10):
            chunk = order[lo : lo + 10]
            assert np.all(np.diff(chunk) == 1)  # contiguous ascending run

    def test_label_mixing_worse_than_corgipile(self, clustered_binary):
        layout = clustered_binary.layout(20)
        block_only = BlockOnlyShuffle(layout, seed=0).epoch_indices(0)
        corgipile = CorgiPileShuffle(layout, 6, seed=0).epoch_indices(0)
        dev_block = label_mixing_deviation(block_only, clustered_binary.y)
        dev_corgi = label_mixing_deviation(corgipile, clustered_binary.y)
        assert dev_corgi < dev_block


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(2, 400),
    per_block=st.integers(1, 50),
    buffer_blocks=st.integers(1, 20),
    seed=st.integers(0, 50),
    epoch=st.integers(0, 3),
)
def test_property_full_pass_always_permutation(n, per_block, buffer_blocks, seed, epoch):
    layout = BlockLayout(n, per_block)
    cp = CorgiPileShuffle(layout, buffer_blocks, seed=seed)
    order = cp.epoch_indices(epoch)
    assert sorted(order.tolist()) == list(range(n))


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(10, 300),
    per_block=st.integers(1, 30),
    seed=st.integers(0, 50),
)
def test_property_sampled_mode_is_subset_without_replacement(n, per_block, seed):
    layout = BlockLayout(n, per_block)
    buffer_blocks = max(1, layout.n_blocks // 3)
    cp = CorgiPileShuffle(layout, buffer_blocks, seed=seed, mode="sampled")
    order = cp.epoch_indices(0)
    assert len(set(order.tolist())) == order.size
    assert set(order.tolist()) <= set(range(n))
