"""Unit and property tests for the CSR sparse matrix."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.sparse import SparseMatrix, SparseRow


def random_dense(rng: np.random.Generator, n: int, d: int, density: float = 0.3) -> np.ndarray:
    dense = rng.standard_normal((n, d))
    mask = rng.random((n, d)) < density
    return dense * mask


class TestSparseRow:
    def test_dot_matches_dense(self):
        row = SparseRow([1, 4, 7], [2.0, -1.0, 0.5], 10)
        w = np.arange(10, dtype=float)
        assert row.dot(w) == pytest.approx(2.0 * 1 - 1.0 * 4 + 0.5 * 7)

    def test_add_into_scatter(self):
        row = SparseRow([0, 3], [1.0, 2.0], 5)
        out = np.zeros(5)
        row.add_into(out, scale=-2.0)
        np.testing.assert_allclose(out, [-2.0, 0, 0, -4.0, 0])

    def test_add_into_duplicate_indices_accumulate(self):
        row = SparseRow([2, 2], [1.0, 1.0], 4)
        out = np.zeros(4)
        row.add_into(out, scale=1.0)
        assert out[2] == pytest.approx(2.0)

    def test_to_dense(self):
        row = SparseRow([1], [3.0], 3)
        np.testing.assert_allclose(row.to_dense(), [0, 3.0, 0])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            SparseRow([1, 2], [1.0], 5)

    def test_nnz(self):
        assert SparseRow([0, 1, 2], [1, 2, 3], 5).nnz == 3


class TestSparseMatrix:
    def setup_method(self):
        self.rng = np.random.default_rng(5)
        self.dense = random_dense(self.rng, 8, 6)
        self.sparse = SparseMatrix.from_dense(self.dense)

    def test_shape_and_nnz(self):
        assert self.sparse.shape == (8, 6)
        assert self.sparse.nnz == int(np.count_nonzero(self.dense))

    def test_roundtrip_to_dense(self):
        np.testing.assert_allclose(self.sparse.to_dense(), self.dense)

    def test_dot_matches_dense(self):
        w = self.rng.standard_normal(6)
        np.testing.assert_allclose(self.sparse.dot(w), self.dense @ w)

    def test_dot_with_empty_rows(self):
        dense = np.zeros((4, 3))
        dense[1, 2] = 5.0
        sparse = SparseMatrix.from_dense(dense)
        w = np.array([1.0, 1.0, 2.0])
        np.testing.assert_allclose(sparse.dot(w), [0, 10.0, 0, 0])

    def test_dot_all_empty(self):
        sparse = SparseMatrix.from_dense(np.zeros((3, 4)))
        np.testing.assert_allclose(sparse.dot(np.ones(4)), np.zeros(3))

    def test_t_dot_matches_dense(self):
        v = self.rng.standard_normal(8)
        np.testing.assert_allclose(self.sparse.t_dot(v), self.dense.T @ v)

    def test_take_rows_permutation(self):
        order = np.array([3, 0, 7, 1])
        taken = self.sparse.take_rows(order)
        np.testing.assert_allclose(taken.to_dense(), self.dense[order])

    def test_take_rows_with_repeats(self):
        order = np.array([2, 2, 5])
        taken = self.sparse.take_rows(order)
        np.testing.assert_allclose(taken.to_dense(), self.dense[order])

    def test_row_accessor(self):
        row = self.sparse.row(4)
        np.testing.assert_allclose(row.to_dense(), self.dense[4])

    def test_iter_rows_count(self):
        assert sum(1 for _ in self.sparse.iter_rows()) == 8

    def test_len(self):
        assert len(self.sparse) == 8

    def test_invalid_indptr_rejected(self):
        with pytest.raises(ValueError):
            SparseMatrix(np.array([0, 1]), np.array([0]), np.array([1.0]), (2, 3))

    def test_indptr_tail_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SparseMatrix(np.array([0, 2, 2]), np.array([0]), np.array([1.0]), (2, 3))

    def test_from_rows(self):
        rows = [SparseRow([0], [1.0], 4), SparseRow([1, 3], [2.0, 3.0], 4)]
        matrix = SparseMatrix.from_rows(rows, 4)
        expected = np.array([[1.0, 0, 0, 0], [0, 2.0, 0, 3.0]])
        np.testing.assert_allclose(matrix.to_dense(), expected)


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(1, 12),
    d=st.integers(1, 10),
    seed=st.integers(0, 1000),
)
def test_property_dot_products_match_dense(n, d, seed):
    rng = np.random.default_rng(seed)
    dense = random_dense(rng, n, d, density=0.4)
    sparse = SparseMatrix.from_dense(dense)
    w = rng.standard_normal(d)
    v = rng.standard_normal(n)
    np.testing.assert_allclose(sparse.dot(w), dense @ w, atol=1e-12)
    np.testing.assert_allclose(sparse.t_dot(v), dense.T @ v, atol=1e-12)


@settings(max_examples=30, deadline=None)
@given(n=st.integers(1, 10), d=st.integers(1, 8), seed=st.integers(0, 500))
def test_property_take_rows_matches_fancy_index(n, d, seed):
    rng = np.random.default_rng(seed)
    dense = random_dense(rng, n, d)
    sparse = SparseMatrix.from_dense(dense)
    order = rng.integers(0, n, size=n)
    np.testing.assert_allclose(sparse.take_rows(order).to_dense(), dense[order])
