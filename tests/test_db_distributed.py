"""Tests for the segmented (distributed) in-DB engine and EXPLAIN."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import clustered_by_label, make_binary_dense
from repro.db import (
    EngineError,
    MiniDB,
    ParseError,
    SegmentedMiniDB,
    TrainQuery,
    UnknownTableError,
    parse_query,
)
from repro.db.query import ExplainQuery
from repro.storage import SSD_SCALED


@pytest.fixture(scope="module")
def problem():
    ds = make_binary_dense(2400, 12, separation=1.2, seed=0)
    train, test = ds.split(0.9, seed=1)
    return clustered_by_label(train, seed=0), test


def _query(**overrides) -> TrainQuery:
    base = dict(
        table="t",
        model="lr",
        learning_rate=0.5,
        max_epoch_num=5,
        block_size=4096,
        batch_size=32,
        strategy="corgipile",
    )
    base.update(overrides)
    return TrainQuery(**base)


class TestSegmentedCreate:
    def test_segments_partition_all_tuples(self, problem):
        train, _ = problem
        db = SegmentedMiniDB(3, device=SSD_SCALED)
        infos = db.create_table("t", train, distribution_block=40)
        assert len(infos) == 3
        assert sum(info.n_tuples for info in infos) == train.n_tuples

    def test_blocks_round_robin(self, problem):
        train, _ = problem
        db = SegmentedMiniDB(2, device=SSD_SCALED)
        infos = db.create_table("t", train, distribution_block=40)
        # Segment 0 holds blocks 0, 2, 4...: its first tuple is tuple 0 and
        # its 41st tuple is global tuple 80.
        seg0 = infos[0].dataset
        np.testing.assert_allclose(seg0.X[0], train.X[0])
        np.testing.assert_allclose(seg0.X[40], train.X[80])

    def test_duplicate_table_rejected(self, problem):
        train, _ = problem
        db = SegmentedMiniDB(2, device=SSD_SCALED)
        db.create_table("t", train)
        with pytest.raises(ValueError):
            db.create_table("t", train)

    def test_unknown_table(self):
        db = SegmentedMiniDB(2, device=SSD_SCALED)
        with pytest.raises(UnknownTableError):
            db.segment_tables("ghost")

    def test_validation(self, problem):
        train, _ = problem
        with pytest.raises(ValueError):
            SegmentedMiniDB(0)
        db = SegmentedMiniDB(2, device=SSD_SCALED)
        with pytest.raises(ValueError):
            db.create_table("t", train, distribution_block=0)


class TestSegmentedTraining:
    def test_converges_on_clustered_data(self, problem):
        train, test = problem
        db = SegmentedMiniDB(4, device=SSD_SCALED)
        db.create_table("t", train, distribution_block=40)
        result = db.train(_query(max_epoch_num=6), test=test)
        assert result.history.final.test_score > 0.8
        assert result.n_segments == 4

    def test_matches_single_engine_accuracy(self, problem):
        train, test = problem
        seg = SegmentedMiniDB(4, device=SSD_SCALED)
        seg.create_table("t", train, distribution_block=40)
        distributed = seg.train(_query(max_epoch_num=6), test=test)

        single = MiniDB(device=SSD_SCALED, page_bytes=1024)
        single.create_table("t", train)
        local = single.train(_query(max_epoch_num=6), test=test)
        assert abs(
            distributed.history.final.test_score - local.history.final.test_score
        ) < 0.06

    def test_segments_contribute_equally(self, problem):
        train, test = problem
        db = SegmentedMiniDB(4, device=SSD_SCALED)
        db.create_table("t", train, distribution_block=40)
        result = db.train(_query(max_epoch_num=2), test=test)
        counts = result.per_segment_tuples
        assert max(counts) - min(counts) <= 2 * 8 * 2  # ragged tails only

    def test_timeline_monotone(self, problem):
        train, test = problem
        db = SegmentedMiniDB(2, device=SSD_SCALED)
        db.create_table("t", train, distribution_block=40)
        result = db.train(_query(max_epoch_num=3), test=test)
        times = [p.time_s for p in result.timeline.points]
        assert times == sorted(times)
        assert times[0] > 0

    def test_batch_must_divide(self, problem):
        train, test = problem
        db = SegmentedMiniDB(3, device=SSD_SCALED)
        db.create_table("t", train)
        with pytest.raises(EngineError, match="divisible"):
            db.train(_query(batch_size=32), test=test)

    def test_only_corgipile_strategy(self, problem):
        train, test = problem
        db = SegmentedMiniDB(2, device=SSD_SCALED)
        db.create_table("t", train)
        with pytest.raises(EngineError, match="corgipile"):
            db.train(_query(strategy="no_shuffle"), test=test)


class TestExplain:
    def test_parse_explain(self):
        query = parse_query("EXPLAIN SELECT * FROM t TRAIN BY svm")
        assert isinstance(query, ExplainQuery)
        assert query.inner.model == "svm"

    def test_explain_predict_rejected(self):
        with pytest.raises(ParseError):
            parse_query("EXPLAIN SELECT * FROM t PREDICT BY model_1")

    @pytest.mark.parametrize(
        "strategy,expected",
        [
            ("corgipile", "TupleShuffle"),
            ("corgipile_single_buffer", "single-buffered"),
            ("block_only", "BlockShuffle"),
            ("no_shuffle", "SeqScan"),
            ("shuffle_once", "pre-shuffled copy"),
        ],
    )
    def test_plans_per_strategy(self, problem, strategy, expected):
        train, _ = problem
        db = MiniDB(page_bytes=1024)
        db.create_table("t", train)
        plan = db.execute(
            f"EXPLAIN SELECT * FROM t TRAIN BY lr WITH strategy = {strategy}, "
            "block_size = 4KB"
        )
        assert expected in plan
        assert "Heap 't'" in plan
        assert plan.startswith("SGD")

    def test_explain_does_not_train(self, problem):
        train, _ = problem
        db = MiniDB(page_bytes=1024)
        db.create_table("t", train)
        db.execute("EXPLAIN SELECT * FROM t TRAIN BY lr")
        assert db._models == {}
