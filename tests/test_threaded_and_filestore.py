"""Tests for the threaded TupleShuffle operator and heap persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import make_binary_dense, make_binary_sparse
from repro.db import Catalog
from repro.db.engine import ENGINE_PROFILE
from repro.db.operators import BlockShuffleOperator, SeqScanOperator, TupleShuffleOperator
from repro.db.threaded import ThreadedTupleShuffleOperator
from repro.db.timing import RuntimeContext
from repro.storage import HeapFile
from repro.storage.filestore import load_heap, save_heap


@pytest.fixture()
def table(dense_binary):
    return Catalog(page_bytes=512).create_table("t", dense_binary)


def _ctx():
    from repro.storage import SSD

    return RuntimeContext(device=SSD, compute=ENGINE_PROFILE)


class TestThreadedTupleShuffle:
    def test_covers_all_tuples(self, table):
        ctx = _ctx()
        op = ThreadedTupleShuffleOperator(SeqScanOperator(table, ctx), 100, seed=1)
        op.open()
        ids = [r.tuple_id for r in op]
        op.close()
        assert sorted(ids) == list(range(table.n_tuples))

    def test_matches_synchronous_operator_order(self, table):
        """Drop-in equivalence: same child order + seed => same output order."""
        ctx1, ctx2 = _ctx(), _ctx()
        threaded = ThreadedTupleShuffleOperator(SeqScanOperator(table, ctx1), 100, seed=5)
        sync = TupleShuffleOperator(SeqScanOperator(table, ctx2), ctx2, 100, seed=5)
        threaded.open()
        sync.open()
        threaded_ids = [r.tuple_id for r in threaded]
        sync_ids = [r.tuple_id for r in sync]
        threaded.close()
        assert threaded_ids == sync_ids

    def test_rescan_matches_synchronous(self, table):
        ctx1, ctx2 = _ctx(), _ctx()
        threaded = ThreadedTupleShuffleOperator(
            BlockShuffleOperator(table, ctx1, 2048, seed=2), 80, seed=2
        )
        sync = TupleShuffleOperator(
            BlockShuffleOperator(table, ctx2, 2048, seed=2), ctx2, 80, seed=2
        )
        threaded.open()
        sync.open()
        for _ in range(3):
            assert [r.tuple_id for r in threaded] == [r.tuple_id for r in sync]
            threaded.rescan()
            sync.rescan()
        threaded.close()

    def test_early_close_terminates_producer(self, table):
        ctx = _ctx()
        op = ThreadedTupleShuffleOperator(SeqScanOperator(table, ctx), 50, seed=0)
        op.open()
        op.next()
        op.close()  # must not hang
        assert op._producer is None

    def test_child_exception_propagates(self, table):
        class Broken(SeqScanOperator):
            def next(self):
                raise RuntimeError("disk on fire")

        ctx = _ctx()
        op = ThreadedTupleShuffleOperator(Broken(table, ctx), 10, seed=0)
        op.open()
        with pytest.raises(RuntimeError, match="disk on fire"):
            while op.next() is not None:
                pass
        op.close()

    def test_invalid_buffer(self, table):
        with pytest.raises(ValueError):
            ThreadedTupleShuffleOperator(SeqScanOperator(table, _ctx()), 0)


class TestHeapPersistence:
    def test_dense_roundtrip(self, dense_binary, tmp_path):
        heap = HeapFile.from_dataset(dense_binary, page_bytes=512)
        path = save_heap(heap, tmp_path / "t.heap")
        loaded = load_heap(path)
        assert loaded.n_tuples == heap.n_tuples
        assert loaded.n_pages == heap.n_pages
        assert loaded.page_bytes == heap.page_bytes
        for i in (0, 123, heap.n_tuples - 1):
            original = heap.read_tuple(i)
            restored = loaded.read_tuple(i)
            assert restored.tuple_id == original.tuple_id
            np.testing.assert_allclose(restored.features, original.features)

    def test_sparse_roundtrip(self, sparse_binary, tmp_path):
        heap = HeapFile.from_dataset(sparse_binary, page_bytes=512)
        loaded = load_heap(save_heap(heap, tmp_path / "s.heap"))
        record = loaded.read_tuple(7)
        assert record.is_sparse
        np.testing.assert_allclose(
            record.features.to_dense(), sparse_binary.X.to_dense()[7]
        )

    def test_compressed_roundtrip(self, dense_binary, tmp_path):
        heap = HeapFile.from_dataset(dense_binary, page_bytes=512, compress=True)
        loaded = load_heap(save_heap(heap, tmp_path / "c.heap"))
        assert loaded.compress
        np.testing.assert_allclose(loaded.read_tuple(3).features, dense_binary.X[3])

    def test_block_layout_preserved(self, dense_binary, tmp_path):
        heap = HeapFile.from_dataset(dense_binary, page_bytes=512)
        loaded = load_heap(save_heap(heap, tmp_path / "t.heap"))
        assert loaded.n_blocks(2048) == heap.n_blocks(2048)
        original = [t.tuple_id for t in heap.read_block(1, 2048)]
        restored = [t.tuple_id for t in loaded.read_block(1, 2048)]
        assert original == restored

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "junk.heap"
        path.write_bytes(b"NOTAHEAP" + b"\x00" * 64)
        with pytest.raises(ValueError, match="magic"):
            load_heap(path)

    def test_truncated_file_rejected(self, dense_binary, tmp_path):
        heap = HeapFile.from_dataset(dense_binary, page_bytes=512)
        path = save_heap(heap, tmp_path / "t.heap")
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(ValueError, match="truncated"):
            load_heap(path)

    def test_file_padded_to_page_capacity(self, tmp_path):
        ds = make_binary_dense(50, 4, seed=0)
        heap = HeapFile.from_dataset(ds, page_bytes=1024)
        path = save_heap(heap, tmp_path / "p.heap")
        size = path.stat().st_size
        # header + n_pages * capacity
        assert size >= heap.n_pages * 1024
