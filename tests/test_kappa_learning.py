"""The advisor's κ feedback loop: learn the clustering penalty from walls.

The cost model prices one epoch of a strategy as
``epoch_io_s * (1 + κ*(h_eff − 1))``.  κ ships with a calibrated default;
once the engine has recorded at least :data:`MIN_KAPPA_EPOCHS` epochs of
per-epoch walls for a table, ``advise_strategy(history=...)`` refits κ by
weighted least squares through the origin and re-costs the candidates.
These tests pin the fit arithmetic, the guard rails (too little signal,
no-signal observations, the ``[0, KAPPA_MAX]`` clamp), the provenance
stamped on the decision, and the engine wiring that records the history.
"""

from __future__ import annotations

import pytest

from repro.data import clustered_by_label, make_binary_dense
from repro.db import MiniDB, parse_query
from repro.db.advisor import (
    KAPPA_MAX,
    MIN_KAPPA_EPOCHS,
    PENALTY_EPOCHS_PER_HD,
    StrategyCost,
    advise_strategy,
    learn_kappa,
)
from repro.db.catalog import Catalog
from repro.storage import HDD


def _cost(strategy="block_only", epoch_io_s=2.0, h_eff=3.0):
    return StrategyCost(
        strategy=strategy,
        setup_s=0.0,
        epoch_io_s=epoch_io_s,
        effective_hd=h_eff,
        epoch_multiplier=1.0 + PENALTY_EPOCHS_PER_HD * (h_eff - 1.0),
        total_s=0.0,
    )


class TestLearnKappa:
    def test_exact_fit_recovers_kappa(self):
        # Walls manufactured from the model with κ = 0.5:
        # wall = io * (1 + 0.5*(h_eff - 1)) = 2.0 * 2.0 = 4.0
        costs = (_cost(epoch_io_s=2.0, h_eff=3.0),)
        obs = [{"strategy": "block_only", "epoch_wall_s": [4.0, 4.0, 4.0]}]
        kappa, n, source = learn_kappa(obs, costs)
        assert source == "observed"
        assert n == 3
        assert kappa == pytest.approx(0.5)

    def test_weighted_fit_across_runs(self):
        # Two runs at different (io, h_eff) points, both on the κ=0.8 line.
        costs = (
            _cost("block_only", epoch_io_s=2.0, h_eff=3.0),
            _cost("mrs_once", epoch_io_s=1.0, h_eff=2.0),
        )
        obs = [
            {"strategy": "block_only", "epoch_wall_s": [2.0 * (1 + 0.8 * 2)] * 2},
            {"strategy": "mrs_once", "epoch_wall_s": [1.0 * (1 + 0.8 * 1)] * 4},
        ]
        kappa, n, source = learn_kappa(obs, costs)
        assert source == "observed"
        assert n == 6
        assert kappa == pytest.approx(0.8)

    def test_too_few_epochs_falls_back_to_default(self):
        costs = (_cost(),)
        obs = [{"strategy": "block_only", "epoch_wall_s": [4.0]}]
        assert MIN_KAPPA_EPOCHS == 2
        kappa, n, source = learn_kappa(obs, costs)
        assert (kappa, n, source) == (PENALTY_EPOCHS_PER_HD, 1, "default")

    def test_no_signal_observations_skipped(self):
        # h_eff == 1 (unclustered): x = 0, carries no slope information.
        costs = (_cost("corgipile", epoch_io_s=2.0, h_eff=1.0),)
        obs = [{"strategy": "corgipile", "epoch_wall_s": [2.0, 2.0, 2.0]}]
        kappa, n, source = learn_kappa(obs, costs)
        assert source == "default"
        assert n == 0

    def test_unknown_strategy_and_empty_walls_skipped(self):
        costs = (_cost(),)
        obs = [
            {"strategy": "nope", "epoch_wall_s": [4.0, 4.0]},
            {"strategy": "block_only", "epoch_wall_s": []},
            {"strategy": "block_only"},
        ]
        assert learn_kappa(obs, costs)[2] == "default"

    def test_clamped_to_zero_and_kappa_max(self):
        costs = (_cost(epoch_io_s=2.0, h_eff=3.0),)
        # Walls *below* the pure-IO floor → negative slope → clamp to 0.
        low = [{"strategy": "block_only", "epoch_wall_s": [1.0, 1.0]}]
        assert learn_kappa(low, costs)[0] == 0.0
        # Walls far above the model's reach → clamp to KAPPA_MAX.
        high = [{"strategy": "block_only", "epoch_wall_s": [100.0, 100.0]}]
        assert learn_kappa(high, costs)[0] == KAPPA_MAX

    def test_custom_default_passed_through(self):
        kappa, _n, source = learn_kappa([], (), default=0.77)
        assert (kappa, source) == (0.77, "default")


class TestAdvisorHistoryPath:
    @pytest.fixture(scope="class")
    def table(self):
        dataset = clustered_by_label(make_binary_dense(2000, 8, seed=3), seed=3)
        return Catalog(page_bytes=1024).create_table("t", dataset)

    def test_decision_without_history_stamps_default(self, table):
        decision = advise_strategy(table, HDD, block_bytes=64 * 1024)
        assert decision.kappa == PENALTY_EPOCHS_PER_HD
        assert decision.kappa_source == "default"
        assert decision.kappa_observations == 0
        doc = decision.to_doc()
        assert doc["kappa"]["source"] == "default"

    def test_history_refits_and_stamps_provenance(self, table):
        base = advise_strategy(table, HDD, block_bytes=64 * 1024)
        cost = next(c for c in base.costs if c.effective_hd > 1.0)
        target = 0.9
        wall = cost.epoch_io_s * (1.0 + target * (cost.effective_hd - 1.0))
        history = [{"strategy": cost.strategy, "epoch_wall_s": [wall] * 3}]
        decision = advise_strategy(
            table, HDD, block_bytes=64 * 1024, history=history
        )
        assert decision.kappa_source == "observed"
        assert decision.kappa_observations == 3
        assert decision.kappa == pytest.approx(target, rel=1e-6)
        # The costs were actually recomputed with the learned κ.
        refit = next(c for c in decision.costs if c.strategy == cost.strategy)
        assert refit.epoch_multiplier == pytest.approx(
            1.0 + decision.kappa * (refit.effective_hd - 1.0)
        )

    def test_doc_round_trip_keeps_kappa(self, table):
        decision = advise_strategy(table, HDD, block_bytes=64 * 1024)
        from repro.db.advisor import AdvisorDecision

        clone = AdvisorDecision.from_doc(decision.to_doc())
        assert clone.kappa == decision.kappa
        assert clone.kappa_source == decision.kappa_source


class TestEngineRecordsHistory:
    def test_train_auto_twice_learns_kappa(self, dense_binary):
        """Two strategy=auto TRAINs on one table: the first records its
        simulated per-epoch walls, the second's advisor decision carries
        observed-κ provenance."""
        db = MiniDB(page_bytes=1024)
        db.create_table("t", clustered_by_label(dense_binary, seed=1))
        sql = (
            "SELECT * FROM t TRAIN BY lr WITH strategy = auto, "
            "max_epoch_num = 3, block_size = 8KB, seed = 1"
        )
        first = db.execute(sql)
        assert first.query.extra["advisor"]["kappa"]["source"] == "default"
        second = db.execute(sql)
        kappa_doc = second.query.extra["advisor"]["kappa"]
        assert kappa_doc["n_observations"] >= MIN_KAPPA_EPOCHS
        assert kappa_doc["source"] in ("observed", "default")
        # With three full simulated epochs of the chosen strategy the fit
        # must have engaged unless the observations carried no h_eff signal.
        chosen = first.query.extra["advisor"]["strategy"]
        cost = next(
            c
            for c in first.query.extra["advisor"]["costs"]
            if c["strategy"] == chosen
        )
        if cost["effective_hd"] > 1.0:
            assert kappa_doc["source"] == "observed"
