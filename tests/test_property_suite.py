"""Cross-cutting property-based tests (hypothesis) on system invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CorgiPileShuffle, pipelined_time, serial_time
from repro.data import BlockLayout, Dataset, make_binary_dense
from repro.db import Catalog, MiniDB
from repro.db.engine import ENGINE_PROFILE
from repro.db.operators import (
    BlockShuffleOperator,
    MultiplexedReservoirOperator,
    PermutedScanOperator,
    SeqScanOperator,
    SlidingWindowOperator,
    TupleShuffleOperator,
)
from repro.db.timing import RuntimeContext
from repro.shuffle import MRSShuffle, make_strategy
from repro.storage import SSD, AccessTrace, HeapFile
from repro.theory import label_mixing_deviation


@settings(max_examples=20, deadline=None)
@given(
    fills=st.lists(st.floats(0, 10), min_size=1, max_size=8),
    consumes=st.lists(st.floats(0, 10), min_size=1, max_size=8),
)
def test_property_double_buffering_always_helps(fills, consumes):
    n = min(len(fills), len(consumes))
    fills, consumes = fills[:n], consumes[:n]
    piped = pipelined_time(fills, consumes)
    serial = serial_time(fills, consumes)
    assert piped <= serial + 1e-9
    # And never faster than either resource alone.
    assert piped >= max(sum(fills), sum(consumes)) - 1e-9


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(20, 200),
    buffer_frac=st.floats(0.05, 0.5),
    seed=st.integers(0, 50),
)
def test_property_mrs_emissions_match_scan_count(n, buffer_frac, seed):
    strategy = MRSShuffle(n, max(1, int(buffer_frac * n)), seed=seed)
    order = strategy.epoch_indices(0)
    assert order.size == n
    assert set(order.tolist()) <= set(range(n))


@settings(max_examples=10, deadline=None)
@given(
    per_block=st.integers(5, 40),
    buffer_blocks=st.integers(2, 12),
    seed=st.integers(0, 20),
)
def test_property_corgipile_mixing_beats_clustered_order(per_block, buffer_blocks, seed):
    n = 600
    labels = np.array([-1.0] * (n // 2) + [1.0] * (n // 2))
    layout = BlockLayout(n, per_block)
    cp = CorgiPileShuffle(layout, buffer_blocks, seed=seed)
    order = cp.epoch_indices(0)
    dev = label_mixing_deviation(order, labels, window=50)
    clustered_dev = label_mixing_deviation(np.arange(n), labels, window=50)
    assert dev < clustered_dev


@settings(max_examples=10, deadline=None)
@given(kinds=st.lists(st.sampled_from(["seq", "rand", "seq_write"]), min_size=1, max_size=6))
def test_property_trace_time_additive(kinds):
    trace = AccessTrace()
    for i, kind in enumerate(kinds):
        trace.add(kind, i + 1, 1000.0 * (i + 1))
    total = trace.time_on(SSD)
    per_event = sum(e.time_on(SSD) for e in trace)
    assert total == pytest.approx(per_event)


OPERATOR_BUILDERS = {
    "seq": lambda t, ctx: SeqScanOperator(t, ctx),
    "block": lambda t, ctx: BlockShuffleOperator(t, ctx, 2048, seed=3),
    "tuple": lambda t, ctx: TupleShuffleOperator(
        BlockShuffleOperator(t, ctx, 2048, seed=3), ctx, 50, seed=3
    ),
    "permuted": lambda t, ctx: PermutedScanOperator(t, ctx, seed=3, charge="sort"),
    "window": lambda t, ctx: SlidingWindowOperator(SeqScanOperator(t, ctx), 40, seed=3),
}


@pytest.mark.parametrize("name", sorted(OPERATOR_BUILDERS))
def test_property_operators_cover_table_across_rescans(name):
    ds = make_binary_dense(300, 6, seed=0)
    table = Catalog(page_bytes=512).create_table("t", ds)
    ctx = RuntimeContext(device=SSD, compute=ENGINE_PROFILE)
    op = OPERATOR_BUILDERS[name](table, ctx)
    op.open()
    for _ in range(3):
        ids = sorted(r.tuple_id for r in op)
        assert ids == list(range(300)), name
        op.rescan()


def test_property_mrs_operator_valid_ids_across_rescans():
    ds = make_binary_dense(300, 6, seed=0)
    table = Catalog(page_bytes=512).create_table("t", ds)
    ctx = RuntimeContext(device=SSD, compute=ENGINE_PROFILE)
    op = MultiplexedReservoirOperator(SeqScanOperator(table, ctx), 40, seed=3)
    op.open()
    for _ in range(2):
        ids = [r.tuple_id for r in op]
        assert len(ids) == 300
        assert set(ids) <= set(range(300))
        op.rescan()


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 30), page_bytes=st.sampled_from([256, 512, 2048]))
def test_property_heapfile_roundtrip_any_page_size(seed, page_bytes):
    ds = make_binary_dense(60, 5, seed=seed)
    heap = HeapFile.from_dataset(ds, page_bytes=page_bytes)
    for i in (0, 30, 59):
        record = heap.read_tuple(i)
        np.testing.assert_allclose(record.features, ds.X[i])
        assert record.label == ds.y[i]


@settings(max_examples=6, deadline=None)
@given(strategy=st.sampled_from(["corgipile", "no_shuffle", "shuffle_once", "block_only"]))
def test_property_engine_history_deterministic_per_strategy(strategy):
    ds = make_binary_dense(400, 6, separation=1.5, seed=0)

    def run():
        db = MiniDB(page_bytes=512)
        db.create_table("t", ds)
        return db.execute(
            f"SELECT * FROM t TRAIN BY lr WITH strategy = {strategy}, "
            "max_epoch_num = 2, block_size = 2KB, seed = 5"
        )

    a, b = run(), run()
    assert [r.train_loss for r in a.history.records] == [
        r.train_loss for r in b.history.records
    ]
