"""Stress tests for the concurrent loaders: no leaked or zombie threads.

Each loader is abandoned mid-epoch and made to raise inside the consumer;
afterwards ``threading.active_count()`` must return to its baseline (every
producer thread joined) and a subsequent full epoch must still yield the
correct tuple multiset.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core import LoaderStats, MultiWorkerLoader, PrefetchLoader
from repro.data import make_binary_dense
from repro.db import Catalog
from repro.db.engine import ENGINE_PROFILE
from repro.db.operators import SeqScanOperator
from repro.db.threaded import ThreadedTupleShuffleOperator
from repro.db.timing import RuntimeContext
from repro.storage import SSD, write_block_file


def settled_thread_count(baseline: int, timeout: float = 5.0) -> int:
    """Wait for the thread count to settle back toward ``baseline``."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if threading.active_count() <= baseline:
            return threading.active_count()
        time.sleep(0.01)
    return threading.active_count()


@pytest.fixture()
def block_file(tmp_path):
    ds = make_binary_dense(600, 6, seed=0)
    path = tmp_path / "stress.blocks"
    write_block_file(ds, path, tuples_per_block=25)
    return path, ds


def _ctx():
    return RuntimeContext(device=SSD, compute=ENGINE_PROFILE)


class TestPrefetchLoaderStress:
    def test_abandon_mid_epoch_releases_threads(self):
        baseline = threading.active_count()
        loader = PrefetchLoader(range(10_000), depth=2)
        for _ in range(10):
            iterator = iter(loader)
            next(iterator)
            iterator.close()
        assert settled_thread_count(baseline) == baseline
        assert loader.stats.live_threads == 0

    def test_consumer_exception_releases_threads(self):
        baseline = threading.active_count()
        loader = PrefetchLoader(range(10_000), depth=2)
        with pytest.raises(ValueError, match="consumer bailed"):
            for item in loader:
                if item == 3:
                    raise ValueError("consumer bailed")
        assert settled_thread_count(baseline) == baseline

    def test_epoch_correct_after_abandonment(self):
        loader = PrefetchLoader(list(range(500)), depth=2)
        iterator = iter(loader)
        next(iterator)
        iterator.close()
        assert list(loader) == list(range(500))


class TestMultiWorkerLoaderStress:
    def test_abandon_mid_epoch_releases_threads(self, block_file):
        path, ds = block_file
        baseline = threading.active_count()
        with MultiWorkerLoader(path, 3, 2, batch_size=16, seed=0) as loader:
            for _ in range(3):
                iterator = iter(loader)
                next(iterator)
                iterator.close()
            assert settled_thread_count(baseline) == baseline
            assert loader.stats.live_threads == 0

    def test_consumer_exception_releases_threads(self, block_file):
        path, ds = block_file
        baseline = threading.active_count()
        with MultiWorkerLoader(path, 2, 2, batch_size=16, seed=0) as loader:
            with pytest.raises(RuntimeError, match="training blew up"):
                for i, _batch in enumerate(loader):
                    if i == 2:
                        raise RuntimeError("training blew up")
            assert settled_thread_count(baseline) == baseline

    def test_epoch_correct_after_abandonment(self, block_file):
        path, ds = block_file
        with MultiWorkerLoader(path, 2, 2, batch_size=16, seed=0) as loader:
            iterator = iter(loader)
            next(iterator)
            iterator.close()
            ids = sorted(int(i) for batch in loader for i in batch.tuple_ids)
        assert ids == list(range(ds.n_tuples))

    def test_stats_aggregate_across_workers(self, block_file):
        path, ds = block_file
        stats = LoaderStats("mw")
        with MultiWorkerLoader(path, 2, 2, batch_size=16, seed=0, stats=stats) as loader:
            n_batches = sum(1 for _ in loader)
        d = stats.as_dict()
        assert d["items_consumed"] == n_batches
        assert d["threads_started"] == 2
        assert d["live_threads"] == 0
        assert d["buffers_filled"] == d["buffers_drained"] > 0


class TestThreadedOperatorStress:
    @pytest.fixture()
    def table(self):
        ds = make_binary_dense(800, 6, seed=1)
        return Catalog(page_bytes=512).create_table("t", ds)

    def test_abandon_mid_epoch_releases_threads(self, table):
        baseline = threading.active_count()
        for _ in range(5):
            op = ThreadedTupleShuffleOperator(SeqScanOperator(table, _ctx()), 50, seed=0)
            op.open()
            op.next()
            op.close()
            assert op._producer is None
        assert settled_thread_count(baseline) == baseline

    def test_zombie_regression_producer_blocked_on_put(self, table):
        """Close while the writer is blocked handing over a full buffer."""
        baseline = threading.active_count()
        op = ThreadedTupleShuffleOperator(SeqScanOperator(table, _ctx()), 10, seed=0)
        op.open()
        op.next()
        time.sleep(0.1)  # writer fills the depth-1 queue and blocks
        op.close()
        assert settled_thread_count(baseline) == baseline
        assert op.stats.live_threads == 0

    def test_rescan_storm_releases_threads(self, table):
        baseline = threading.active_count()
        op = ThreadedTupleShuffleOperator(SeqScanOperator(table, _ctx()), 60, seed=3)
        op.open()
        for _ in range(5):
            op.next()
            op.rescan()
        op.close()
        assert settled_thread_count(baseline) == baseline
        assert op.stats.threads_started == 6
        assert op.stats.live_threads == 0

    def test_epoch_multiset_correct_after_abandonment(self, table):
        op = ThreadedTupleShuffleOperator(SeqScanOperator(table, _ctx()), 50, seed=0)
        op.open()
        op.next()  # abandon the first epoch after one tuple
        op.rescan()
        ids = sorted(r.tuple_id for r in op)
        op.close()
        assert ids == list(range(table.n_tuples))

    def test_reopen_after_close_restarts_at_epoch_zero(self, table):
        op = ThreadedTupleShuffleOperator(SeqScanOperator(table, _ctx()), 50, seed=4)
        op.open()
        first = [r.tuple_id for r in op]
        op.rescan()
        later = [r.tuple_id for r in op]
        op.close()
        op.open()
        reopened = [r.tuple_id for r in op]
        op.close()
        assert reopened == first
        assert later != first

    def test_error_path_terminal_put_does_not_zombie(self, table):
        """A child error with a full queue must not strand the writer."""

        class Broken(SeqScanOperator):
            def __init__(self, *a, **k):
                super().__init__(*a, **k)
                self.calls = 0

            def next(self):
                self.calls += 1
                if self.calls > 25:
                    raise RuntimeError("disk on fire")
                return super().next()

        baseline = threading.active_count()
        op = ThreadedTupleShuffleOperator(Broken(table, _ctx()), 10, seed=0)
        op.open()
        op.next()
        time.sleep(0.1)  # writer hits the error while the queue is full
        op.close()  # must cancel the terminal Failure put and join
        assert settled_thread_count(baseline) == baseline

    def test_stats_report_fill_drain_and_overlap(self, table):
        stats = LoaderStats("threaded")
        op = ThreadedTupleShuffleOperator(
            SeqScanOperator(table, _ctx()), 100, seed=0, stats=stats
        )
        op.open()
        while op.next() is not None:
            pass
        op.close()
        d = stats.as_dict()
        assert d["buffers_filled"] == d["buffers_drained"] == int(np.ceil(table.n_tuples / 100))
        assert d["tuples_buffered"] == table.n_tuples
        assert d["live_threads"] == 0
        assert 0.0 <= d["overlap_fraction"] <= 1.0
