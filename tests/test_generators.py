"""Tests for synthetic dataset generators and the Table 2 registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    DATASETS,
    load,
    make_binary_dense,
    make_binary_sparse,
    make_multiclass_dense,
    make_multiclass_sparse,
    make_regression,
    names,
)


class TestBinaryDense:
    def test_shapes_and_labels(self):
        ds = make_binary_dense(200, 7, seed=0)
        assert ds.X.shape == (200, 7)
        assert set(np.unique(ds.y)) == {-1.0, 1.0}

    def test_seed_determinism(self):
        a = make_binary_dense(50, 5, seed=9)
        b = make_binary_dense(50, 5, seed=9)
        np.testing.assert_allclose(a.X, b.X)
        np.testing.assert_allclose(a.y, b.y)

    def test_different_seeds_differ(self):
        a = make_binary_dense(50, 5, seed=1)
        b = make_binary_dense(50, 5, seed=2)
        assert not np.allclose(a.X, b.X)

    def test_separation_controls_learnability(self):
        # A perceptron-style check: higher separation => more linearly
        # separable along the hidden direction.
        easy = make_binary_dense(500, 10, separation=3.0, seed=0)
        hard = make_binary_dense(500, 10, separation=0.1, seed=0)

        def best_linear_accuracy(ds):
            w = ds.X.T @ ds.y  # the Bayes-ish direction estimate
            return np.mean(np.sign(ds.X @ w) == ds.y)

        assert best_linear_accuracy(easy) > best_linear_accuracy(hard)

    def test_positive_fraction(self):
        ds = make_binary_dense(2000, 3, positive_fraction=0.25, seed=0)
        assert np.mean(ds.y == 1.0) == pytest.approx(0.25, abs=0.05)


class TestBinarySparse:
    def test_nnz_per_row(self):
        ds = make_binary_sparse(50, 200, nnz_per_row=16, seed=0)
        nnz = np.diff(ds.X.indptr)
        assert np.all(nnz <= 16)
        assert np.all(nnz >= 8)

    def test_indices_sorted_within_rows(self):
        ds = make_binary_sparse(20, 100, seed=1)
        for row in ds.X.iter_rows():
            assert np.all(np.diff(row.indices) > 0)

    def test_task_is_binary(self):
        ds = make_binary_sparse(20, 100, seed=1)
        assert ds.task == "binary"
        assert ds.is_sparse


class TestMulticlass:
    def test_dense_classes(self):
        ds = make_multiclass_dense(300, 8, 5, seed=0)
        assert set(np.unique(ds.y)) == set(range(5))
        assert ds.task == "multiclass"

    def test_sparse_documents(self):
        ds = make_multiclass_sparse(60, 300, 3, tokens_per_doc=20, seed=0)
        assert ds.is_sparse
        assert set(np.unique(ds.y)) <= set(range(3))
        # Token counts are positive integers.
        assert np.all(ds.X.data >= 1.0)

    def test_sparse_invalid_sharpness(self):
        with pytest.raises(ValueError):
            make_multiclass_sparse(10, 100, 3, topic_sharpness=0.0)


class TestRegression:
    def test_linear_signal(self):
        ds = make_regression(400, 6, noise=0.01, seed=0)
        w, *_ = np.linalg.lstsq(ds.X, ds.y, rcond=None)
        residual = ds.y - ds.X @ w
        assert np.std(residual) < 0.1

    def test_task(self):
        assert make_regression(10, 2, seed=0).task == "regression"


class TestRegistry:
    def test_all_names_build(self):
        for name in names():
            ds = load(name, seed=0)
            spec = DATASETS[name]
            assert ds.n_tuples == spec.n_tuples
            assert ds.n_features == spec.n_features
            assert ds.name == name

    def test_paper_metadata_attached(self):
        ds = load("higgs")
        assert ds.metadata["paper_size"] == "2.8 GB"

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            load("mnist-1b")

    def test_build_split(self):
        train, test = DATASETS["susy"].build_split(seed=0)
        assert train.n_tuples + test.n_tuples == DATASETS["susy"].n_tuples

    def test_kinds(self):
        assert DATASETS["criteo"].kind == "sparse"
        assert DATASETS["yelp-like"].kind == "text"
        assert load("criteo").is_sparse
