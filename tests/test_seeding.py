"""Regression tests pinning the unified RNG-derivation helpers.

``repro.core.seeding`` replaced inline ``SeedSequence([...])`` construction
in the shuffle strategies, the iterable dataset, the multi-process
simulation, the Volcano operators, and the fault plan.  These tests pin
draw values captured *before* the unification, so any change to the
derivation formulas (word order, offsets, stream codes) fails loudly —
fault schedules and shuffles must stay byte-identical across the refactor.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.seeding import (
    FAULT_UNIT_CODES,
    MRS_STREAM,
    SLIDING_WINDOW_STREAM,
    TUPLE_SHUFFLE_STREAM,
    derive_rng,
    epoch_rng,
    fault_unit_rng,
    stream_rng,
    worker_rng,
)


class TestFormulaEquivalence:
    """Each helper is exactly its historical inline SeedSequence formula."""

    def test_derive_rng_matches_seed_sequence(self):
        expected = np.random.default_rng(np.random.SeedSequence([4, 9, 2])).random(5)
        assert np.array_equal(derive_rng(4, 9, 2).random(5), expected)

    def test_epoch_rng(self):
        expected = np.random.default_rng(np.random.SeedSequence([3, 5])).integers(0, 1000, 10)
        assert np.array_equal(epoch_rng(3, 5).integers(0, 1000, 10), expected)

    def test_worker_rng_offsets_worker_id_by_one(self):
        expected = np.random.default_rng(np.random.SeedSequence([7, 2, 1 + 3])).random(8)
        assert np.array_equal(worker_rng(7, 2, 3).random(8), expected)

    def test_worker_zero_differs_from_epoch_stream(self):
        assert not np.array_equal(
            worker_rng(0, 0, 0).random(16), epoch_rng(0, 0).random(16)
        )

    def test_stream_rng(self):
        for code in (TUPLE_SHUFFLE_STREAM, SLIDING_WINDOW_STREAM, MRS_STREAM):
            expected = np.random.default_rng(np.random.SeedSequence([1, 4, code])).random(6)
            assert np.array_equal(stream_rng(1, 4, code).random(6), expected)

    def test_fault_unit_rng(self):
        expected = np.random.default_rng(np.random.SeedSequence([11, 2, 5])).random(4)
        assert np.array_equal(fault_unit_rng(11, "page", 5).random(4), expected)

    def test_fault_unit_rng_rejects_unknown_unit(self):
        with pytest.raises(KeyError):
            fault_unit_rng(0, "tablet", 0)


class TestPinnedValues:
    """Values captured from the pre-unification code paths."""

    def test_stream_codes_are_stable(self):
        assert TUPLE_SHUFFLE_STREAM == 7
        assert SLIDING_WINDOW_STREAM == 11
        assert MRS_STREAM == 13
        # "chunk" (columnar) and "index_node" (B+tree files) were appended;
        # the pre-existing codes must never move (they pin every historical
        # fault plan's draws).
        assert FAULT_UNIT_CODES == {"block": 1, "page": 2, "chunk": 3, "index_node": 4}

    def test_epoch_permutation_pin(self):
        # Pre-refactor: SeedSequence([0, 0]).permutation(8)
        assert epoch_rng(0, 0).permutation(8).tolist() == [2, 4, 3, 6, 5, 0, 1, 7]

    def test_shuffle_strategy_rng_pin(self):
        # Pre-refactor pin from tests/test_strategies.py determinism check.
        assert epoch_rng(3, 5).integers(0, 1000, 10).tolist() == [
            23, 136, 56, 883, 818, 898, 300, 577, 333, 690,
        ]

    def test_fault_plan_draw_pin(self):
        """FaultPlan._draw's uniforms for seed=0 blocks 0..7 (captured)."""
        from repro.faults.plan import FaultPlan

        plan = FaultPlan(seed=0, p_transient=0.5, p_torn=0.25, p_latency=0.125,
                         latency_s=0.001, max_failures=4)
        got = []
        for block in range(8):
            d = plan._draw("block", block)
            got.append((block, d.transient_fails, d.torn_fails, d.delay_s))
        assert got == [
            (0, 0, 0, 0.0),
            (1, 0, 0, 0.0),
            (2, 0, 0, 0.0),
            (3, 0, 0, 0.0),
            (4, 3, 0, 0.0),
            (5, 2, 2, 0.0),
            (6, 2, 0, 0.0),
            (7, 1, 0, 0.0),
        ]


class TestMultiProcessPins:
    """MultiProcessCorgiPile streams are unchanged by the seeding rewire."""

    @pytest.fixture
    def mp(self):
        from repro.core.distributed import MultiProcessCorgiPile
        from repro.data.dataset import BlockLayout

        return MultiProcessCorgiPile(
            BlockLayout(n_tuples=640, tuples_per_block=20), n_workers=4,
            buffer_blocks_per_worker=2, seed=5,
        )

    def test_worker_blocks_pin(self, mp):
        assert mp.worker_blocks(1)[0].tolist() == [10, 12, 18, 27, 14, 2, 4, 28]

    def test_worker_epoch_indices_pin(self, mp):
        assert mp.worker_epoch_indices(1, 2)[:10].tolist() == [
            152, 193, 144, 154, 194, 195, 151, 184, 147, 156,
        ]

    def test_epoch_indices_pin(self, mp):
        assert mp.epoch_indices(0, 32)[:12].tolist() == [
            196, 180, 599, 182, 581, 584, 586, 181, 247, 249, 253, 343,
        ]

    def test_buffer_fills_concatenate_to_epoch_stream(self, mp):
        for worker in range(4):
            fills = mp.worker_buffer_fills(1, worker)
            flat = np.concatenate([idx for _, idx in fills])
            assert np.array_equal(flat, mp.worker_epoch_indices(1, worker))
            blocks = np.concatenate([grp for grp, _ in fills])
            assert np.array_equal(blocks, mp.worker_blocks(1)[worker])


class TestDatasetUsesSharedStreams:
    """CorgiPileDataset's visit order is reproducible via the helpers."""

    def test_dataset_block_order_matches_epoch_rng(self, tmp_path):
        from repro.core.dataset import CorgiPileDataset
        from repro.data.generators import make_binary_dense
        from repro.storage.blockfile import write_block_file

        ds_src = make_binary_dense(40, 4, seed=0)
        path = tmp_path / "t.blk"
        write_block_file(ds_src, path, tuples_per_block=10)
        with CorgiPileDataset(path, buffer_blocks=4, seed=9) as ds:
            ds.set_epoch(2)
            seen = [int(t.tuple_id) for t in ds]
        # buffer covers the whole table -> one fill, shuffled by worker_rng
        order = epoch_rng(9, 2).permutation(4)
        expected = np.concatenate([np.arange(b * 10, b * 10 + 10) for b in order])
        rng = worker_rng(9, 2, 0)
        rng.shuffle(expected)
        assert seen == expected.tolist()
