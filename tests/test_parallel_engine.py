"""End-to-end tests for the multi-process parallel training engine.

These spawn real worker processes, so configurations are kept small; the
load-bearing acceptance criteria are:

* a 2-worker sync run matches the single-process reference within 1e-6
  (it actually matches at float rounding, ~1e-16);
* killing a 4-worker run mid-epoch and resuming from the coordinator
  checkpoint finishes bit-exact (≤ 1e-12);
* no run leaks child processes, whatever the exit path.
"""

from __future__ import annotations

import multiprocessing as mp

import numpy as np
import pytest

from repro.data.generators import make_binary_dense, make_binary_sparse
from repro.faults import FaultPlan, InjectedCrash
from repro.ml.models import LinearSVM, LogisticRegression
from repro.ml.schedules import ExponentialDecay
from repro.ml.trainer import CheckpointConfig
from repro.parallel import ParallelTrainer, WorkerError, sync_reference_trainer
from repro.storage import write_block_file

N_TUPLES = 640
N_FEATURES = 8
TUPLES_PER_BLOCK = 20
SEED = 5
GBS = 32
SCHEDULE = ExponentialDecay(0.05)


def assert_no_leaked_children():
    leaked = [p for p in mp.active_children() if p.name.startswith("repro-parallel")]
    assert leaked == [], f"leaked worker processes: {leaked}"


@pytest.fixture(scope="module")
def dense_block_file(tmp_path_factory):
    ds = make_binary_dense(N_TUPLES, N_FEATURES, seed=0)
    path = tmp_path_factory.mktemp("parallel") / "dense.blk"
    write_block_file(ds, path, tuples_per_block=TUPLES_PER_BLOCK)
    return path


def run_sync(path, n_workers, epochs=2, **kwargs):
    model = LogisticRegression(N_FEATURES, seed=1)
    trainer = ParallelTrainer(
        path,
        model,
        n_workers=n_workers,
        mode="sync",
        epochs=epochs,
        global_batch_size=GBS,
        seed=SEED,
        schedule=SCHEDULE,
        **kwargs,
    )
    return trainer.run()


@pytest.fixture(scope="module")
def sync_run(dense_block_file):
    result = run_sync(dense_block_file, n_workers=2)
    assert_no_leaked_children()
    return result


class TestSyncMode:
    def test_matches_single_process_reference(self, dense_block_file, sync_run):
        ref_model = LogisticRegression(N_FEATURES, seed=1)
        reference = sync_reference_trainer(
            dense_block_file,
            ref_model,
            n_workers=2,
            epochs=2,
            global_batch_size=GBS,
            seed=SEED,
            schedule=SCHEDULE,
        )
        reference.run()
        diff = np.max(
            np.abs(sync_run.model.parameter_vector() - ref_model.parameter_vector())
        )
        assert diff <= 1e-6  # the CI smoke criterion; in practice ~1e-16
        assert diff <= 1e-12

    def test_result_accounting(self, sync_run):
        # 640 tuples / 2 workers / 16-per-worker batch = 20 steps per epoch.
        assert sync_run.mode == "sync"
        assert sync_run.n_workers == 2
        assert sync_run.epochs_run == 2
        assert sync_run.sync_steps == 40
        assert sync_run.tuples_processed == 2 * N_TUPLES
        assert len(sync_run.epoch_walls) == 2
        assert len(sync_run.history.records) == 2
        assert sync_run.history.final.train_score > 0.6

    def test_stats_merged_across_processes(self, sync_run):
        loader = sync_run.loader_stats
        assert loader.buffers_filled > 0
        assert loader.threads_started == loader.threads_joined == 2
        assert sync_run.storage_stats.reads_ok > 0
        assert [d["worker_id"] for d in sync_run.per_worker] == [0, 1]
        assert sum(d["tuples"] for d in sync_run.per_worker) == 2 * N_TUPLES
        report = sync_run.describe()
        assert report["plan"]["n_workers"] == 2

    def test_deterministic_given_seed(self, dense_block_file, sync_run):
        again = run_sync(dense_block_file, n_workers=2)
        assert_no_leaked_children()
        assert np.array_equal(
            again.model.parameter_vector(), sync_run.model.parameter_vector()
        )

    def test_sparse_matches_reference(self, tmp_path):
        ds = make_binary_sparse(200, 30, seed=3)
        path = tmp_path / "sparse.blk"
        write_block_file(ds, path, tuples_per_block=25)
        model = LinearSVM(30, seed=2)
        result = ParallelTrainer(
            path,
            model,
            n_workers=2,
            mode="sync",
            epochs=1,
            global_batch_size=20,
            seed=1,
            schedule=SCHEDULE,
        ).run()
        assert_no_leaked_children()
        ref_model = LinearSVM(30, seed=2)
        sync_reference_trainer(
            path,
            ref_model,
            n_workers=2,
            epochs=1,
            global_batch_size=20,
            seed=1,
            schedule=SCHEDULE,
        ).run()
        diff = np.max(
            np.abs(result.model.parameter_vector() - ref_model.parameter_vector())
        )
        assert diff <= 1e-12


class TestCrashResume:
    def test_kill_mid_epoch_resume_bit_exact(self, dense_block_file, tmp_path):
        clean = run_sync(dense_block_file, n_workers=4, epochs=3)

        cp = CheckpointConfig(path=tmp_path / "par.ckpt", every_tuples=GBS)
        with pytest.raises(InjectedCrash):
            run_sync(
                dense_block_file,
                n_workers=4,
                epochs=3,
                checkpoint=cp,
                fault_plan=FaultPlan(seed=0, crash_at_tuple=800),
            )
        assert_no_leaked_children()

        model = LogisticRegression(N_FEATURES, seed=1)
        trainer = ParallelTrainer(
            dense_block_file,
            model,
            n_workers=4,
            mode="sync",
            epochs=3,
            global_batch_size=GBS,
            seed=SEED,
            schedule=SCHEDULE,
            checkpoint=cp,
        )
        resumed = trainer.run(resume_from=cp.path)
        assert_no_leaked_children()

        diff = np.max(
            np.abs(resumed.model.parameter_vector() - clean.model.parameter_vector())
        )
        assert diff <= 1e-12
        # The resumed history covers all three epochs exactly once.
        assert [r.epoch for r in resumed.history.records] == [0, 1, 2]
        assert resumed.history.final.tuples_seen == 3 * N_TUPLES

    def test_resume_rejects_mismatched_topology(self, dense_block_file, tmp_path):
        cp = CheckpointConfig(path=tmp_path / "topo.ckpt", every_tuples=0)
        run_sync(dense_block_file, n_workers=2, epochs=1, checkpoint=cp)
        assert_no_leaked_children()
        model = LogisticRegression(N_FEATURES, seed=1)
        trainer = ParallelTrainer(
            dense_block_file,
            model,
            n_workers=4,
            mode="sync",
            epochs=2,
            global_batch_size=GBS,
            seed=SEED,
            schedule=SCHEDULE,
        )
        with pytest.raises(ValueError, match="n_workers"):
            trainer.run(resume_from=cp.path)


class TestOtherModes:
    def test_epoch_mode_deterministic(self, dense_block_file):
        vecs = []
        for _ in range(2):
            model = LogisticRegression(N_FEATURES, seed=1)
            result = ParallelTrainer(
                dense_block_file,
                model,
                n_workers=2,
                mode="epoch",
                epochs=2,
                global_batch_size=GBS,
                seed=SEED,
                schedule=SCHEDULE,
            ).run()
            assert_no_leaked_children()
            assert result.tuples_processed == 2 * N_TUPLES
            assert result.history.final.train_score > 0.6
            vecs.append(result.model.parameter_vector())
        assert np.array_equal(vecs[0], vecs[1])

    def test_epoch_mode_with_empty_shards(self, tmp_path):
        # 2 blocks over 4 workers: two shards are empty every epoch; the
        # weighted model average must skip them, not dilute the update.
        ds = make_binary_dense(40, 4, seed=0)
        path = tmp_path / "tiny.blk"
        write_block_file(ds, path, tuples_per_block=20)
        model = LogisticRegression(4, seed=1)
        result = ParallelTrainer(
            path,
            model,
            n_workers=4,
            mode="epoch",
            epochs=2,
            global_batch_size=8,
            seed=0,
            schedule=SCHEDULE,
        ).run()
        assert_no_leaked_children()
        assert result.tuples_processed == 80
        assert not np.array_equal(
            result.model.parameter_vector(),
            LogisticRegression(4, seed=1).parameter_vector(),
        )

    def test_async_mode_trains(self, dense_block_file):
        model = LogisticRegression(N_FEATURES, seed=1)
        result = ParallelTrainer(
            dense_block_file,
            model,
            n_workers=2,
            mode="async",
            epochs=1,
            global_batch_size=GBS,
            seed=SEED,
            schedule=SCHEDULE,
        ).run()
        assert_no_leaked_children()
        assert result.tuples_processed == N_TUPLES
        assert result.history.final.train_score > 0.6


class TestFailurePaths:
    def test_worker_error_propagates_and_children_reaped(
        self, tmp_path, dense_block_file
    ):
        # Build the trainer while the data file exists, then pull the file
        # out from under the workers: every worker fails to open its
        # reader, the barrier aborts, and the coordinator reports the
        # worker's traceback instead of deadlocking.
        import shutil

        path = tmp_path / "vanishing.blk"
        shutil.copy(dense_block_file, path)
        shutil.copy(str(dense_block_file) + ".index.json", str(path) + ".index.json")
        model = LogisticRegression(N_FEATURES, seed=1)
        trainer = ParallelTrainer(
            path,
            model,
            n_workers=2,
            mode="sync",
            epochs=1,
            global_batch_size=GBS,
            seed=SEED,
            schedule=SCHEDULE,
        )
        path.unlink()
        with pytest.raises(WorkerError, match="worker"):
            trainer.run()
        assert_no_leaked_children()

    def test_mode_validation(self, dense_block_file):
        model = LogisticRegression(N_FEATURES, seed=1)
        with pytest.raises(ValueError, match="unknown mode"):
            ParallelTrainer(dense_block_file, model, n_workers=2, mode="gossip")
        with pytest.raises(ValueError, match="divisible"):
            ParallelTrainer(
                dense_block_file, model, n_workers=3, mode="sync", global_batch_size=32
            )
