"""Tests for the columnar bulk decode path (``decode_page`` / ``TupleBatch``)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.sparse import SparseMatrix, SparseRow
from repro.storage import (
    BlockFileReader,
    BufferPool,
    HeapFile,
    TupleBatch,
    TupleSchema,
    decode_page,
    decode_tuple,
    encode_tuple,
    write_block_file,
)


def _encode_run(records, *, start_id=0):
    return b"".join(
        encode_tuple(start_id + i, label, features)
        for i, (label, features) in enumerate(records)
    )


def _assert_batch_matches_scalar(buffer, n, schema):
    """decode_page output must be element-wise identical to decode_tuple."""
    batch = decode_page(buffer, n, schema)
    assert len(batch) == n
    offset = 0
    for i in range(n):
        expected, offset = decode_tuple(buffer, offset, schema)
        assert batch.ids[i] == expected.tuple_id
        assert batch.labels[i] == expected.label
        row = batch.row(i)
        if schema.sparse:
            np.testing.assert_array_equal(row.indices, expected.features.indices)
            np.testing.assert_array_equal(row.values, expected.features.values)
            assert row.n_features == schema.n_features
        else:
            np.testing.assert_array_equal(row, expected.features)


class TestDecodePageDense:
    def test_bulk_matches_scalar(self):
        rng = np.random.default_rng(0)
        schema = TupleSchema(6)
        buf = _encode_run([(float(i % 3 - 1), rng.standard_normal(6)) for i in range(20)])
        _assert_batch_matches_scalar(buf, 20, schema)

    def test_single_tuple_page(self):
        schema = TupleSchema(4)
        buf = _encode_run([(1.0, np.array([1.0, 0.0, -2.0, 3.5]))])
        batch = decode_page(buf, 1, schema)
        assert len(batch) == 1 and not batch.is_sparse
        np.testing.assert_array_equal(batch.row(0), [1.0, 0.0, -2.0, 3.5])

    def test_empty_page(self):
        batch = decode_page(b"", 0, TupleSchema(3))
        assert len(batch) == 0
        assert batch.features_matrix().shape == (0, 3)

    def test_offset(self):
        schema = TupleSchema(2)
        junk = b"\xff" * 7
        buf = junk + _encode_run([(1.0, np.array([2.0, 3.0]))])
        batch = decode_page(buf, 1, schema, offset=len(junk))
        np.testing.assert_array_equal(batch.row(0), [2.0, 3.0])

    def test_truncated_buffer_raises(self):
        schema = TupleSchema(2)
        buf = _encode_run([(1.0, np.array([2.0, 3.0]))])
        with pytest.raises(Exception):
            decode_page(buf[:-4], 1, schema)


class TestDecodePageSparse:
    def test_bulk_matches_scalar(self):
        rng = np.random.default_rng(1)
        schema = TupleSchema(50, sparse=True)
        records = []
        for i in range(15):
            nnz = int(rng.integers(0, 8))
            idx = np.sort(rng.choice(50, size=nnz, replace=False))
            records.append((float(2 * (i % 2) - 1), SparseRow(idx, rng.standard_normal(nnz), 50)))
        buf = _encode_run(records)
        _assert_batch_matches_scalar(buf, 15, schema)

    def test_zero_nnz_rows_roundtrip(self):
        """All-empty sparse rows survive the bulk path (zero-length gathers)."""
        schema = TupleSchema(10, sparse=True)
        empty = SparseRow(np.array([], dtype=np.int64), np.array([]), 10)
        buf = _encode_run([(1.0, empty), (-1.0, empty), (1.0, empty)])
        batch = decode_page(buf, 3, schema)
        assert batch.is_sparse
        np.testing.assert_array_equal(batch.indptr, [0, 0, 0, 0])
        assert batch.indices.size == 0 and batch.values.size == 0
        for i in range(3):
            assert batch.row(i).nnz == 0

    def test_single_tuple_page(self):
        schema = TupleSchema(100, sparse=True)
        row = SparseRow([3, 40, 99], [0.5, -1.0, 2.0], 100)
        batch = decode_page(_encode_run([(1.0, row)]), 1, schema)
        assert batch.is_sparse and len(batch) == 1
        out = batch.row(0)
        np.testing.assert_array_equal(out.indices, row.indices)
        np.testing.assert_array_equal(out.values, row.values)

    def test_dense_tuple_in_sparse_schema_falls_back(self):
        """A dense record in a sparse run is irregular: scalar fallback kicks in."""
        schema = TupleSchema(4, sparse=True)
        buf = _encode_run(
            [(1.0, np.array([1.0, 0.0, 2.0, 0.0])), (-1.0, SparseRow([1], [3.0], 4))]
        )
        batch = decode_page(buf, 2, schema)
        assert batch.is_sparse
        row = batch.row(0)
        np.testing.assert_array_equal(row.indices, [0, 2])
        np.testing.assert_array_equal(row.values, [1.0, 2.0])


class TestDecodePageProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(1, 12),
        d=st.integers(1, 8),
        seed=st.integers(0, 100),
    )
    def test_dense_bulk_equals_scalar(self, n, d, seed):
        rng = np.random.default_rng(seed)
        schema = TupleSchema(d)
        buf = _encode_run(
            [(float(rng.integers(-1, 2)), rng.standard_normal(d)) for _ in range(n)]
        )
        _assert_batch_matches_scalar(buf, n, schema)

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(1, 12),
        d=st.integers(1, 30),
        seed=st.integers(0, 100),
    )
    def test_sparse_bulk_equals_scalar(self, n, d, seed):
        rng = np.random.default_rng(seed)
        schema = TupleSchema(d, sparse=True)
        records = []
        for _ in range(n):
            nnz = int(rng.integers(0, d + 1))
            idx = np.sort(rng.choice(d, size=nnz, replace=False))
            records.append((float(rng.integers(-1, 2)), SparseRow(idx, rng.standard_normal(nnz), d)))
        buf = _encode_run(records)
        _assert_batch_matches_scalar(buf, n, schema)


class TestTupleBatch:
    def test_concat_dense(self):
        rng = np.random.default_rng(2)
        schema = TupleSchema(3)
        a = decode_page(_encode_run([(1.0, rng.standard_normal(3))]), 1, schema)
        b = decode_page(
            _encode_run([(-1.0, rng.standard_normal(3))] * 2, start_id=1), 2, schema
        )
        merged = TupleBatch.concat([a, b])
        assert len(merged) == 3
        np.testing.assert_array_equal(merged.ids, [0, 1, 2])
        np.testing.assert_array_equal(merged.dense[0], a.dense[0])

    def test_concat_sparse(self):
        schema = TupleSchema(9, sparse=True)
        a = decode_page(_encode_run([(1.0, SparseRow([1, 4], [1.0, 2.0], 9))]), 1, schema)
        b = decode_page(
            _encode_run([(-1.0, SparseRow([8], [3.0], 9))], start_id=1), 1, schema
        )
        merged = TupleBatch.concat([a, b])
        np.testing.assert_array_equal(merged.indptr, [0, 2, 3])
        np.testing.assert_array_equal(merged.indices, [1, 4, 8])
        np.testing.assert_array_equal(merged.values, [1.0, 2.0, 3.0])

    def test_concat_empty_list_raises(self):
        with pytest.raises(ValueError):
            TupleBatch.concat([])

    def test_exactly_one_layout_enforced(self):
        ids = np.array([0], dtype=np.int64)
        labels = np.array([1.0])
        with pytest.raises(ValueError):
            TupleBatch(ids, labels, 3)
        with pytest.raises(ValueError):
            TupleBatch(
                ids,
                labels,
                3,
                dense=np.zeros((1, 3)),
                indptr=np.array([0, 0], dtype=np.int64),
                indices=np.array([], dtype=np.int64),
                values=np.array([]),
            )

    def test_features_matrix_sparse(self):
        schema = TupleSchema(5, sparse=True)
        buf = _encode_run([(1.0, SparseRow([0, 4], [1.0, -1.0], 5))])
        mat = decode_page(buf, 1, schema).features_matrix()
        assert isinstance(mat, SparseMatrix)
        np.testing.assert_array_equal(mat.to_dense(), [[1.0, 0.0, 0.0, 0.0, -1.0]])

    def test_to_tuples_roundtrip(self):
        rng = np.random.default_rng(3)
        schema = TupleSchema(4)
        buf = _encode_run([(float(i), rng.standard_normal(4)) for i in range(5)])
        records = decode_page(buf, 5, schema).to_tuples()
        assert [r.tuple_id for r in records] == list(range(5))
        again = TupleBatch.from_tuples(records, schema)
        np.testing.assert_array_equal(again.dense, decode_page(buf, 5, schema).dense)


class TestStorageIntegration:
    def test_read_block_batch_matches_read_block(self, tmp_path, dense_binary):
        path = tmp_path / "batch.blocks"
        write_block_file(dense_binary, path, tuples_per_block=50)
        with BlockFileReader(path) as reader:
            for block_id in range(reader.n_blocks):
                batch = reader.read_block_batch(block_id)
                records = reader.read_block(block_id)
                assert len(batch) == len(records)
                for i, rec in enumerate(records):
                    assert batch.ids[i] == rec.tuple_id
                    np.testing.assert_array_equal(batch.row(i), rec.features)

    def test_bufferpool_batch_cache(self, dense_binary):
        heap = HeapFile.from_dataset(dense_binary, page_bytes=1024)
        pool = BufferPool(heap, capacity_pages=4)
        batch, hit = pool.get_batch_traced(0)
        assert hit is False and len(batch) > 0
        again, hit = pool.get_batch_traced(0)
        assert hit is True
        assert again is batch  # same cached entry, one decode
        # Tuple and batch consumers share the LRU entry.
        tuples, hit = pool.get_page_traced(0)
        assert hit is True
        assert len(tuples) == len(batch)
