"""Tests for softmax regression and the MLP classifier."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import make_multiclass_dense, make_multiclass_sparse
from repro.ml import MLPClassifier, SoftmaxRegression
from repro.ml.models.softmax import log_softmax, softmax

from .test_linear_models import numeric_gradient


class TestSoftmaxFunctions:
    def test_softmax_rows_sum_to_one(self):
        logits = np.random.default_rng(0).standard_normal((5, 4))
        probs = softmax(logits)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(5))
        assert np.all(probs > 0)

    def test_softmax_stability(self):
        probs = softmax(np.array([[1000.0, 0.0], [-1000.0, 0.0]]))
        assert np.isfinite(probs).all()

    def test_log_softmax_consistency(self):
        logits = np.random.default_rng(1).standard_normal((3, 4))
        np.testing.assert_allclose(log_softmax(logits), np.log(softmax(logits)), atol=1e-10)


class TestSoftmaxRegression:
    def test_gradient_matches_numeric(self):
        rng = np.random.default_rng(2)
        model = SoftmaxRegression(4, 3)
        model.params["W"][:] = rng.standard_normal((4, 3)) * 0.3
        model.params["b"][:] = rng.standard_normal(3) * 0.1
        X = rng.standard_normal((10, 4))
        y = rng.integers(0, 3, 10)
        analytic = model.gradient(X, y)
        numeric = numeric_gradient(model, X, y)
        for key in analytic:
            np.testing.assert_allclose(analytic[key], numeric[key], atol=1e-4)

    def test_step_example_equals_gradient_step(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal(4)
        a = SoftmaxRegression(4, 3)
        b = SoftmaxRegression(4, 3)
        a.step_example(x, 2, lr=0.1)
        grads = b.gradient(x.reshape(1, -1), np.array([2]))
        b.apply_gradient(grads, 0.1)
        np.testing.assert_allclose(a.params["W"], b.params["W"], atol=1e-12)
        np.testing.assert_allclose(a.params["b"], b.params["b"], atol=1e-12)

    def test_learns_blobs(self):
        ds = make_multiclass_dense(600, 8, 4, separation=3.0, seed=0)
        model = SoftmaxRegression(8, 4)
        rng = np.random.default_rng(0)
        for _ in range(4):
            for i in rng.permutation(600):
                model.step_example(ds.X[i], int(ds.y[i]), lr=0.05)
        assert model.score(ds.X, ds.y) > 0.9

    def test_sparse_logits_match_dense(self):
        ds = make_multiclass_sparse(40, 200, 3, seed=1)
        model = SoftmaxRegression(200, 3)
        model.params["W"][:] = np.random.default_rng(0).standard_normal((200, 3)) * 0.1
        np.testing.assert_allclose(
            model.logits(ds.X), model.logits(ds.X.to_dense()), atol=1e-10
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            SoftmaxRegression(4, 1)


class TestMLP:
    def test_gradient_matches_numeric(self):
        rng = np.random.default_rng(4)
        model = MLPClassifier(3, 5, 2, seed=0)
        X = rng.standard_normal((8, 3))
        y = rng.integers(0, 2, 8)
        analytic = model.gradient(X, y)
        numeric = numeric_gradient(model, X, y)
        for key in analytic:
            np.testing.assert_allclose(analytic[key], numeric[key], atol=1e-4)

    def test_gradient_with_l2_matches_numeric(self):
        rng = np.random.default_rng(5)
        model = MLPClassifier(3, 4, 3, l2=0.01, seed=1)
        X = rng.standard_normal((6, 3))
        y = rng.integers(0, 3, 6)
        analytic = model.gradient(X, y)
        numeric = numeric_gradient(model, X, y)
        for key in analytic:
            np.testing.assert_allclose(analytic[key], numeric[key], atol=1e-4)

    def test_learns_blobs_with_minibatch(self):
        ds = make_multiclass_dense(600, 10, 4, separation=3.0, seed=2)
        model = MLPClassifier(10, 24, 4, seed=0)
        rng = np.random.default_rng(0)
        for _ in range(15):
            order = rng.permutation(600)
            for lo in range(0, 600, 32):
                idx = order[lo : lo + 32]
                grads = model.gradient(ds.X[idx], ds.y[idx])
                model.apply_gradient(grads, 0.1)
        assert model.score(ds.X, ds.y) > 0.9

    def test_top_k_accuracy_bounds(self):
        ds = make_multiclass_dense(100, 6, 5, seed=3)
        model = MLPClassifier(6, 8, 5, seed=0)
        top1 = model.score(ds.X, ds.y)
        top3 = model.top_k_accuracy(ds.X, ds.y, k=3)
        assert 0.0 <= top1 <= top3 <= 1.0

    def test_sparse_input_supported(self):
        ds = make_multiclass_sparse(30, 100, 3, seed=1)
        model = MLPClassifier(100, 8, 3, seed=0)
        assert np.isfinite(model.loss(ds.X, ds.y))

    def test_validation(self):
        with pytest.raises(ValueError):
            MLPClassifier(0, 4, 2)

    def test_seed_reproducibility(self):
        a = MLPClassifier(4, 6, 3, seed=7)
        b = MLPClassifier(4, 6, 3, seed=7)
        np.testing.assert_allclose(a.params["W1"], b.params["W1"])
