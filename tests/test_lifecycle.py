"""Tests for the managed thread-lifecycle primitives and loader stats."""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.lifecycle import (
    END,
    THREADS,
    Failure,
    ManagedProducer,
    ProducerChannel,
    ThreadRegistry,
)
from repro.core.stats import LoaderStats


def wait_until(predicate, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return predicate()


class TestProducerChannel:
    def test_put_get_roundtrip(self):
        channel = ProducerChannel(2, threading.Event(), LoaderStats())
        assert channel.put("a") is True
        assert channel.get() == "a"

    def test_put_aborts_once_cancelled(self):
        stop = threading.Event()
        channel = ProducerChannel(1, stop, LoaderStats())
        assert channel.put("fills the queue") is True
        stop.set()
        start = time.perf_counter()
        assert channel.put("never lands") is False
        assert time.perf_counter() - start < 1.0

    def test_terminal_put_is_cancellable(self):
        """The END/Failure put must not block forever on a full queue."""
        stop = threading.Event()
        stats = LoaderStats()
        channel = ProducerChannel(1, stop, stats)
        channel.put("item")
        stop.set()
        assert channel.put(END, terminal=True) is False
        assert stats.puts_cancelled == 1

    def test_terminal_put_not_counted_as_item(self):
        stats = LoaderStats()
        channel = ProducerChannel(2, threading.Event(), stats)
        channel.put("item")
        channel.put(END, terminal=True)
        assert stats.items_produced == 1

    def test_drain_empties_queue(self):
        channel = ProducerChannel(3, threading.Event(), LoaderStats())
        for i in range(3):
            channel.put(i)
        assert channel.drain() == 3
        assert channel.depth == 0

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            ProducerChannel(0, threading.Event(), LoaderStats())


class TestThreadRegistry:
    def test_spawn_registers_and_unregisters(self):
        registry = ThreadRegistry()
        release = threading.Event()
        thread = registry.spawn(release.wait, name="t")
        assert registry.live_count() == 1
        assert registry.spawned_total == 1
        release.set()
        thread.join(timeout=5.0)
        assert wait_until(lambda: registry.live_count() == 0)

    def test_global_registry_tracks_loader_threads(self):
        from repro.core import PrefetchLoader

        before = THREADS.live_count()
        list(PrefetchLoader(range(10), depth=2))
        assert THREADS.live_count() == before
        assert THREADS.spawned_total >= 1


class TestManagedProducer:
    def test_produces_then_end(self):
        def body(channel):
            for i in range(5):
                if not channel.put(i):
                    return

        with ManagedProducer(body, depth=2, name="p") as producer:
            got = []
            while True:
                item = producer.get()
                if item is END:
                    break
                got.append(item)
        assert got == list(range(5))
        assert producer.stats.live_threads == 0
        assert not producer.is_alive

    def test_exception_travels_as_failure(self):
        def body(channel):
            raise RuntimeError("producer on fire")

        with ManagedProducer(body, depth=1, name="p") as producer:
            item = producer.get()
            assert isinstance(item, Failure)
            with pytest.raises(RuntimeError, match="producer on fire"):
                raise item.error

    def test_stop_joins_blocked_producer(self):
        """A producer blocked on a full queue is unblocked, joined, and gone."""
        baseline = threading.active_count()

        def body(channel):
            i = 0
            while channel.put(i):
                i += 1

        producer = ManagedProducer(body, depth=1, name="p").start()
        producer.get()  # let it run
        time.sleep(0.05)  # producer now blocked on the full depth-1 queue
        producer.stop()
        assert not producer.is_alive
        assert producer.stats.live_threads == 0
        assert wait_until(lambda: threading.active_count() == baseline)

    def test_stop_raises_on_zombie(self):
        """A thread that ignores cancellation raises instead of leaking silently."""
        woke = threading.Event()

        def body(channel):
            woke.wait(1.0)  # ignores the stop event past the join timeout

        producer = ManagedProducer(body, depth=1, name="zombie", join_timeout=0.2).start()
        with pytest.raises(RuntimeError, match="zombie"):
            producer.stop()
        assert producer.stats.live_threads == 1  # leak is visible in stats
        woke.set()  # let the thread die; a later stop() now succeeds
        assert wait_until(lambda: not producer.is_alive)
        producer.stop()
        assert producer.stats.live_threads == 0

    def test_double_start_rejected(self):
        producer = ManagedProducer(lambda channel: None, depth=1).start()
        with pytest.raises(RuntimeError, match="already started"):
            producer.start()
        producer.stop()


class TestLoaderStats:
    def test_counters_roundtrip(self):
        stats = LoaderStats("s")
        stats.record_put(depth_after=2, stalled_s=0.5)
        stats.record_get(waited_s=0.25)
        stats.record_buffer_filled(10)
        stats.record_buffer_drained(10)
        stats.record_thread_started()
        d = stats.as_dict()
        assert d["items_produced"] == 1
        assert d["items_consumed"] == 1
        assert d["buffers_filled"] == 1
        assert d["buffers_drained"] == 1
        assert d["tuples_buffered"] == 10
        assert d["max_queue_depth"] == 2
        assert d["live_threads"] == 1
        assert d["overlap_fraction"] == pytest.approx(0.5 / 0.75)

    def test_overlap_defaults_to_one_without_waiting(self):
        assert LoaderStats().overlap_fraction == 1.0

    def test_reset(self):
        stats = LoaderStats()
        stats.record_put(1, 0.1)
        stats.reset()
        assert stats.as_dict()["items_produced"] == 0
        assert stats.producer_stall_s == 0.0

    def test_measured_stall_and_wait(self):
        """Slow consumer → producer stalls; slow producer → consumer waits."""
        from repro.core import PrefetchLoader

        stall_stats = LoaderStats("stall")
        for _ in PrefetchLoader(range(20), depth=1, stats=stall_stats):
            time.sleep(0.005)
        assert stall_stats.producer_stall_s > 0.0

        def slow_source():
            for i in range(5):
                time.sleep(0.01)
                yield i

        wait_stats = LoaderStats("wait")
        list(PrefetchLoader(slow_source(), depth=2, stats=wait_stats))
        assert wait_stats.consumer_wait_s > 0.0
