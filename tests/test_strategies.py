"""Tests for the baseline shuffle strategies (Section 3)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import BlockLayout
from repro.shuffle import (
    STRATEGY_NAMES,
    EpochShuffle,
    MRSShuffle,
    NoShuffle,
    ShuffleOnce,
    SlidingWindowShuffle,
    epoch_rng,
    make_strategy,
)
from repro.theory import position_rank_correlation

from .conftest import assert_is_permutation


class TestEpochRNG:
    def test_deterministic(self):
        a = epoch_rng(3, 5).integers(0, 1000, 10)
        b = epoch_rng(3, 5).integers(0, 1000, 10)
        np.testing.assert_array_equal(a, b)

    def test_epoch_sensitivity(self):
        a = epoch_rng(3, 5).integers(0, 1000, 10)
        b = epoch_rng(3, 6).integers(0, 1000, 10)
        assert not np.array_equal(a, b)


class TestNoShuffle:
    def test_identity_order(self):
        s = NoShuffle(100)
        np.testing.assert_array_equal(s.epoch_indices(0), np.arange(100))
        np.testing.assert_array_equal(s.epoch_indices(7), np.arange(100))

    def test_trace_is_sequential(self):
        s = NoShuffle(100)
        trace = s.epoch_trace(tuple_bytes=64.0)
        assert all(e.kind == "seq" for e in trace)
        assert trace.total_bytes == 6400

    def test_no_setup_cost(self):
        assert len(NoShuffle(10).setup_trace(8.0)) == 0


class TestShuffleOnce:
    def test_same_permutation_every_epoch(self):
        s = ShuffleOnce(200, seed=3)
        np.testing.assert_array_equal(s.epoch_indices(0), s.epoch_indices(5))

    def test_is_permutation(self):
        assert_is_permutation(ShuffleOnce(150, seed=1).epoch_indices(0), 150)

    def test_actually_shuffled(self):
        order = ShuffleOnce(500, seed=0).epoch_indices(0)
        assert abs(position_rank_correlation(order)) < 0.2

    def test_setup_charges_sort_passes(self):
        s = ShuffleOnce(100, seed=0)
        trace = s.setup_trace(tuple_bytes=10.0)
        assert trace.read_bytes == 2 * 1000  # two read passes
        assert trace.write_bytes == 2 * 1000  # two write passes

    def test_traits_mark_disk_copy(self):
        assert ShuffleOnce.traits.extra_disk_copies == 1


class TestEpochShuffle:
    def test_different_permutation_each_epoch(self):
        s = EpochShuffle(200, seed=3)
        assert not np.array_equal(s.epoch_indices(0), s.epoch_indices(1))

    def test_each_epoch_is_permutation(self):
        s = EpochShuffle(80, seed=2)
        for epoch in range(3):
            assert_is_permutation(s.epoch_indices(epoch), 80)

    def test_per_epoch_shuffle_cost(self):
        s = EpochShuffle(100, seed=0)
        assert len(s.setup_trace(10.0)) == 0
        trace = s.epoch_trace(10.0)
        assert trace.write_bytes > 0  # pays the sort every epoch


class TestSlidingWindow:
    def test_is_permutation(self):
        s = SlidingWindowShuffle(300, window=30, seed=0)
        assert_is_permutation(s.epoch_indices(0), 300)

    def test_preserves_locality(self):
        # Tuples cannot move far: the rank correlation stays near 1
        # (the Figure 3b "linear shape").
        s = SlidingWindowShuffle(1000, window=100, seed=0)
        assert position_rank_correlation(s.epoch_indices(0)) > 0.9

    def test_window_larger_than_data(self):
        s = SlidingWindowShuffle(50, window=500, seed=0)
        assert_is_permutation(s.epoch_indices(0), 50)
        # Degenerates to a full shuffle.
        assert abs(position_rank_correlation(s.epoch_indices(0))) < 0.5

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            SlidingWindowShuffle(10, window=0)

    def test_epochs_differ(self):
        s = SlidingWindowShuffle(200, window=20, seed=1)
        assert not np.array_equal(s.epoch_indices(0), s.epoch_indices(1))


class TestMRS:
    def test_emits_one_step_per_scanned_tuple(self):
        s = MRSShuffle(400, buffer_tuples=40, seed=0)
        assert s.epoch_indices(0).size == 400

    def test_indices_in_range(self):
        order = MRSShuffle(300, buffer_tuples=30, seed=1).epoch_indices(0)
        assert order.min() >= 0 and order.max() < 300

    def test_buffered_tuples_repeat(self):
        # The loop thread reuses buffered tuples => duplicates appear
        # (the paper's "data skew" caveat).
        order = MRSShuffle(500, buffer_tuples=50, seed=0).epoch_indices(0)
        assert len(set(order.tolist())) < 500

    def test_dropped_stream_mostly_in_order(self):
        # MRS improves over sliding window but the dropped tuples still
        # arrive in generally increasing order.
        order = MRSShuffle(1000, buffer_tuples=100, seed=0).epoch_indices(0)
        corr = position_rank_correlation(order)
        assert 0.3 < corr < 0.99

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            MRSShuffle(10, buffer_tuples=0)
        with pytest.raises(ValueError):
            MRSShuffle(10, buffer_tuples=2, mix_interval=0)


class TestRegistry:
    def test_all_names_constructible(self, layout_600):
        for name in STRATEGY_NAMES:
            s = make_strategy(name, layout_600, buffer_fraction=0.1, seed=0)
            assert s.epoch_indices(0).size == 600

    def test_unknown_name(self, layout_600):
        with pytest.raises(KeyError):
            make_strategy("quantum_shuffle", layout_600)

    def test_invalid_buffer_fraction(self, layout_600):
        with pytest.raises(ValueError):
            make_strategy("mrs", layout_600, buffer_fraction=0.0)

    def test_describe(self, layout_600):
        desc = make_strategy("corgipile", layout_600).describe()
        assert desc["strategy"] == "corgipile"
        assert desc["needs_buffer"] is True
        assert desc["extra_disk_copies"] == 0


@settings(max_examples=25, deadline=None)
@given(
    name=st.sampled_from(["no_shuffle", "shuffle_once", "epoch_shuffle", "sliding_window"]),
    n=st.integers(2, 300),
    per_block=st.integers(1, 40),
    seed=st.integers(0, 100),
)
def test_property_permutation_strategies_emit_permutations(name, n, per_block, seed):
    layout = BlockLayout(n, per_block)
    s = make_strategy(name, layout, buffer_fraction=0.2, seed=seed)
    order = s.epoch_indices(0)
    assert sorted(order.tolist()) == list(range(n))
