"""Coverage for remaining library paths: base-model fallback, streaming
evaluation, buffer-fill edge cases."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DataLoader
from repro.core.dataloader import collate
from repro.data import make_multiclass_dense
from repro.ml import ExponentialDecay, MLPClassifier
from repro.ml.streaming import train_streaming
from repro.storage.codec import TrainingTuple


class TestBaseModelFallback:
    def test_mlp_step_example_uses_generic_path(self):
        """MLP has no specialised per-tuple update: the SupervisedModel
        fallback must route through gradient() and actually learn."""
        ds = make_multiclass_dense(300, 6, 3, separation=3.0, seed=0)
        model = MLPClassifier(6, 12, 3, seed=0)
        before = model.loss(ds.X, ds.y)
        rng = np.random.default_rng(0)
        for _ in range(2):
            for i in rng.permutation(300):
                model.step_example(ds.X[i], float(ds.y[i]), lr=0.05)
        assert model.loss(ds.X, ds.y) < before
        assert model.score(ds.X, ds.y) > 0.8

    def test_mlp_step_example_sparse_row(self):
        from repro.data import make_multiclass_sparse

        ds = make_multiclass_sparse(50, 100, 3, seed=0)
        model = MLPClassifier(100, 8, 3, seed=0)
        model.step_example(ds.X.row(0), float(ds.y[0]), lr=0.01)  # must not raise


class TestStreamingEvaluation:
    def _records(self, ds):
        return [
            TrainingTuple(i, float(ds.y[i]), ds.X[i]) for i in range(ds.n_tuples)
        ]

    def test_without_eval_sets_loss_is_nan(self):
        ds = make_multiclass_dense(120, 5, 3, separation=3.0, seed=0)
        model = MLPClassifier(5, 8, 3, seed=0)
        records = self._records(ds)

        history = train_streaming(
            model,
            lambda epoch: DataLoader(records, batch_size=16),
            epochs=2,
            schedule=ExponentialDecay(0.1),
        )
        assert np.isnan(history.final.train_loss)
        assert history.final.test_score is None
        assert history.final.tuples_seen == 240

    def test_with_train_eval(self):
        ds = make_multiclass_dense(120, 5, 3, separation=3.0, seed=0)
        model = MLPClassifier(5, 8, 3, seed=0)
        records = self._records(ds)
        history = train_streaming(
            model,
            lambda epoch: DataLoader(records, batch_size=16),
            epochs=3,
            schedule=ExponentialDecay(0.2),
            train_eval=ds,
            test=ds,
        )
        assert history.train_losses[-1] < history.train_losses[0]
        assert history.final.test_score > 0.8


class TestCollateEdge:
    def test_single_record(self):
        record = TrainingTuple(3, 1.0, np.array([1.0, 2.0]))
        batch = collate([record])
        assert batch.X.shape == (1, 2)
        assert batch.y.tolist() == [1.0]
        assert len(batch) == 1
