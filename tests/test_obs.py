"""Tests for the unified observability subsystem (``repro.obs``).

Covers the PR's acceptance criteria directly:

* registry merge is associative, including across a real spawn boundary
  (4-worker parallel run → one merged registry + one merged trace);
* spans nest correctly and survive exceptions;
* tracing disabled costs < 5 % on a fused GLM epoch (timed with the
  perf-harness ``time_best``);
* the JSONL trace / JSON metrics exporters round-trip and validate against
  the checked-in schema;
* the counter-vs-span overlap cross-check holds (and the phantom-stall
  accounting bug it caught stays fixed).
"""

from __future__ import annotations

import json
import pickle
import threading
import time

import numpy as np
import pytest

from repro import obs
from repro.core.lifecycle import ProducerChannel
from repro.bench.timing import time_best
from repro.db import overlap_crosscheck, overlap_report
from repro.ml.kernels import glm_epoch_dense
from repro.ml.losses import LogisticLoss
from repro.obs import LoaderMetrics, Registry, Tracer
from repro.obs.registry import RESERVOIR_MAX


@pytest.fixture(autouse=True)
def _clean_session_obs():
    """Every test starts and ends with pristine session telemetry."""
    obs.reset()
    obs.disable()
    yield
    obs.reset()
    obs.disable()


def _strip_name(snapshot: dict) -> dict:
    return {k: v for k, v in snapshot.items() if k != "name"}


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


class TestRegistry:
    def test_counter_gauge_histogram_basics(self):
        reg = Registry("t")
        reg.inc("a")
        reg.inc("a", 2)
        reg.set_gauge("g", 3.0)
        reg.set_max("m", 1.0)
        reg.set_max("m", 0.5)  # not a new high-water mark
        for v in (1.0, 2.0, 3.0):
            reg.observe("h", v)
        assert reg.counter("a") == 3
        assert reg.gauge("g") == 3.0
        assert reg.gauge("m") == 1.0
        h = reg.histogram("h")
        assert h["count"] == 3 and h["sum"] == 6.0
        assert h["min"] == 1.0 and h["max"] == 3.0 and h["mean"] == 2.0
        assert reg.histogram("missing") is None
        assert reg.counter("missing") == 0

    @staticmethod
    def _make(seed: int) -> Registry:
        rng = np.random.default_rng(seed)
        reg = Registry("r")
        reg.inc("blocks", int(rng.integers(1, 100)))
        reg.inc(f"only.{seed}", 1)
        reg.set_max("depth", float(rng.integers(1, 50)))
        for v in rng.random(300):  # 3 × 300 > RESERVOIR_MAX: truncation hit
            reg.observe("wait_s", float(v))
        return reg

    def test_merge_is_associative(self):
        a, b, c = (self._make(s) for s in range(3))
        left = Registry("r").merge(self._make(0)).merge(self._make(1)).merge(self._make(2))
        inner = Registry("r").merge(self._make(1)).merge(self._make(2))
        right = Registry("r").merge(self._make(0)).merge(inner)
        assert _strip_name(left.snapshot()) == _strip_name(right.snapshot())
        # Operator form agrees with the in-place fold.
        total = a + b + c
        assert _strip_name(total.snapshot()) == _strip_name(left.snapshot())
        # Sources untouched by the fold.
        assert a.counter("blocks") == self._make(0).counter("blocks")
        # The reservoir stays bounded.
        assert len(total._hists["wait_s"]["reservoir"]) == RESERVOIR_MAX

    def test_merge_type_errors(self):
        with pytest.raises(TypeError):
            Registry("r").merge(LoaderMetrics("x"))
        with pytest.raises(TypeError):
            obs.merge(Registry("r"), Tracer())

    def test_pickle_roundtrip(self):
        reg = self._make(7)
        clone = pickle.loads(pickle.dumps(reg))
        assert clone.snapshot() == reg.snapshot()
        clone.inc("blocks")  # fresh lock: still usable
        assert clone.counter("blocks") == reg.counter("blocks") + 1

    def test_from_snapshot_restores_moments(self):
        reg = self._make(3)
        rebuilt = Registry.from_snapshot(reg.snapshot())
        assert rebuilt.counter("blocks") == reg.counter("blocks")
        assert rebuilt.gauge("depth") == reg.gauge("depth")
        h0, h1 = reg.histogram("wait_s"), rebuilt.histogram("wait_s")
        for key in ("count", "sum", "min", "max", "mean"):
            assert h1[key] == h0[key]
        assert "p50" not in h1  # reservoir is not part of the snapshot


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------


class TestSpans:
    def test_nesting_records_parent_ids(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer", epoch=1) as outer:
            with tracer.span("inner") as inner:
                assert tracer.current_span_id() == inner.span_id
            assert tracer.current_span_id() == outer.span_id
        assert tracer.current_span_id() is None
        inner_span, outer_span = tracer.spans  # inner finishes first
        assert inner_span.parent_id == outer_span.span_id
        assert outer_span.parent_id is None
        assert outer_span.attrs == {"epoch": 1}
        assert inner_span.duration_s <= outer_span.duration_s

    def test_exception_marks_span_and_propagates(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(ValueError):
            with tracer.span("epoch", epoch=0):
                raise ValueError("boom")
        (span,) = tracer.spans
        assert span.attrs["error"] == "ValueError"
        # The stack unwound: a new span is again a root.
        assert tracer.current_span_id() is None
        with tracer.span("next"):
            pass
        assert tracer.spans[-1].parent_id is None

    def test_disabled_span_is_shared_singleton(self):
        assert not obs.enabled()
        s1 = obs.span("anything", k=1)
        s2 = obs.span("else")
        assert s1 is s2 is obs.NULL_SPAN
        with s1 as s:
            s.set(ignored=True)  # attribute writes vanish silently
        assert obs.get_tracer().spans == []
        assert obs.add_span("x", 0.0, 1.0) is None

    def test_threads_get_independent_stacks(self):
        tracer = Tracer(enabled=True)
        seen = {}

        def worker():
            with tracer.span("thread_root"):
                seen["tid_parent"] = tracer.spans  # not yet finished
                seen["current"] = tracer.current_span_id()

        with tracer.span("main_root"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        by_name = {s.name: s for s in tracer.spans}
        # The thread's root span must not be parented under main_root.
        assert by_name["thread_root"].parent_id is None
        assert by_name["main_root"].parent_id is None

    def test_max_spans_cap_counts_drops(self):
        tracer = Tracer(enabled=True, max_spans=3)
        for i in range(5):
            with tracer.span("s", i=i):
                pass
        assert len(tracer.spans) == 3
        assert tracer.dropped == 2

    def test_tracer_merge_remaps_ids_and_stamps_worker(self):
        home = Tracer(enabled=True)
        with home.span("coordinator"):
            pass
        away = Tracer(enabled=True)
        with away.span("worker_epoch"):
            with away.span("worker_fill"):
                pass
        home.merge(away, worker=3)
        by_name = {s.name: s for s in home.spans}
        fill, epoch = by_name["worker_fill"], by_name["worker_epoch"]
        assert fill.attrs["worker"] == 3 and epoch.attrs["worker"] == 3
        assert fill.parent_id == epoch.span_id  # parent link survived remap
        ids = [s.span_id for s in home.spans]
        assert len(ids) == len(set(ids))  # no collisions with local spans

    def test_shared_anchor_merges_same_process_spans_without_skew(self):
        # Regression for the trace-skew bug: every tracer used to estimate
        # its own wall anchor, so merging two same-process tracers shifted
        # spans by the difference of two noisy (or NTP-stepped) estimates.
        # A session tracer constructed with the coordinator's anchor must
        # merge with an exact-zero shift.
        coordinator = Tracer(enabled=True)
        session = Tracer(enabled=True, base_wall=coordinator.base_wall)
        assert session.base_wall == coordinator.base_wall
        session.add_span("session_stmt", 10.0, 11.0)
        coordinator.add_span("coord_ref", 10.0, 11.0)
        coordinator.merge(session, worker="s1")
        starts = {s.name: (s.start, s.end) for s in coordinator.spans}
        # Identical monotonic timestamps stay identical after the merge.
        assert starts["session_stmt"] == starts["coord_ref"] == (10.0, 11.0)

    def test_foreign_anchor_still_rebases_cross_process_spans(self):
        # A tracer from another process (different perf_counter epoch) keeps
        # its own anchor, and merge shifts by exactly the anchor difference.
        home = Tracer(enabled=True)
        away = Tracer(enabled=True, base_wall=home.base_wall + 5.0)
        away.add_span("worker_span", 2.0, 3.0)
        home.merge(away, worker=0)
        (span,) = home.by_name("worker_span")
        assert span.start == pytest.approx(7.0)
        assert span.end == pytest.approx(8.0)
        # Wall-clock placement is unchanged by the rebase.
        assert home.base_wall + span.start == pytest.approx(
            away.base_wall + 2.0
        )


# ----------------------------------------------------------------------
# Disabled-mode overhead (< 5 % on a fused GLM epoch)
# ----------------------------------------------------------------------


class TestDisabledOverhead:
    def test_disabled_tracing_under_five_percent_on_fused_epoch(self):
        rng = np.random.default_rng(0)
        X = rng.standard_normal((4000, 16))
        y = rng.choice([-1.0, 1.0], size=4000)
        order = rng.permutation(4000)
        loss = LogisticLoss()
        batches = np.array_split(order, 64)

        def plain_epoch():
            w = np.zeros(16)
            b = 0.0
            for batch in batches:
                b = glm_epoch_dense(w, b, loss, X, y, batch, 0.05, 1e-4, True)
            return w, b

        def instrumented_epoch():
            # Same work, instrumented at the trainer's density (one span +
            # two counter bumps per fused step) with tracing disabled.
            w = np.zeros(16)
            b = 0.0
            with obs.span("ml.epoch", epoch=0):
                for batch in batches:
                    with obs.span("ml.fused_step") as sp:
                        b = glm_epoch_dense(w, b, loss, X, y, batch, 0.05, 1e-4, True)
                        sp.set(n_tuples=len(batch))
                    obs.inc("ml.fused_steps")
                    obs.inc("ml.fused_tuples", len(batch))
            return w, b

        assert not obs.enabled()
        assert np.allclose(plain_epoch()[0], instrumented_epoch()[0])
        # Best-of-N absorbs scheduler noise; allow a few attempts before
        # declaring the overhead real rather than a noisy minimum.
        for attempt in range(3):
            base = time_best(plain_epoch, repeats=5)
            instrumented = time_best(instrumented_epoch, repeats=5)
            if instrumented <= 1.05 * base:
                break
        assert instrumented <= 1.05 * base, (
            f"disabled-mode overhead {instrumented / base - 1:.1%} exceeds 5% "
            f"({instrumented:.6f}s vs {base:.6f}s)"
        )


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------


class TestExportRoundTrip:
    def _record_session(self):
        with obs.span("epoch", epoch=0):
            with obs.span("fill", n_tuples=32):
                pass
            with obs.span("drain"):
                pass
        obs.inc("blocks", 5)
        obs.set_gauge("depth", 2.0)
        obs.observe("wait_s", 0.25)

    def test_trace_jsonl_roundtrip_and_schema(self, tmp_path):
        trace = tmp_path / "run.trace.jsonl"
        metrics = tmp_path / "run.metrics.json"
        with obs.trace_to(trace, metrics_path=metrics) as (tracer, registry):
            self._record_session()
        assert not obs.enabled()  # trace_to restores the disabled state

        meta, events = obs.read_trace_jsonl(trace)
        assert meta["version"] == 1 and meta["span_count"] == 3
        assert obs.validate_events(meta, events, obs.load_schema()) == []

        span_events = [e for e in events if e["type"] == "span"]
        assert [e["name"] for e in span_events] == ["fill", "drain", "epoch"]
        by_name = {e["name"]: e for e in span_events}
        assert by_name["fill"]["parent"] == by_name["epoch"]["id"]
        assert by_name["fill"]["attrs"] == {"n_tuples": 32}
        assert all(e["duration_s"] >= 0 for e in span_events)

        # The embedded metrics event and the standalone metrics file agree,
        # and both rebuild into a live registry.
        (metrics_event,) = [e for e in events if e["type"] == "metrics"]
        on_disk = json.loads(metrics.read_text())
        assert on_disk["counters"] == metrics_event["counters"] == {"blocks": 5}
        rebuilt = Registry.from_snapshot(on_disk)
        assert rebuilt.counter("blocks") == 5
        assert rebuilt.gauge("depth") == 2.0
        assert rebuilt.histogram("wait_s")["count"] == 1

    def test_render_report_from_tracer_and_file(self, tmp_path):
        trace = tmp_path / "run.trace.jsonl"
        with obs.trace_to(trace) as (tracer, registry):
            self._record_session()
        for source in (tracer, trace):
            text = obs.report(source, registry=obs.get_registry())
            assert "spans: 3" in text
            assert "fill" in text and "epoch" in text
            assert "blocks" in text  # counters section
        empty = obs.report([], registry=None)
        assert "no spans recorded" in empty

    def test_validator_flags_broken_traces(self, tmp_path):
        trace = tmp_path / "run.trace.jsonl"
        with obs.trace_to(trace):
            self._record_session()
        meta, events = obs.read_trace_jsonl(trace)
        good = [dict(e) for e in events if e["type"] == "span"]
        # Dangling parent.
        bad = [dict(e) for e in good]
        bad[0]["parent"] = 999
        assert any("does not resolve" in p for p in obs.validate_events(meta, bad))
        # Negative interval.
        bad = [dict(e) for e in good]
        bad[0]["end_s"] = bad[0]["start_s"] - 1.0
        assert any("negative duration" in p for p in obs.validate_events(meta, bad))
        # Type violation.
        bad = [dict(e) for e in good]
        bad[0]["name"] = 7
        assert any("expected" in p for p in obs.validate_events(meta, bad))


# ----------------------------------------------------------------------
# Overlap cross-check + phantom-stall regression
# ----------------------------------------------------------------------


class TestOverlapCrosscheck:
    def test_nonblocking_puts_record_zero_stall(self):
        """Regression: non-blocking puts must not book phantom stall time.

        ``ProducerChannel.put`` used to route every put through the timed
        slow path, so thousands of puts into a never-full queue accumulated
        microseconds of lock traffic into a bogus ``producer_stall_s`` —
        which is exactly what the counter-vs-span cross-check exposed.
        """
        stats = LoaderMetrics("unit")
        chan = ProducerChannel(depth=10_000, stop=threading.Event(), stats=stats)
        for i in range(2_000):
            assert chan.put(i)
        assert stats.producer_stall_s == 0.0  # exact, not approximate
        assert stats.items_produced == 2_000

    @staticmethod
    def _span(name, duration, loader="unit"):
        return {"name": name, "duration_s": duration, "attrs": {"loader": loader}}

    def test_identity_holds_on_synthetic_run(self):
        stats = LoaderMetrics("unit")
        stats.producer_stall_s = 0.2
        stats.consumer_wait_s = 0.3
        spans = [
            self._span("loader.producer", 1.0),
            self._span("loader.producer_stall", 0.2),
            self._span("loader.consumer_wait", 0.3),
            self._span("loader.producer", 9.9, loader="someone_else"),
        ]
        row = overlap_crosscheck(stats, spans, wall_s=1.0)
        assert row["ok"], row
        assert row["counter_overlap_s"] == pytest.approx(0.5)
        assert row["span_overlap_s"] == pytest.approx(0.5)
        assert row["gap_s"] == pytest.approx(0.0)

    def test_detects_counter_span_disagreement(self):
        stats = LoaderMetrics("unit")
        stats.producer_stall_s = 0.8  # counters claim heavy stalling…
        spans = [
            self._span("loader.producer", 1.0),  # …spans saw none
        ]
        row = overlap_crosscheck(stats, spans, wall_s=1.0)
        assert not row["ok"], row
        assert row["gap_s"] > row["tolerance_s"]

    def test_overlap_report_accepts_metrics_and_dicts(self):
        stats = LoaderMetrics("unit")
        stats.record_put(1, 0.5)
        stats.record_get(0.5)
        for source in (stats, stats.as_dict()):
            row = overlap_report(source)
            assert row["loader"] == "unit"
            assert row["overlap_fraction"] == pytest.approx(0.5)


# ----------------------------------------------------------------------
# Merge across the spawn boundary: one trace for a 4-worker run
# ----------------------------------------------------------------------


class TestParallelMergedTrace:
    """The PR's headline acceptance test: a 4-worker parallel-train run
    produces a *single* merged trace and registry on the coordinator.

    Workers trace locally (a spawned process starts with a fresh, disabled
    tracer that ``worker_main`` enables when the coordinator was tracing),
    ship their telemetry home with the final stats message, and the
    coordinator folds everything into one attributable timeline.
    """

    N_TUPLES = 320
    N_FEATURES = 8
    N_WORKERS = 4
    EPOCHS = 2

    @pytest.fixture(scope="class")
    def merged_run(self, tmp_path_factory):
        from repro.data.generators import make_binary_dense
        from repro.ml.models import LogisticRegression
        from repro.ml.schedules import ExponentialDecay
        from repro.parallel import ParallelTrainer
        from repro.storage import write_block_file

        ds = make_binary_dense(self.N_TUPLES, self.N_FEATURES, seed=0)
        path = tmp_path_factory.mktemp("obs_parallel") / "train.blk"
        write_block_file(ds, path, tuples_per_block=20)

        obs.reset()
        with obs.trace_to() as (tracer, registry):
            wall_t0 = time.perf_counter()
            result = ParallelTrainer(
                path,
                LogisticRegression(self.N_FEATURES, seed=1),
                n_workers=self.N_WORKERS,
                mode="sync",
                epochs=self.EPOCHS,
                global_batch_size=64,
                seed=5,
                schedule=ExponentialDecay(0.05),
            ).run()
            wall_s = time.perf_counter() - wall_t0
        # Detach from the session singletons: the per-test autouse reset
        # must not wipe this class-scoped capture.
        tracer = pickle.loads(pickle.dumps(tracer))
        registry = pickle.loads(pickle.dumps(registry))
        obs.reset()
        yield tracer, registry, result, wall_s

    def test_one_worker_span_per_worker(self, merged_run):
        tracer, _, _, _ = merged_run
        workers = tracer.by_name("worker")
        assert len(workers) == self.N_WORKERS
        assert {s.attrs["worker"] for s in workers} == set(range(self.N_WORKERS))

    def test_merged_ids_unique_and_parents_resolve(self, merged_run):
        tracer, _, _, _ = merged_run
        ids = [s.span_id for s in tracer.spans]
        assert len(ids) == len(set(ids))
        id_set = set(ids)
        for s in tracer.spans:
            assert s.parent_id is None or s.parent_id in id_set, s

    def test_worker_time_accounting_vs_coordinator_wall(self, merged_run):
        """Per-worker span totals account for the coordinator wall-clock.

        Each worker's lifetime span sits inside the coordinator's wall
        (plus a spawn/teardown tolerance), and its busy time — lifetime
        minus its own barrier waits — can never exceed that wall.
        """
        tracer, _, _, wall_s = merged_run
        waits_by_worker: dict[int, float] = {}
        for s in tracer.by_name("parallel.barrier_wait"):
            waits_by_worker.setdefault(s.attrs["worker"], 0.0)
            waits_by_worker[s.attrs["worker"]] += s.duration_s
        assert set(waits_by_worker) == set(range(self.N_WORKERS))
        for w in tracer.by_name("worker"):
            wid = w.attrs["worker"]
            assert w.duration_s <= wall_s + 0.5, (wid, w.duration_s, wall_s)
            busy = w.duration_s - waits_by_worker[wid]
            assert 0.0 <= busy <= wall_s + 0.5, (wid, busy, wall_s)
        # Coordinator epochs cover the training portion of the wall.
        epochs = tracer.by_name("parallel.epoch")
        assert len(epochs) == self.EPOCHS
        assert sum(s.attrs["wall_s"] for s in epochs) <= wall_s + 1e-6

    def test_worker_registries_fold_into_one(self, merged_run):
        _, registry, result, _ = merged_run
        assert registry.counter("parallel.epochs") == self.EPOCHS
        # Every worker reads its 4-block shard every epoch (320/20 = 16
        # blocks per epoch across the 4 spawned processes).  The merged
        # counter must carry at least those worker-side reads — a
        # coordinator-only registry would stop well short of that.
        assert registry.counter("storage.blockfile.blocks_read") >= 16 * self.EPOCHS
        hist = registry.histogram("parallel.barrier_wait_s")
        assert hist is not None and hist["count"] > 0
        assert result.epochs_run == self.EPOCHS

    def test_merged_trace_exports_and_validates(self, merged_run, tmp_path):
        tracer, registry, _, _ = merged_run
        trace = tmp_path / "parallel.trace.jsonl"
        obs.write_trace_jsonl(trace, tracer, registry)
        meta, events = obs.read_trace_jsonl(trace)
        assert obs.validate_events(meta, events, obs.load_schema()) == []
        text = obs.report(trace, registry=registry)
        assert "worker" in text and "parallel.epoch" in text


# ----------------------------------------------------------------------
# Legacy shims
# ----------------------------------------------------------------------


class TestLegacyShims:
    def test_legacy_classes_warn_and_stay_compatible(self):
        from repro.core.stats import LoaderStats, StorageStats

        with pytest.warns(DeprecationWarning, match="LoaderStats"):
            legacy = LoaderStats("old")
        with pytest.warns(DeprecationWarning, match="StorageStats"):
            StorageStats("old")
        assert isinstance(legacy, LoaderMetrics)
        legacy.record_put(1, 0.25)
        modern = LoaderMetrics("old")
        modern.record_get(0.75)
        merged = obs.merge(modern, legacy)  # cross-boundary merge is legal
        assert merged is modern
        assert merged.producer_stall_s == 0.25
        assert merged.consumer_wait_s == 0.75
        assert overlap_report(merged)["overlap_fraction"] == pytest.approx(0.25)
