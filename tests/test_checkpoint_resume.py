"""Crash-safe checkpoint/resume: killed runs finish with identical weights.

Satellite (b): a run killed at a randomized tuple N and resumed from its
last checkpoint must produce final weights within 1e-12 of the
uninterrupted run — for fused and scalar kernels, dense and sparse data,
across ≥3 seeds.  The comparison baseline runs with the *same* checkpoint
cadence, because the fused kernels flush their lazy L2 scaling at chunk
boundaries (cadence is part of the numeric contract; see
``CheckpointConfig``).  ``CHAOS_SEED`` shifts the seed set per CI job.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import CorgiPileDataset, DataLoader
from repro.data import make_binary_dense, make_binary_sparse
from repro.faults import FaultPlan, InjectedCrash
from repro.ml import (
    Adam,
    CheckpointConfig,
    LogisticRegression,
    Trainer,
    load_checkpoint,
    save_checkpoint,
    train_streaming,
)
from repro.shuffle import EpochShuffle
from repro.storage import write_block_file

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))
SEEDS = [CHAOS_SEED * 3 + k for k in range(3)]

N_TUPLES = 300
EPOCHS = 3
CADENCE = 64


def _dataset(sparse: bool):
    if sparse:
        return make_binary_sparse(N_TUPLES, 60, nnz_per_row=8, separation=1.0, seed=13)
    return make_binary_dense(N_TUPLES, 10, separation=1.2, seed=11)


def _trainer(dataset, seed, fused, ckpath=None, plan=None, batch_size=1, optimizer=None):
    model = LogisticRegression(dataset.n_features)
    trainer = Trainer(
        model,
        dataset,
        EpochShuffle(dataset.n_tuples, seed=seed),
        epochs=EPOCHS,
        fused=fused,
        batch_size=batch_size,
        optimizer=optimizer(model) if optimizer is not None else None,
        checkpoint=CheckpointConfig(ckpath, every_tuples=CADENCE) if ckpath else None,
        fault_plan=plan,
    )
    return model, trainer


def _crash_point(seed: int) -> int:
    # Randomized but reproducible: anywhere in the run except the very end.
    rng = np.random.default_rng([seed, 991])
    return int(rng.integers(1, EPOCHS * N_TUPLES - 1))


class TestTrainerCrashResume:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("fused", [False, True])
    @pytest.mark.parametrize("sparse", [False, True])
    def test_killed_run_resumes_to_identical_weights(self, tmp_path, seed, fused, sparse):
        dataset = _dataset(sparse)
        crash_at = _crash_point(seed)
        ckpath = tmp_path / "run.ckpt.npz"

        # Baseline: uninterrupted, same checkpoint cadence.
        base_model, base = _trainer(dataset, seed, fused, ckpath=tmp_path / "base.npz")
        base_history = base.run()

        # Crashed run: killed after crash_at tuples.
        crash_model, crashed = _trainer(
            dataset, seed, fused, ckpath=ckpath, plan=FaultPlan(crash_at_tuple=crash_at)
        )
        with pytest.raises(InjectedCrash):
            crashed.run()

        # Resume in a fresh process-equivalent: new model, new trainer.
        resumed_model, resumed = _trainer(dataset, seed, fused, ckpath=ckpath)
        resumed_history = resumed.run(resume_from=ckpath)

        for key in base_model.params:
            diff = np.max(np.abs(base_model.params[key] - resumed_model.params[key]))
            assert diff <= 1e-12, (seed, fused, sparse, crash_at, diff)
        assert len(resumed_history.records) == len(base_history.records)
        assert resumed_history.final.tuples_seen == EPOCHS * N_TUPLES

    @pytest.mark.parametrize("seed", SEEDS[:1])
    def test_mini_batch_adam_resume_restores_optimizer_state(self, tmp_path, seed):
        dataset = _dataset(sparse=False)
        ckpath = tmp_path / "adam.ckpt.npz"
        base_model, base = _trainer(
            dataset, seed, False, ckpath=tmp_path / "b.npz", batch_size=16, optimizer=Adam
        )
        base.run()

        crash_model, crashed = _trainer(
            dataset,
            seed,
            False,
            ckpath=ckpath,
            plan=FaultPlan(crash_at_tuple=_crash_point(seed)),
            batch_size=16,
            optimizer=Adam,
        )
        with pytest.raises(InjectedCrash):
            crashed.run()

        resumed_model, resumed = _trainer(
            dataset, seed, False, ckpath=ckpath, batch_size=16, optimizer=Adam
        )
        resumed.run(resume_from=ckpath)
        for key in base_model.params:
            # Adam's m/v/t slots must survive the round trip or the resumed
            # trajectory diverges immediately.
            assert np.max(np.abs(base_model.params[key] - resumed_model.params[key])) <= 1e-12

    def test_crash_before_first_cadence_point_is_resumable(self, tmp_path):
        dataset = _dataset(sparse=False)
        ckpath = tmp_path / "early.ckpt.npz"
        _, crashed = _trainer(
            dataset, 0, True, ckpath=ckpath, plan=FaultPlan(crash_at_tuple=3)
        )
        with pytest.raises(InjectedCrash):
            crashed.run()
        state = load_checkpoint(ckpath)  # the run-start checkpoint exists
        assert (state.epoch, state.cursor) == (0, 0)


class TestCheckpointFormat:
    def test_roundtrip_preserves_everything(self, tmp_path):
        model = LogisticRegression(5)
        shape = model.params["w"].shape
        model.params["w"][...] = np.arange(np.prod(shape), dtype=np.float64).reshape(shape) / 7
        path = save_checkpoint(
            tmp_path / "ck.npz",
            model,
            epoch=2,
            cursor=17,
            tuples_seen=617,
            optimizer_state={"velocity.w": np.ones(3)},
            history=[{"epoch": 0}],
            meta={"index_seed": 4},
        )
        state = load_checkpoint(path)
        assert np.array_equal(state.model.params["w"], model.params["w"])
        assert (state.epoch, state.cursor, state.tuples_seen) == (2, 17, 617)
        assert np.array_equal(state.optimizer_state["velocity.w"], np.ones(3))
        assert state.history == [{"epoch": 0}] and state.meta == {"index_seed": 4}

    def test_write_is_atomic(self, tmp_path):
        path = tmp_path / "ck.npz"
        save_checkpoint(path, LogisticRegression(3), epoch=0, cursor=0, tuples_seen=0)
        assert not path.with_name(path.name + ".tmp").exists()

    def test_corrupt_checkpoint_raises_value_error(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"not a checkpoint at all")
        with pytest.raises(ValueError):
            load_checkpoint(path)

    def test_write_fsyncs_tmp_file_and_directory(self, tmp_path, monkeypatch):
        # Durability, not just atomicity: without an fsync of the tmp file
        # before the rename (and of the directory after it), a power loss
        # can surface a zero-length "checkpoint" under the final name.
        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd)))
        path = tmp_path / "ck.npz"
        save_checkpoint(path, LogisticRegression(3), epoch=0, cursor=0, tuples_seen=0)
        # One fsync for the tmp file's fd, one for the parent directory.
        assert len(synced) >= 2

    def test_failed_write_leaks_no_tmp_and_keeps_previous(self, tmp_path, monkeypatch):
        path = tmp_path / "ck.npz"
        save_checkpoint(path, LogisticRegression(3), epoch=1, cursor=5, tuples_seen=50)
        before = path.read_bytes()

        def exploding_fsync(fd):
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(os, "fsync", exploding_fsync)
        with pytest.raises(OSError):
            save_checkpoint(
                path, LogisticRegression(3), epoch=2, cursor=0, tuples_seen=99
            )
        monkeypatch.undo()
        # The failed attempt neither leaked its tmp file nor touched the
        # previous good checkpoint.
        assert not path.with_name(path.name + ".tmp").exists()
        assert path.read_bytes() == before
        assert load_checkpoint(path).epoch == 1

    def test_resume_guards_reject_mismatched_run(self, tmp_path):
        dataset = _dataset(sparse=False)
        ckpath = tmp_path / "g.ckpt.npz"
        _, t = _trainer(dataset, 0, fused=True, ckpath=ckpath)
        t.run()
        # fused mismatch changes the update sequence -> refuse
        _, scalar = _trainer(dataset, 0, fused=False)
        with pytest.raises(ValueError, match="fused"):
            scalar.run(resume_from=ckpath)
        # different index seed replays a different order -> refuse
        _, other_seed = _trainer(dataset, 1, fused=True)
        with pytest.raises(ValueError, match="seed"):
            other_seed.run(resume_from=ckpath)


class TestStreamingCrashResume:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_streaming_killed_and_resumed_matches_uninterrupted(self, tmp_path, seed):
        dataset = _dataset(sparse=False)
        path = tmp_path / "stream.blocks"
        write_block_file(dataset, path, tuples_per_block=25)
        ckpath = tmp_path / "stream.ckpt.npz"

        def run(model, plan=None, checkpoint=None, resume_from=None):
            with CorgiPileDataset(path, buffer_blocks=2, seed=seed) as view:

                def loader_factory(epoch):
                    view.set_epoch(epoch)
                    return DataLoader(view, batch_size=32)

                train_streaming(
                    model,
                    loader_factory,
                    epochs=2,
                    per_tuple=True,
                    fused=True,
                    fault_plan=plan,
                    checkpoint=checkpoint,
                    resume_from=resume_from,
                )

        clean = LogisticRegression(dataset.n_features)
        run(clean)

        crashed = LogisticRegression(dataset.n_features)
        with pytest.raises(InjectedCrash):
            run(
                crashed,
                plan=FaultPlan(crash_at_tuple=_crash_point(seed) % (2 * N_TUPLES)),
                checkpoint=CheckpointConfig(ckpath, every_tuples=CADENCE),
            )

        resumed = LogisticRegression(dataset.n_features)
        run(resumed, resume_from=ckpath)
        for key in clean.params:
            # Streaming updates are per-batch, so resume is exactly bitwise.
            assert np.array_equal(clean.params[key], resumed.params[key])
