"""Heap DML edge cases: slot reuse, RID-stable compaction, stale batches."""

from __future__ import annotations

import numpy as np
import pytest

from repro.db import Catalog, UnsupportedLayoutError
from repro.storage.heapfile import ColumnarMutationError, HeapFile
from repro.storage.page import Page
from repro.storage.rid import RID


class TestPageCompaction:
    def test_replace_compacts_in_place_keeping_slot_ids(self):
        """Dead space is reclaimed without renumbering surviving slots."""
        page = Page(0, capacity=100)
        slots = [page.append(bytes([i]) * 30) for i in range(3)]
        assert slots == [0, 1, 2]
        page.delete(0)
        assert page.dead_bytes == 30
        # 35 bytes: doesn't fit the 10 free bytes, does after compaction.
        page.replace(2, b"\x07" * 35)
        assert not page.is_live(0)
        assert page.payload(1) == b"\x01" * 30
        assert page.payload(2) == b"\x07" * 35
        assert page.live_slots() == [1, 2]
        assert page.dead_bytes == 0

    def test_append_reuses_dead_space_after_compact(self):
        page = Page(0, capacity=100)
        for i in range(3):
            page.append(bytes([i]) * 30)
        page.delete(1)
        slot = page.append(b"\xaa" * 32)  # only fits via compaction
        assert page.is_live(slot)
        assert page.payload(slot) == b"\xaa" * 32
        assert page.payload(0) == b"\x00" * 30

    def test_replace_too_large_raises(self):
        page = Page(0, capacity=100)
        page.append(b"a" * 40)
        page.append(b"b" * 40)
        with pytest.raises(ValueError):
            page.replace(0, b"c" * 70)
        assert page.payload(0) == b"a" * 40  # untouched on failure


class TestHeapDML:
    def _heap(self, dataset, page_bytes=1024):
        return HeapFile.from_dataset(dataset, page_bytes=page_bytes)

    def test_insert_reuses_deleted_slot_space(self, dense_binary):
        heap = self._heap(dense_binary)
        n_pages = heap.n_pages
        victim = RID(3, 2)
        tup = heap.read_tuple(heap.position_of(victim))
        heap.delete(victim)
        rid = heap.insert(9999, tup.label, tup.features)
        # Same-size tuple lands in the freed space on the same page —
        # first-fit found the hole instead of growing the heap.
        assert rid.page_id == 3
        assert heap.n_pages == n_pages
        assert heap.read_tuple(heap.position_of(rid)).tuple_id == 9999

    def test_delete_keeps_other_rids_stable(self, dense_binary):
        heap = self._heap(dense_binary)
        keep = RID(2, 4)
        before = heap.read_tuple(heap.position_of(keep))
        heap.delete(RID(2, 1))
        heap.delete(RID(2, 2))
        after = heap.read_tuple(heap.position_of(keep))
        assert after.tuple_id == before.tuple_id
        assert np.array_equal(np.asarray(after.features), np.asarray(before.features))

    def test_update_in_place_preserves_rid(self, dense_binary):
        heap = self._heap(dense_binary)
        rid = RID(1, 3)
        tup = heap.read_tuple(heap.position_of(rid))
        new_features = np.asarray(tup.features, dtype=float).copy()
        new_features[0] = -42.5
        got = heap.update(rid, tup.tuple_id, tup.label, new_features)
        assert got == rid
        assert heap.read_tuple(heap.position_of(rid)).features[0] == -42.5

    def test_update_moves_when_page_overflows(self, sparse_binary):
        """A grown sparse row that no longer fits relocates: new RID, old
        slot dead — exactly the delete + first-fit insert contract."""
        heap = self._heap(sparse_binary, page_bytes=512)
        rid = heap.rid_of(0)
        tup = heap.read_tuple(0)
        from repro.data import SparseRow

        wide = SparseRow(
            np.arange(100, dtype=np.int32),
            np.ones(100, dtype=np.float64),
            sparse_binary.n_features,
        )
        new_rid = heap.update(rid, tup.tuple_id, tup.label, wide)
        assert new_rid != rid
        assert not heap.pages[rid.page_id].is_live(rid.slot)
        moved = heap.read_tuple(heap.position_of(new_rid))
        assert moved.tuple_id == tup.tuple_id

    def test_columnar_heap_rejects_dml(self, dense_binary):
        heap = HeapFile.from_dataset(dense_binary, page_bytes=1024, layout="columnar")
        with pytest.raises(ColumnarMutationError):
            heap.insert(0, 1.0, np.zeros(dense_binary.n_features))
        with pytest.raises(ColumnarMutationError):
            heap.delete(RID(0, 0))
        with pytest.raises(ColumnarMutationError):
            heap.update(RID(0, 0), 0, 1.0, np.zeros(dense_binary.n_features))


class TestCatalogDML:
    def _table(self, dataset, **kwargs):
        catalog = Catalog(page_bytes=1024, **kwargs)
        info = catalog.create_table("t", dataset)
        catalog.create_index("t", "ix_f0", "f0")
        return catalog, info

    def test_insert_delete_update_keep_indexes_consistent(self, dense_binary):
        _, info = self._table(dense_binary)
        rng = np.random.default_rng(3)
        rids = info.insert_rows(
            [(1.0, rng.standard_normal(dense_binary.n_features)) for _ in range(5)]
        )
        assert len(rids) == 5
        info.verify_indexes()
        info.delete_rids([rids[0], info.heap.rid_of(10)])
        info.verify_indexes()
        info.update_rids([rids[2]], [("f0", 77.25), ("label", -1.0)])
        info.verify_indexes()
        position = info.heap.position_of(rids[2])
        assert info.dataset.X[position, 0] == 77.25
        assert info.dataset.y[position] == -1.0

    def test_dataset_rebuilt_after_dml(self, dense_binary):
        _, info = self._table(dense_binary)
        n = info.n_tuples
        info.delete_rids([info.heap.rid_of(0)])
        assert info.n_tuples == n - 1
        assert info.dataset.n_tuples == n - 1

    def test_columnar_table_raises_typed_error(self, dense_binary):
        catalog = Catalog(page_bytes=1024)
        info = catalog.create_table("t", dense_binary, layout="columnar")
        with pytest.raises(UnsupportedLayoutError, match="INSERT"):
            info.insert_rows([(1.0, np.zeros(dense_binary.n_features))])
        with pytest.raises(UnsupportedLayoutError, match="DELETE"):
            info.delete_rids([RID(0, 0)])
        with pytest.raises(UnsupportedLayoutError, match="UPDATE"):
            info.update_rids([RID(0, 0)], [("f0", 1.0)])


class TestBufferPoolInvalidation:
    def test_update_invalidates_cached_batch(self, dense_binary):
        """Regression: a cached page batch must not survive an UPDATE."""
        catalog = Catalog(page_bytes=1024)
        info = catalog.create_table("t", dense_binary)
        rid = info.heap.rid_of(3)
        stale, hit = info.pool.get_batch_traced(rid.page_id)
        assert not hit  # first touch fills the cache
        _, hit = info.pool.get_batch_traced(rid.page_id)
        assert hit  # and it sticks
        row = info.heap.slot_row_map(rid.page_id)[rid.slot]
        old_value = float(stale.dense[row, 0])
        info.update_rids([rid], [("f0", old_value + 10.0)])
        fresh, hit = info.pool.get_batch_traced(rid.page_id)
        assert not hit  # UPDATE evicted the page
        assert fresh.dense[row, 0] == old_value + 10.0
        assert stale.dense[row, 0] == old_value  # old batch is a snapshot

    def test_delete_invalidates_cached_batch(self, dense_binary):
        catalog = Catalog(page_bytes=1024)
        info = catalog.create_table("t", dense_binary)
        rid = info.heap.rid_of(0)
        before = info.pool.get_batch(rid.page_id)
        info.delete_rids([rid])
        after, hit = info.pool.get_batch_traced(rid.page_id)
        assert not hit
        assert len(after.ids) == len(before.ids) - 1

    def test_insert_invalidates_cached_batch(self, dense_binary):
        catalog = Catalog(page_bytes=1024)
        info = catalog.create_table("t", dense_binary)
        victim = info.heap.rid_of(5)
        page_id = victim.page_id
        info.delete_rids([victim])
        before = info.pool.get_batch(page_id)
        rng = np.random.default_rng(0)
        [rid] = info.insert_rows([(1.0, rng.standard_normal(dense_binary.n_features))])
        assert rid.page_id == page_id  # first-fit reused the hole
        after, hit = info.pool.get_batch_traced(page_id)
        assert not hit
        assert len(after.ids) == len(before.ids) + 1
