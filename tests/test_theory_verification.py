"""Tests for the Monte Carlo verification of the proof's sampling identities."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import BlockLayout, clustered_by_label, make_binary_dense
from repro.ml import LogisticRegression
from repro.theory import (
    buffered_gradient_sum_samples,
    per_example_gradients,
    verify_expectation_identity,
    verify_variance_identity,
)


def random_gradients(seed: int, m: int, dim: int) -> np.ndarray:
    """Per-example gradients with a mean that dominates the noise.

    The expectation identity's *relative* Monte Carlo error blows up when
    the true mean is near zero (nothing wrong with the identity — the
    denominator vanishes), so the shared offset is kept away from zero.
    """
    rng = np.random.default_rng(seed)
    offset = rng.standard_normal(dim) + 3.0
    return rng.standard_normal((m, dim)) + offset


class TestDrawMachinery:
    def test_draw_shape(self):
        grads = random_gradients(0, 120, 4)
        layout = BlockLayout(120, 10)
        draws = buffered_gradient_sum_samples(grads, layout, 3, n_samples=50)
        assert draws.shape == (50, 4)

    def test_full_buffer_draws_are_constant(self):
        grads = random_gradients(1, 60, 3)
        layout = BlockLayout(60, 10)
        draws = buffered_gradient_sum_samples(grads, layout, 6, n_samples=20)
        np.testing.assert_allclose(draws, np.tile(draws[0], (20, 1)), atol=1e-9)
        np.testing.assert_allclose(draws[0], grads.sum(axis=0))

    def test_validation(self):
        grads = random_gradients(0, 20, 2)
        layout = BlockLayout(20, 5)
        with pytest.raises(ValueError):
            buffered_gradient_sum_samples(grads, layout, 0, 10)
        with pytest.raises(ValueError):
            buffered_gradient_sum_samples(grads, layout, 2, 0)


class TestExpectationIdentity:
    def test_random_gradients(self):
        grads = random_gradients(2, 200, 5)
        layout = BlockLayout(200, 20)
        check = verify_expectation_identity(grads, layout, 4, n_samples=4000)
        assert check.ok, check

    def test_clustered_model_gradients(self):
        ds = clustered_by_label(make_binary_dense(400, 6, separation=1.0, seed=0))
        grads = per_example_gradients(LogisticRegression(6), ds)
        layout = BlockLayout(400, 20)
        check = verify_expectation_identity(grads, layout, 5, n_samples=4000)
        assert check.ok, check

    def test_single_block_buffer(self):
        grads = random_gradients(3, 100, 3)
        layout = BlockLayout(100, 10)
        check = verify_expectation_identity(grads, layout, 1, n_samples=8000)
        assert check.relative_error < 0.2


class TestVarianceIdentity:
    def test_random_gradients(self):
        grads = random_gradients(4, 200, 4)
        layout = BlockLayout(200, 20)
        check = verify_variance_identity(grads, layout, 4, n_samples=6000)
        assert check.ok, check

    def test_clustered_has_larger_variance_than_shuffled(self):
        ds = make_binary_dense(400, 6, separation=1.0, seed=1)
        layout = BlockLayout(400, 20)
        model = LogisticRegression(6)
        clustered = per_example_gradients(model, clustered_by_label(ds))
        shuffled = per_example_gradients(model, ds.shuffled(seed=2))
        var_c = verify_variance_identity(clustered, layout, 5).analytic
        var_s = verify_variance_identity(shuffled, layout, 5).analytic
        assert var_c > 2 * var_s  # the h_D effect, at the proof's level

    def test_full_buffer_variance_zero(self):
        grads = random_gradients(5, 60, 3)
        layout = BlockLayout(60, 10)
        check = verify_variance_identity(grads, layout, 6, n_samples=500)
        assert check.analytic == pytest.approx(0.0)
        assert check.monte_carlo == pytest.approx(0.0, abs=1e-18)

    def test_needs_two_blocks(self):
        grads = random_gradients(6, 10, 2)
        layout = BlockLayout(10, 10)
        with pytest.raises(ValueError):
            verify_variance_identity(grads, layout, 1)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 200),
    n_blocks=st.integers(2, 12),
    per_block=st.integers(2, 10),
    dim=st.integers(1, 5),
)
def test_property_identities_hold_for_arbitrary_gradients(seed, n_blocks, per_block, dim):
    m = n_blocks * per_block
    grads = random_gradients(seed, m, dim)
    layout = BlockLayout(m, per_block)
    n = max(1, n_blocks // 2)
    exp = verify_expectation_identity(grads, layout, n, n_samples=3000, seed=seed)
    assert exp.relative_error < 0.25
    if n < n_blocks:
        var = verify_variance_identity(grads, layout, n, n_samples=3000, seed=seed)
        assert var.relative_error < 0.25
