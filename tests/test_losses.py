"""Tests for the scalar loss functions (value + derivative correctness)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import HingeLoss, LogisticLoss, SquaredLoss


def numeric_derivative(loss, z: float, y: float, eps: float = 1e-6) -> float:
    up = loss.value(np.array([z + eps]), np.array([y]))[0]
    down = loss.value(np.array([z - eps]), np.array([y]))[0]
    return float((up - down) / (2 * eps))


class TestLogistic:
    def test_value_at_zero_margin(self):
        loss = LogisticLoss()
        assert loss.value(np.array([0.0]), np.array([1.0]))[0] == pytest.approx(np.log(2))

    def test_value_decreases_with_margin(self):
        loss = LogisticLoss()
        vals = loss.value(np.array([0.0, 1.0, 3.0]), np.array([1.0, 1.0, 1.0]))
        assert np.all(np.diff(vals) < 0)

    @pytest.mark.parametrize("z,y", [(0.3, 1.0), (-2.0, 1.0), (1.5, -1.0), (0.0, -1.0)])
    def test_derivative_matches_numeric(self, z, y):
        loss = LogisticLoss()
        analytic = loss.dloss_dz(np.array([z]), np.array([y]))[0]
        assert analytic == pytest.approx(numeric_derivative(loss, z, y), abs=1e-5)

    def test_extreme_scores_stable(self):
        loss = LogisticLoss()
        vals = loss.value(np.array([-1000.0, 1000.0]), np.array([1.0, 1.0]))
        assert np.isfinite(vals).all()
        grads = loss.dloss_dz(np.array([-1000.0, 1000.0]), np.array([1.0, 1.0]))
        assert np.isfinite(grads).all()

    def test_mean_value(self):
        loss = LogisticLoss()
        z = np.array([0.0, 0.0])
        y = np.array([1.0, -1.0])
        assert loss.mean_value(z, y) == pytest.approx(np.log(2))


class TestHinge:
    def test_zero_beyond_margin(self):
        loss = HingeLoss()
        assert loss.value(np.array([2.0]), np.array([1.0]))[0] == 0.0
        assert loss.dloss_dz(np.array([2.0]), np.array([1.0]))[0] == 0.0

    def test_linear_inside_margin(self):
        loss = HingeLoss()
        assert loss.value(np.array([0.0]), np.array([1.0]))[0] == 1.0
        assert loss.dloss_dz(np.array([0.0]), np.array([1.0]))[0] == -1.0

    def test_negative_label(self):
        loss = HingeLoss()
        assert loss.dloss_dz(np.array([0.0]), np.array([-1.0]))[0] == 1.0

    @pytest.mark.parametrize("z,y", [(0.3, 1.0), (-2.0, 1.0), (0.5, -1.0)])
    def test_derivative_matches_numeric_off_kink(self, z, y):
        loss = HingeLoss()
        analytic = loss.dloss_dz(np.array([z]), np.array([y]))[0]
        assert analytic == pytest.approx(numeric_derivative(loss, z, y), abs=1e-5)


class TestSquared:
    def test_value(self):
        loss = SquaredLoss()
        assert loss.value(np.array([3.0]), np.array([1.0]))[0] == pytest.approx(2.0)

    def test_derivative(self):
        loss = SquaredLoss()
        assert loss.dloss_dz(np.array([3.0]), np.array([1.0]))[0] == pytest.approx(2.0)

    @settings(max_examples=30, deadline=None)
    @given(z=st.floats(-50, 50), y=st.floats(-50, 50))
    def test_property_derivative_matches_numeric(self, z, y):
        loss = SquaredLoss()
        analytic = loss.dloss_dz(np.array([z]), np.array([y]))[0]
        assert analytic == pytest.approx(numeric_derivative(loss, z, y), abs=1e-4)


@settings(max_examples=40, deadline=None)
@given(z=st.floats(-20, 20), y=st.sampled_from([-1.0, 1.0]))
def test_property_binary_losses_nonnegative(z, y):
    for loss in (LogisticLoss(), HingeLoss()):
        assert loss.value(np.array([z]), np.array([y]))[0] >= 0.0
