"""Tests for the automatic access-path planner (strategy = auto)."""

from __future__ import annotations

import pytest

from repro.data import (
    clustered_by_label,
    interleaved_by_label,
    make_binary_dense,
    make_multiclass_dense,
    make_regression,
)
from repro.db import Catalog, MiniDB, choose_access_path
from repro.db.planner import HD_NO_SHUFFLE_THRESHOLD


def _table(dataset, page_bytes=1024):
    return Catalog(page_bytes=page_bytes).create_table("t", dataset)


class TestChooseAccessPath:
    def test_shuffled_table_picks_no_shuffle(self):
        ds = make_binary_dense(2000, 10, separation=1.2, seed=0).shuffled(seed=1)
        choice = choose_access_path(_table(ds), block_bytes=4096)
        assert choice.strategy == "no_shuffle"
        assert choice.hd < HD_NO_SHUFFLE_THRESHOLD

    def test_clustered_table_picks_corgipile(self):
        ds = clustered_by_label(make_binary_dense(2000, 10, separation=1.2, seed=0))
        choice = choose_access_path(_table(ds), block_bytes=4096)
        assert choice.strategy == "corgipile"
        assert choice.hd > HD_NO_SHUFFLE_THRESHOLD

    def test_block_granularity_matters(self):
        # Runs of 10 identical-label tuples: at 10-tuple blocks h_D is
        # maximal; at much larger blocks the runs average out.
        ds = interleaved_by_label(
            make_binary_dense(2000, 8, separation=1.2, seed=0), run_length=10, seed=0
        )
        table = _table(ds, page_bytes=512)
        fine = choose_access_path(table, block_bytes=table.heap.page_bytes)
        coarse = choose_access_path(table, block_bytes=64 * 1024)
        assert fine.hd > coarse.hd

    def test_multiclass_and_regression_probes(self):
        multi = clustered_by_label(make_multiclass_dense(900, 8, 3, separation=2.0, seed=0))
        assert choose_access_path(_table(multi), 4096).strategy == "corgipile"
        reg = make_regression(900, 6, seed=0)
        import numpy as np

        by_target = reg.reorder(np.argsort(reg.y), suffix="sorted")
        assert choose_access_path(_table(by_target), 4096).strategy == "corgipile"

    def test_prefix_probe_for_large_tables(self):
        ds = clustered_by_label(make_binary_dense(3000, 6, separation=1.0, seed=0))
        choice = choose_access_path(_table(ds), 4096, max_probe_tuples=500)
        # A clustered prefix is single-class: still maximally clustered.
        assert choice.strategy == "corgipile"

    def test_threshold_validation(self):
        ds = make_binary_dense(200, 4, seed=0)
        with pytest.raises(ValueError):
            choose_access_path(_table(ds), 4096, threshold=1.0)

    def test_describe(self):
        ds = make_binary_dense(500, 4, seed=0)
        text = choose_access_path(_table(ds), 4096).describe()
        assert "h_D=" in text and "strategy=" in text


def _clustered_db():
    ds = clustered_by_label(make_binary_dense(1500, 8, separation=1.2, seed=0))
    db = MiniDB(page_bytes=1024)
    db.create_table("t", ds)
    return db


class TestAutoStrategyInEngine:
    def test_auto_resolves_and_records_decision(self):
        # On the latency-free scaled SSD curve, random block reads cost
        # the same as sequential ones, so CorgiPile's h_D reduction wins
        # outright on clustered data.
        result = _clustered_db().execute(
            "SELECT * FROM t TRAIN BY lr WITH strategy = auto, "
            "max_epoch_num = 2, block_size = 4KB, device = 'ssd-scaled'"
        )
        assert result.query.strategy == "corgipile"
        assert "h_D" in result.query.extra["planner"]
        # The full evidence table rides along as a JSON-ready doc.
        doc = result.query.extra["advisor"]
        assert doc["strategy"] == "corgipile"
        assert doc["device"] == "ssd-scaled"
        assert doc["hd"]["hd"] > HD_NO_SHUFFLE_THRESHOLD
        assert len(doc["costs"]) >= 5

    def test_auto_on_shuffled_table(self):
        ds = make_binary_dense(1500, 8, separation=1.2, seed=0).shuffled(seed=2)
        db = MiniDB(page_bytes=1024)
        db.create_table("t", ds)
        result = db.execute(
            "SELECT * FROM t TRAIN BY lr WITH strategy = auto, "
            "max_epoch_num = 2, block_size = 4KB"
        )
        assert result.query.strategy == "no_shuffle"
        assert result.timeline.system.endswith("no_shuffle")

    def test_device_override_changes_choice(self):
        """Same clustered table, same statement — only the charged device
        differs.  Seek-bound HDD stays sequential; NVM's near-free random
        reads make the shuffling strategy affordable."""
        chosen = {}
        for device in ("hdd", "nvm"):
            result = _clustered_db().execute(
                "SELECT * FROM t TRAIN BY lr WITH strategy = auto, "
                f"max_epoch_num = 2, block_size = 4KB, device = '{device}'"
            )
            chosen[device] = result.query.strategy
        assert chosen["hdd"] == "no_shuffle"
        assert chosen["nvm"] != chosen["hdd"]

    def test_unknown_device_rejected(self):
        with pytest.raises(Exception, match="device"):
            _clustered_db().execute(
                "SELECT * FROM t TRAIN BY lr WITH strategy = auto, "
                "max_epoch_num = 2, device = 'floppy'"
            )


class TestExplainAdvisor:
    """EXPLAIN renders the advisor's evidence table above the plan."""

    AUTO_SQL = (
        "EXPLAIN SELECT * FROM t TRAIN BY lr WITH strategy = auto, "
        "max_epoch_num = 2, block_size = 4KB"
    )

    def test_advisor_block_renders(self):
        plan = _clustered_db().execute(self.AUTO_SQL + ", device = 'hdd'")
        lines = plan.split("\n")
        assert lines[0].startswith("Advisor (device=hdd, h_D=")
        assert "epochs=2" in lines[0] and "buffer=" in lines[0]
        # One costed line per candidate, cheapest first, chosen marked.
        assert lines[1].startswith("  => ")
        costed = [l for l in lines if "total=" in l]
        assert len(costed) >= 5
        marked = [l for l in costed if l.startswith("  => ")]
        assert len(marked) == 1
        assert "no_shuffle" in marked[0]
        # The physical plan still follows the advisor block.
        assert any(l.startswith("SGD") for l in lines)
        assert any("Heap 't'" in l for l in lines)

    def test_explain_flips_with_device(self):
        def chosen_line(device):
            plan = _clustered_db().execute(self.AUTO_SQL + f", device = '{device}'")
            return next(l for l in plan.split("\n") if l.startswith("  => "))

        assert "no_shuffle" in chosen_line("hdd")
        assert "corgipile" in chosen_line("nvm")

    def test_explain_corgi2_mentions_offline_setup(self):
        plan = _clustered_db().execute(
            "EXPLAIN SELECT * FROM t TRAIN BY lr WITH strategy = corgi2, "
            "block_size = 4KB"
        )
        assert "Corgi² offline partial re-group" in plan
        assert "TupleShuffle" in plan

    @pytest.mark.parametrize(
        "strategy,annotation",
        [("block_reshuffle", "shuffle"), ("block_reversal", "revers")],
    )
    def test_explain_learned_block_strategies(self, strategy, annotation):
        plan = _clustered_db().execute(
            f"EXPLAIN SELECT * FROM t TRAIN BY lr WITH strategy = {strategy}, "
            "block_size = 4KB"
        )
        assert "BlockShuffle" in plan
        assert annotation in plan.lower()

    def test_explain_does_not_probe_side_effects(self):
        db = _clustered_db()
        db.execute(self.AUTO_SQL)
        assert db._models == {}
