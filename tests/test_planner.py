"""Tests for the automatic access-path planner (strategy = auto)."""

from __future__ import annotations

import pytest

from repro.data import (
    clustered_by_label,
    interleaved_by_label,
    make_binary_dense,
    make_multiclass_dense,
    make_regression,
)
from repro.db import Catalog, MiniDB, choose_access_path
from repro.db.planner import HD_NO_SHUFFLE_THRESHOLD


def _table(dataset, page_bytes=1024):
    return Catalog(page_bytes=page_bytes).create_table("t", dataset)


class TestChooseAccessPath:
    def test_shuffled_table_picks_no_shuffle(self):
        ds = make_binary_dense(2000, 10, separation=1.2, seed=0).shuffled(seed=1)
        choice = choose_access_path(_table(ds), block_bytes=4096)
        assert choice.strategy == "no_shuffle"
        assert choice.hd < HD_NO_SHUFFLE_THRESHOLD

    def test_clustered_table_picks_corgipile(self):
        ds = clustered_by_label(make_binary_dense(2000, 10, separation=1.2, seed=0))
        choice = choose_access_path(_table(ds), block_bytes=4096)
        assert choice.strategy == "corgipile"
        assert choice.hd > HD_NO_SHUFFLE_THRESHOLD

    def test_block_granularity_matters(self):
        # Runs of 10 identical-label tuples: at 10-tuple blocks h_D is
        # maximal; at much larger blocks the runs average out.
        ds = interleaved_by_label(
            make_binary_dense(2000, 8, separation=1.2, seed=0), run_length=10, seed=0
        )
        table = _table(ds, page_bytes=512)
        fine = choose_access_path(table, block_bytes=table.heap.page_bytes)
        coarse = choose_access_path(table, block_bytes=64 * 1024)
        assert fine.hd > coarse.hd

    def test_multiclass_and_regression_probes(self):
        multi = clustered_by_label(make_multiclass_dense(900, 8, 3, separation=2.0, seed=0))
        assert choose_access_path(_table(multi), 4096).strategy == "corgipile"
        reg = make_regression(900, 6, seed=0)
        import numpy as np

        by_target = reg.reorder(np.argsort(reg.y), suffix="sorted")
        assert choose_access_path(_table(by_target), 4096).strategy == "corgipile"

    def test_prefix_probe_for_large_tables(self):
        ds = clustered_by_label(make_binary_dense(3000, 6, separation=1.0, seed=0))
        choice = choose_access_path(_table(ds), 4096, max_probe_tuples=500)
        # A clustered prefix is single-class: still maximally clustered.
        assert choice.strategy == "corgipile"

    def test_threshold_validation(self):
        ds = make_binary_dense(200, 4, seed=0)
        with pytest.raises(ValueError):
            choose_access_path(_table(ds), 4096, threshold=1.0)

    def test_describe(self):
        ds = make_binary_dense(500, 4, seed=0)
        text = choose_access_path(_table(ds), 4096).describe()
        assert "h_D=" in text and "strategy=" in text


class TestAutoStrategyInEngine:
    def test_auto_resolves_and_records_decision(self):
        ds = clustered_by_label(make_binary_dense(1500, 8, separation=1.2, seed=0))
        db = MiniDB(page_bytes=1024)
        db.create_table("t", ds)
        result = db.execute(
            "SELECT * FROM t TRAIN BY lr WITH strategy = auto, "
            "max_epoch_num = 2, block_size = 4KB"
        )
        assert result.query.strategy == "corgipile"
        assert "h_D" in result.query.extra["planner"]

    def test_auto_on_shuffled_table(self):
        ds = make_binary_dense(1500, 8, separation=1.2, seed=0).shuffled(seed=2)
        db = MiniDB(page_bytes=1024)
        db.create_table("t", ds)
        result = db.execute(
            "SELECT * FROM t TRAIN BY lr WITH strategy = auto, "
            "max_epoch_num = 2, block_size = 4KB"
        )
        assert result.query.strategy == "no_shuffle"
        assert result.timeline.system.endswith("no_shuffle")
