"""Tests for the command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.data import make_binary_dense, write_libsvm
from repro.ml import load_model


@pytest.fixture()
def libsvm_file(tmp_path):
    ds = make_binary_dense(300, 6, separation=2.0, seed=0)
    path = tmp_path / "data.libsvm"
    write_libsvm(ds, path)
    return path


class TestInfo:
    def test_lists_datasets_and_strategies(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "higgs" in out and "criteo" in out
        assert "corgipile" in out


class TestGenerate:
    def test_generate_libsvm(self, tmp_path, capsys):
        out = tmp_path / "g.libsvm"
        assert main(["generate", "susy", "--out", str(out), "--order", "clustered"]) == 0
        assert out.exists()
        assert "6000 tuples" in capsys.readouterr().out

    def test_generate_csv(self, tmp_path):
        out = tmp_path / "g.csv"
        assert main(["generate", "higgs", "--out", str(out), "--format", "csv"]) == 0
        header = out.read_text().splitlines()[0]
        assert header.endswith("label")

    def test_generate_feature_order(self, tmp_path):
        out = tmp_path / "g.csv"
        assert main(
            ["generate", "higgs", "--out", str(out), "--format", "csv", "--order", "feature:3"]
        ) == 0
        col = np.loadtxt(out, delimiter=",", skiprows=1)[:, 3]
        assert np.all(np.diff(col) >= -1e-9)

    def test_bad_order(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "higgs", "--out", str(tmp_path / "x"), "--order", "zigzag"])


class TestTrainPredict:
    def test_train_prints_history(self, libsvm_file, capsys):
        assert main(
            ["train", "--data", str(libsvm_file), "--model", "lr",
             "--strategy", "shuffle_once", "--epochs", "3", "--block-tuples", "20"]
        ) == 0
        out = capsys.readouterr().out
        assert "epoch" in out
        assert out.count("\n") >= 5

    def test_train_saves_loadable_model(self, libsvm_file, tmp_path, capsys):
        model_path = tmp_path / "m.npz"
        assert main(
            ["train", "--data", str(libsvm_file), "--model", "svm", "--epochs", "4",
             "--block-tuples", "20", "--save-model", str(model_path)]
        ) == 0
        model = load_model(model_path)
        assert type(model).__name__ == "LinearSVM"

    def test_predict_reports_accuracy(self, libsvm_file, tmp_path, capsys):
        model_path = tmp_path / "m.npz"
        main(
            ["train", "--data", str(libsvm_file), "--model", "lr", "--epochs", "5",
             "--block-tuples", "20", "--save-model", str(model_path)]
        )
        capsys.readouterr()
        assert main(["predict", "--model", str(model_path), "--data", str(libsvm_file)]) == 0
        out = capsys.readouterr().out
        accuracy = float(out.split("=")[-1])
        assert accuracy > 0.9  # well-separated data

    def test_train_bundled_dataset(self, capsys):
        assert main(
            ["train", "--dataset", "epsilon", "--model", "lr", "--epochs", "2"]
        ) == 0


class TestExplainAndBench:
    def test_explain_shows_plan(self, capsys):
        assert main(["explain", "--dataset", "susy", "--strategy", "corgipile"]) == 0
        out = capsys.readouterr().out
        assert "SGD" in out and "TupleShuffle" in out and "BlockShuffle" in out

    def test_bench_io(self, capsys):
        assert main(["bench-io", "--device", "ssd"]) == 0
        out = capsys.readouterr().out
        assert "random MB/s" in out

    def test_loader_stats(self, capsys):
        import threading

        baseline = threading.active_count()
        assert (
            main(
                [
                    "loader-stats",
                    "--dataset",
                    "epsilon",
                    "--epochs",
                    "1",
                    "--workers",
                    "2",
                    "--batch-size",
                    "64",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "loader observability" in out
        assert "prefetch" in out
        assert "multiworker" in out
        assert "threaded-tuple-shuffle" in out
        assert "overlap_fraction" in out
        assert threading.active_count() == baseline  # every loader thread joined


class TestCommonOptionGroup:
    """One shared --seed/--workers/--quick group, consistent everywhere."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["train", "--dataset", "susy"],
            ["parallel-train"],
            ["loader-stats"],
            ["chaos"],
            ["generate", "susy", "--out", "x"],
            ["kernel-bench"],
        ],
    )
    def test_seed_defaults_to_zero(self, argv):
        from repro.cli import build_parser

        args = build_parser().parse_args(argv)
        assert args.seed == 0

    def test_workers_defaults(self):
        from repro.cli import build_parser

        parser = build_parser()
        assert parser.parse_args(["train", "--dataset", "susy"]).workers == 1
        assert parser.parse_args(["parallel-train"]).workers == 2
        assert parser.parse_args(["loader-stats"]).workers == 2

    @pytest.mark.parametrize(
        "argv", [["train", "--dataset", "susy"], ["parallel-train"], ["chaos"]]
    )
    def test_quick_flag_available(self, argv):
        from repro.cli import build_parser

        args = build_parser().parse_args(argv + ["--quick"])
        assert args.quick is True


class TestParallelTrain:
    def test_quick_sync_with_equivalence_check(self, capsys):
        assert (
            main(
                [
                    "parallel-train",
                    "--dataset",
                    "susy",
                    "--workers",
                    "2",
                    "--quick",
                    "--epochs",
                    "2",
                    "--compare-single",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "x2 workers (sync)" in out
        assert "equivalence verdict: PASS" in out
        assert "0 live threads" in out

    def test_json_report(self, tmp_path, capsys):
        import json

        report_path = tmp_path / "par.json"
        assert (
            main(
                [
                    "parallel-train",
                    "--dataset",
                    "susy",
                    "--workers",
                    "2",
                    "--mode",
                    "epoch",
                    "--quick",
                    "--epochs",
                    "1",
                    "--json",
                    str(report_path),
                ]
            )
            == 0
        )
        report = json.loads(report_path.read_text())
        assert report["mode"] == "epoch"
        assert report["n_workers"] == 2
        assert report["tuples_processed"] == 1600

    def test_train_workers_routes_to_parallel_engine(self, capsys):
        assert (
            main(
                [
                    "train",
                    "--dataset",
                    "susy",
                    "--workers",
                    "2",
                    "--quick",
                    "--epochs",
                    "2",
                    "--block-tuples",
                    "40",
                ]
            )
            == 0
        )
        assert "x2 workers" in capsys.readouterr().out

    def test_train_workers_rejects_non_corgipile(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "train",
                    "--dataset",
                    "susy",
                    "--workers",
                    "2",
                    "--strategy",
                    "no_shuffle",
                ]
            )
