"""Tests for the analytic I/O device models and access traces."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import (
    HDD,
    MEMORY,
    SSD,
    AccessEvent,
    AccessTrace,
    DeviceModel,
    random_vs_sequential_curve,
)


class TestDeviceModel:
    def test_sequential_time_scales_with_bytes(self):
        assert HDD.sequential_time(2e8) > HDD.sequential_time(1e8)

    def test_zero_bytes_is_free(self):
        assert HDD.sequential_time(0) == 0.0
        assert HDD.random_time(100, 0) == 0.0

    def test_random_pays_latency_per_access(self):
        one = HDD.random_time(1000, 1)
        ten = HDD.random_time(1000, 10)
        assert ten == pytest.approx(10 * one)
        assert one > HDD.access_latency_s

    def test_ssd_faster_than_hdd(self):
        assert SSD.random_time(4096, 100) < HDD.random_time(4096, 100)
        assert SSD.sequential_time(1e9) < HDD.sequential_time(1e9)

    def test_memory_is_fastest(self):
        assert MEMORY.sequential_time(1e9) < SSD.sequential_time(1e9)

    def test_random_throughput_approaches_bandwidth(self):
        # The Appendix A claim: at ~10MB blocks, random ~= sequential.
        small = HDD.random_throughput(4096)
        large = HDD.random_throughput(10 * 1024**2)
        assert small < 0.01 * HDD.bandwidth_bytes_per_s
        assert large > 0.85 * HDD.bandwidth_bytes_per_s

    def test_random_throughput_monotone_in_block_size(self):
        sizes = [2**k for k in range(10, 26)]
        tps = [HDD.random_throughput(s) for s in sizes]
        assert tps == sorted(tps)


class TestAccessEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            AccessEvent("scan", 1, 10)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            AccessEvent("seq", -1, 10)

    def test_seq_vs_rand_cost(self):
        seq = AccessEvent("seq", 100, 8192)
        rand = AccessEvent("rand", 100, 8192)
        assert rand.time_on(HDD) > seq.time_on(HDD)

    def test_write_kinds_accepted(self):
        assert AccessEvent("seq_write", 1, 10).time_on(SSD) > 0
        assert AccessEvent("rand_write", 1, 10).time_on(SSD) > 0


class TestAccessTrace:
    def test_totals(self):
        trace = AccessTrace()
        trace.add("seq", 2, 100)
        trace.add("rand", 3, 10)
        trace.add("seq_write", 1, 50)
        assert trace.total_bytes == 2 * 100 + 3 * 10 + 50
        assert trace.read_bytes == 230
        assert trace.write_bytes == 50
        assert len(trace) == 3

    def test_time_is_sum_of_events(self):
        trace = AccessTrace()
        trace.add("seq", 1, 1e6)
        trace.add("rand", 5, 1e4)
        expected = HDD.sequential_time(1e6) + HDD.random_time(1e4, 5)
        assert trace.time_on(HDD) == pytest.approx(expected)

    def test_extend(self):
        a = AccessTrace()
        a.add("seq", 1, 10)
        b = AccessTrace()
        b.add("rand", 1, 10)
        a.extend(b)
        assert len(a) == 2


class TestFigure20Curve:
    def test_ratio_crosses_ninety_percent(self):
        sizes = [2**20 * s for s in (1, 2, 5, 10, 50)]
        records = random_vs_sequential_curve(HDD, sizes)
        ratios = [r["ratio"] for r in records]
        assert ratios[0] < 0.5
        assert ratios[-1] > 0.97
        assert ratios == sorted(ratios)

    def test_record_fields(self):
        (record,) = random_vs_sequential_curve(SSD, [1024])
        assert record["device"] == "ssd"
        assert record["sequential_mb_per_s"] == pytest.approx(1000.0)


@settings(max_examples=40, deadline=None)
@given(
    latency=st.floats(1e-6, 1e-1),
    bandwidth=st.floats(1e6, 1e10),
    chunk=st.floats(1, 1e9),
)
def test_property_random_never_beats_sequential(latency, bandwidth, chunk):
    device = DeviceModel("x", latency, bandwidth)
    assert device.random_throughput(chunk) <= device.bandwidth_bytes_per_s


class TestStripedDevice:
    def _lustre(self, **kw):
        from repro.storage import StripedDevice

        defaults = dict(
            name="lustre",
            access_latency_s=5e-4,
            bandwidth_bytes_per_s=500e6,
            n_stripes=8,
            stripe_bytes=4 * 1024**2,
            client_bandwidth_bytes_per_s=10e9,
        )
        defaults.update(kw)
        return StripedDevice(**defaults)

    def test_small_reads_single_target_speed(self):
        device = self._lustre()
        one_mb = 1024**2
        # Within one stripe: per-target bandwidth only.
        assert device.sequential_time(one_mb) == pytest.approx(
            5e-4 + one_mb / 500e6
        )

    def test_large_reads_parallelise_across_stripes(self):
        device = self._lustre()
        big = 64 * 1024**2  # 16 stripes worth -> all 8 targets engaged
        serial_estimate = big / 500e6
        assert device.sequential_time(big) < serial_estimate / 4

    def test_client_bandwidth_caps_parallelism(self):
        device = self._lustre(client_bandwidth_bytes_per_s=600e6)
        big = 64 * 1024**2
        assert device.sequential_time(big) >= big / 600e6

    def test_random_block_reads_amortise_like_figure20(self):
        device = self._lustre()
        small = device.random_throughput(64 * 1024)
        large = device.random_throughput(32 * 1024**2)
        assert large > 20 * small

    def test_zero_and_negative(self):
        device = self._lustre()
        assert device.sequential_time(0) == 0.0
        assert device.random_time(100, 0) == 0.0
        assert device.random_throughput(0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            self._lustre(n_stripes=0)
        with pytest.raises(ValueError):
            self._lustre(stripe_bytes=0)

    def test_usable_in_access_trace(self):
        device = self._lustre()
        trace = AccessTrace()
        trace.add("rand", 10, 8 * 1024**2)
        assert trace.time_on(device) > 0
