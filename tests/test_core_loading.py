"""Tests for ShuffleBuffer, pipeline timing, CorgiPileDataset, DataLoader."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Batch,
    CorgiPileDataset,
    DataLoader,
    ShuffleBuffer,
    collate,
    pipelined_time,
    serial_time,
)
from repro.storage import write_block_file


class TestShuffleBuffer:
    def test_fill_shuffle_drain(self):
        rng = np.random.default_rng(0)
        buf: ShuffleBuffer[int] = ShuffleBuffer(10, rng)
        added = buf.fill_from(iter(range(25)))
        assert added == 10
        assert buf.full
        drained = buf.shuffle_and_drain()
        assert sorted(drained) == list(range(10))
        assert len(buf) == 0

    def test_add_beyond_capacity_rejected(self):
        buf: ShuffleBuffer[int] = ShuffleBuffer(1, np.random.default_rng(0))
        buf.add(1)
        with pytest.raises(ValueError):
            buf.add(2)

    def test_partial_fill(self):
        buf: ShuffleBuffer[int] = ShuffleBuffer(10, np.random.default_rng(0))
        assert buf.fill_from(iter(range(3))) == 3
        assert not buf.full
        assert sorted(buf.shuffle_and_drain()) == [0, 1, 2]

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ShuffleBuffer(0, np.random.default_rng(0))

    def test_fill_from_full_buffer_does_not_overfill(self):
        """Regression: fill_from on a full buffer must not exceed capacity."""
        buf: ShuffleBuffer[int] = ShuffleBuffer(3, np.random.default_rng(0))
        assert buf.fill_from(iter(range(3))) == 3
        assert buf.full
        assert buf.fill_from(iter(range(100))) == 0
        assert len(buf) == 3

    def test_fill_from_consumes_only_stored_items(self):
        buf: ShuffleBuffer[int] = ShuffleBuffer(5, np.random.default_rng(0))
        buf.add(0)
        source = iter(range(10, 20))
        assert buf.fill_from(source) == 4
        assert len(buf) == 5
        # The first unstored item is still available from the source.
        assert next(source) == 14


class TestPipelineTiming:
    def test_serial_is_sum(self):
        assert serial_time([1, 2], [3, 4]) == 10

    def test_pipelined_overlaps(self):
        # fill0=2, then max(fill1=2, consume0=3)=3, then consume1=3.
        assert pipelined_time([2, 2], [3, 3]) == 8
        assert serial_time([2, 2], [3, 3]) == 10

    def test_pipelined_never_slower_than_serial(self):
        rng = np.random.default_rng(1)
        for _ in range(20):
            fills = rng.random(5).tolist()
            consumes = rng.random(5).tolist()
            assert pipelined_time(fills, consumes) <= serial_time(fills, consumes) + 1e-12

    def test_empty(self):
        assert pipelined_time([], []) == 0.0
        assert serial_time([], []) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            pipelined_time([1], [])
        with pytest.raises(ValueError):
            serial_time([1], [])

    def test_single_fill(self):
        assert pipelined_time([2], [5]) == 7


@pytest.fixture()
def block_file(tmp_path, dense_binary):
    path = tmp_path / "train.blocks"
    write_block_file(dense_binary, path, tuples_per_block=30)  # 20 blocks
    return path


class TestCorgiPileDataset:
    def test_iterates_every_tuple_once(self, block_file, dense_binary):
        with CorgiPileDataset(block_file, buffer_blocks=4, seed=0) as ds:
            ids = [r.tuple_id for r in ds]
        assert sorted(ids) == list(range(dense_binary.n_tuples))

    def test_order_is_shuffled(self, block_file):
        with CorgiPileDataset(block_file, buffer_blocks=4, seed=0) as ds:
            ids = np.array([r.tuple_id for r in ds])
        assert not np.array_equal(ids, np.arange(ids.size))

    def test_set_epoch_changes_order(self, block_file):
        with CorgiPileDataset(block_file, buffer_blocks=4, seed=0) as ds:
            first = [r.tuple_id for r in ds]
            ds.set_epoch(1)
            second = [r.tuple_id for r in ds]
        assert first != second
        assert sorted(first) == sorted(second)

    def test_same_epoch_replays(self, block_file):
        with CorgiPileDataset(block_file, buffer_blocks=4, seed=0) as ds:
            first = [r.tuple_id for r in ds]
            second = [r.tuple_id for r in ds]
        assert first == second

    def test_workers_partition_data(self, block_file, dense_binary):
        ids: list[int] = []
        for w in range(3):
            with CorgiPileDataset(block_file, 2, seed=0, worker_id=w, n_workers=3) as ds:
                ids.extend(r.tuple_id for r in ds)
        assert sorted(ids) == list(range(dense_binary.n_tuples))

    def test_invalid_args(self, block_file):
        with pytest.raises(ValueError):
            CorgiPileDataset(block_file, buffer_blocks=0)
        with pytest.raises(ValueError):
            CorgiPileDataset(block_file, 1, worker_id=2, n_workers=2)

    def test_negative_epoch_rejected(self, block_file):
        ds = CorgiPileDataset(block_file, 2)
        with pytest.raises(ValueError):
            ds.set_epoch(-1)
        ds.close()


class TestDataLoader:
    def test_batches_dense(self, block_file, dense_binary):
        with CorgiPileDataset(block_file, 4, seed=0) as ds:
            loader = DataLoader(ds, batch_size=64)
            batches = list(loader)
        assert sum(len(b) for b in batches) == dense_binary.n_tuples
        assert batches[0].X.shape == (64, dense_binary.n_features)
        assert batches[0].y.shape == (64,)

    def test_drop_last(self, block_file, dense_binary):
        with CorgiPileDataset(block_file, 4, seed=0) as ds:
            batches = list(DataLoader(ds, batch_size=64, drop_last=True))
        assert all(len(b) == 64 for b in batches)

    def test_collate_sparse(self, sparse_binary, tmp_path):
        path = tmp_path / "sparse.blocks"
        write_block_file(sparse_binary, path, tuples_per_block=25)
        with CorgiPileDataset(path, 2, seed=0) as ds:
            batch = next(iter(DataLoader(ds, batch_size=16)))
        assert batch.X.shape == (16, sparse_binary.n_features)
        # Batch rows must match the dataset rows they claim to be.
        dense = sparse_binary.X.to_dense()
        np.testing.assert_allclose(batch.X.to_dense()[0], dense[batch.tuple_ids[0]])

    def test_collate_empty_rejected(self):
        with pytest.raises(ValueError):
            collate([])

    def test_invalid_batch_size(self, block_file):
        with pytest.raises(ValueError):
            DataLoader([], batch_size=0)

    def test_batch_labels_align(self, block_file, dense_binary):
        with CorgiPileDataset(block_file, 4, seed=1) as ds:
            batch = next(iter(DataLoader(ds, batch_size=32)))
        assert isinstance(batch, Batch)
        np.testing.assert_allclose(batch.y, dense_binary.y[batch.tuple_ids])
