"""Tests for Dataset and BlockLayout."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import BlockLayout, Dataset, make_binary_dense, make_binary_sparse


class TestBlockLayout:
    def test_block_count_exact(self):
        assert BlockLayout(100, 10).n_blocks == 10

    def test_block_count_ragged(self):
        assert BlockLayout(105, 10).n_blocks == 11

    def test_block_slices_cover_all_tuples(self):
        layout = BlockLayout(105, 10)
        covered = []
        for b in range(layout.n_blocks):
            covered.extend(layout.block_indices(b).tolist())
        assert covered == list(range(105))

    def test_last_block_is_ragged(self):
        layout = BlockLayout(105, 10)
        assert layout.block_size(10) == 5

    def test_block_of_inverse(self):
        layout = BlockLayout(50, 7)
        for t in range(50):
            assert t in layout.block_indices(layout.block_of(t)).tolist()

    def test_out_of_range_block(self):
        with pytest.raises(IndexError):
            BlockLayout(10, 5).block_slice(2)

    def test_out_of_range_tuple(self):
        with pytest.raises(IndexError):
            BlockLayout(10, 5).block_of(10)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            BlockLayout(0, 5)
        with pytest.raises(ValueError):
            BlockLayout(5, 0)

    def test_from_block_count(self):
        layout = BlockLayout.from_block_count(100, 7)
        assert layout.n_blocks in (7, 8)
        assert layout.n_tuples == 100

    @settings(max_examples=50, deadline=None)
    @given(n=st.integers(1, 500), b=st.integers(1, 50))
    def test_property_partition(self, n, b):
        layout = BlockLayout(n, b)
        total = sum(layout.block_size(i) for i in range(layout.n_blocks))
        assert total == n
        assert all(1 <= layout.block_size(i) <= b for i in range(layout.n_blocks))


class TestDataset:
    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 2)), np.zeros(4))

    def test_binary_label_validation(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((2, 2)), np.array([0.0, 1.0]), task="binary")

    def test_unknown_task_rejected(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((2, 2)), np.array([1.0, -1.0]), task="ranking")

    def test_reorder_moves_rows_and_labels_together(self):
        ds = make_binary_dense(20, 3, seed=0)
        perm = np.arange(20)[::-1]
        reordered = ds.reorder(perm)
        np.testing.assert_allclose(reordered.X, ds.X[perm])
        np.testing.assert_allclose(reordered.y, ds.y[perm])

    def test_reorder_wrong_length(self):
        ds = make_binary_dense(10, 3, seed=0)
        with pytest.raises(ValueError):
            ds.reorder(np.arange(5))

    def test_shuffled_is_permutation(self):
        ds = make_binary_dense(30, 3, seed=0)
        shuffled = ds.shuffled(seed=4)
        assert sorted(shuffled.y.tolist()) == sorted(ds.y.tolist())
        assert not np.array_equal(shuffled.X, ds.X)

    def test_split_disjoint_and_complete(self):
        ds = make_binary_dense(100, 3, seed=0)
        train, test = ds.split(0.8, seed=2)
        assert train.n_tuples == 80
        assert test.n_tuples == 20

    def test_split_invalid_fraction(self):
        ds = make_binary_dense(10, 3, seed=0)
        with pytest.raises(ValueError):
            ds.split(1.0)

    def test_sparse_reorder(self, sparse_binary):
        perm = np.random.default_rng(0).permutation(sparse_binary.n_tuples)
        reordered = sparse_binary.reorder(perm)
        np.testing.assert_allclose(
            reordered.X.to_dense(), sparse_binary.X.to_dense()[perm]
        )

    def test_n_features(self, dense_binary, sparse_binary):
        assert dense_binary.n_features == 12
        assert sparse_binary.n_features == 150

    def test_is_sparse_flag(self, dense_binary, sparse_binary):
        assert not dense_binary.is_sparse
        assert sparse_binary.is_sparse

    def test_n_classes(self, multiclass_dense):
        assert multiclass_dense.n_classes == 4

    def test_n_classes_regression_rejected(self):
        ds = Dataset(np.zeros((3, 2)), np.array([0.1, 0.2, 0.3]), task="regression")
        with pytest.raises(ValueError):
            _ = ds.n_classes

    def test_layout_helper(self, dense_binary):
        layout = dense_binary.layout(25)
        assert layout.n_tuples == dense_binary.n_tuples
        assert layout.tuples_per_block == 25
