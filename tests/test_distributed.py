"""Tests for multi-process CorgiPile (Section 5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CorgiPileShuffle, MultiProcessCorgiPile
from repro.data import BlockLayout, clustered_by_label
from repro.theory import label_mixing_deviation


@pytest.fixture()
def mp() -> MultiProcessCorgiPile:
    layout = BlockLayout(640, 20)  # 32 blocks
    return MultiProcessCorgiPile(layout, n_workers=4, buffer_blocks_per_worker=2, seed=5)


class TestBlockAssignment:
    def test_workers_get_disjoint_blocks(self, mp):
        assignments = mp.worker_blocks(0)
        seen: set[int] = set()
        for blocks in assignments:
            as_set = set(blocks.tolist())
            assert not (seen & as_set)
            seen |= as_set
        assert seen == set(range(32))

    def test_same_seed_same_assignment(self, mp):
        other = MultiProcessCorgiPile(mp.layout, 4, 2, seed=5)
        for a, b in zip(mp.worker_blocks(3), other.worker_blocks(3)):
            np.testing.assert_array_equal(a, b)

    def test_epochs_reshuffle_blocks(self, mp):
        a = np.concatenate(mp.worker_blocks(0))
        b = np.concatenate(mp.worker_blocks(1))
        assert not np.array_equal(a, b)


class TestWorkerStreams:
    def test_worker_stream_covers_its_blocks(self, mp):
        blocks = mp.worker_blocks(0)[1]
        stream = mp.worker_epoch_indices(0, 1)
        expected = set()
        for b in blocks:
            expected.update(mp.layout.block_indices(int(b)).tolist())
        assert set(stream.tolist()) == expected

    def test_invalid_worker(self, mp):
        with pytest.raises(IndexError):
            mp.worker_epoch_indices(0, 99)

    def test_streams_are_shuffled(self, mp):
        stream = mp.worker_epoch_indices(0, 0)
        assert not np.all(np.diff(stream) == 1)


class TestGlobalBatches:
    def test_each_batch_takes_equally_from_workers(self, mp):
        batches = list(mp.global_batches(0, global_batch_size=32))
        streams = [mp.worker_epoch_indices(0, w) for w in range(4)]
        first = batches[0]
        for w in range(4):
            np.testing.assert_array_equal(first[w * 8 : (w + 1) * 8], streams[w][:8])

    def test_batch_size_must_divide(self, mp):
        with pytest.raises(ValueError):
            list(mp.global_batches(0, global_batch_size=30))

    def test_epoch_indices_flatten(self, mp):
        flat = mp.epoch_indices(0, global_batch_size=32)
        assert flat.size == 32 * len(list(mp.global_batches(0, 32)))
        assert flat.size % 32 == 0

    def test_all_indices_valid(self, mp):
        flat = mp.epoch_indices(0, 32)
        assert flat.min() >= 0 and flat.max() < 640
        assert len(set(flat.tolist())) == flat.size  # no duplicates


class TestEquivalenceWithSingleProcess:
    def test_equivalent_buffer_scaling(self, mp):
        single = mp.equivalent_single_process()
        assert isinstance(single, CorgiPileShuffle)
        assert single.buffer_blocks == 8  # 4 workers x 2 blocks

    def test_label_mixing_comparable(self):
        """Figure 5's claim: multi-process order mixes like single-process.

        On a clustered table, both orders should spread labels across
        windows comparably (within a tolerance), while the raw clustered
        order does not.
        """
        from repro.data import make_binary_dense

        ds = clustered_by_label(make_binary_dense(640, 4, seed=0), seed=0)
        layout = ds.layout(20)
        mp = MultiProcessCorgiPile(layout, 4, 2, seed=9)
        multi_order = mp.epoch_indices(0, global_batch_size=64)
        single_order = mp.equivalent_single_process().epoch_indices(0)
        dev_multi = label_mixing_deviation(multi_order, ds.y, window=64)
        dev_single = label_mixing_deviation(single_order, ds.y, window=64)
        dev_none = label_mixing_deviation(np.arange(640), ds.y, window=64)
        assert abs(dev_multi - dev_single) < 0.15
        assert dev_multi < dev_none / 2

    def test_construction_validation(self):
        layout = BlockLayout(100, 10)
        with pytest.raises(ValueError):
            MultiProcessCorgiPile(layout, 0, 1)
        with pytest.raises(ValueError):
            MultiProcessCorgiPile(layout, 2, 0)
