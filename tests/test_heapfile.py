"""Tests for pages, heap files, blocks, and TOAST-like compression."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import make_binary_dense, make_binary_sparse
from repro.storage import DEFAULT_PAGE_BYTES, HeapFile, Page


class TestPage:
    def test_append_and_capacity(self):
        page = Page(0, capacity=100)
        page.append(b"x" * 60)
        assert page.fits(40)
        assert not page.fits(41)
        page.append(b"y" * 40)
        assert page.free_bytes == 0

    def test_overflow_rejected(self):
        page = Page(0, capacity=10)
        page.append(b"12345")
        with pytest.raises(ValueError):
            page.append(b"123456")

    def test_oversized_tuple_rejected(self):
        page = Page(0, capacity=10)
        with pytest.raises(ValueError):
            page.append(b"x" * 11)

    def test_raw_concatenates(self):
        page = Page(0, capacity=10)
        page.append(b"ab")
        page.append(b"cd")
        assert page.raw() == b"abcd"
        assert page.n_tuples == 2


class TestHeapFile:
    def test_scan_preserves_order(self, dense_binary):
        heap = HeapFile.from_dataset(dense_binary, page_bytes=1024)
        ids = [t.tuple_id for t in heap.scan()]
        assert ids == list(range(dense_binary.n_tuples))

    def test_scan_roundtrips_features(self, dense_binary):
        heap = HeapFile.from_dataset(dense_binary, page_bytes=1024)
        for i, record in enumerate(heap.scan()):
            if i >= 20:
                break
            np.testing.assert_allclose(record.features, dense_binary.X[i])
            assert record.label == dense_binary.y[i]

    def test_read_tuple_random_access(self, dense_binary):
        heap = HeapFile.from_dataset(dense_binary, page_bytes=1024)
        record = heap.read_tuple(123)
        assert record.tuple_id == 123
        np.testing.assert_allclose(record.features, dense_binary.X[123])

    def test_page_sizes(self, dense_binary):
        heap = HeapFile.from_dataset(dense_binary, page_bytes=1024)
        assert all(p.used_bytes <= p.capacity for p in heap.pages)
        assert heap.n_pages > 1
        assert heap.total_bytes >= heap.payload_bytes

    def test_sparse_dataset(self, sparse_binary):
        heap = HeapFile.from_dataset(sparse_binary, page_bytes=1024)
        record = heap.read_tuple(10)
        assert record.is_sparse
        np.testing.assert_allclose(
            record.features.to_dense(), sparse_binary.X.to_dense()[10]
        )

    def test_blocks_partition_pages(self, dense_binary):
        heap = HeapFile.from_dataset(dense_binary, page_bytes=1024)
        block_bytes = 4096  # 4 pages per block
        seen_pages: list[int] = []
        for b in range(heap.n_blocks(block_bytes)):
            seen_pages.extend(heap.block_pages(b, block_bytes))
        assert seen_pages == list(range(heap.n_pages))

    def test_read_block_tuples(self, dense_binary):
        heap = HeapFile.from_dataset(dense_binary, page_bytes=1024)
        tuples = heap.read_block(0, 4096)
        assert tuples[0].tuple_id == 0
        assert len(tuples) > 1

    def test_block_out_of_range(self, dense_binary):
        heap = HeapFile.from_dataset(dense_binary, page_bytes=1024)
        with pytest.raises(IndexError):
            heap.read_block(999, 4096)

    def test_block_smaller_than_page_rejected(self, dense_binary):
        heap = HeapFile.from_dataset(dense_binary, page_bytes=1024)
        with pytest.raises(ValueError):
            heap.pages_per_block(512)

    def test_default_page_size(self, dense_binary):
        heap = HeapFile.from_dataset(dense_binary)
        assert heap.page_bytes == DEFAULT_PAGE_BYTES


class TestCompression:
    def test_compressed_roundtrip(self, dense_binary):
        heap = HeapFile.from_dataset(dense_binary, page_bytes=1024, compress=True)
        record = heap.read_tuple(5)
        np.testing.assert_allclose(record.features, dense_binary.X[5])

    def test_compression_shrinks_redundant_data(self):
        # Highly compressible features (constant columns).
        ds = make_binary_dense(200, 50, seed=0)
        ds.X[:, 10:] = 0.0
        plain = HeapFile.from_dataset(ds, page_bytes=2048)
        packed = HeapFile.from_dataset(ds, page_bytes=2048, compress=True)
        assert packed.payload_bytes < plain.payload_bytes

    def test_decode_count_tracks_cpu_work(self, dense_binary):
        heap = HeapFile.from_dataset(dense_binary, page_bytes=1024)
        before = heap.decode_count
        heap.read_page(0)
        assert heap.decode_count > before
