"""``TRAIN ... WHERE``: bit-exactness, planner decision, warm start."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import ordered_by_feature
from repro.db import EngineError, MiniDB, TrainQuery
from repro.db.engine import WHERE_STRATEGIES
from repro.db.query import CreateIndexQuery, parse_predicate

EPOCHS = 3
BLOCK = 4 * 1024


def _filtered_db(dataset, *, index: bool = True) -> MiniDB:
    db = MiniDB(page_bytes=1024)
    db.create_table("t", dataset)
    if index:
        db.create_index(CreateIndexQuery(name="ix_f0", table="t", column="f0"))
    return db


def _where_query(predicate: str, strategy: str = "corgipile", **kwargs) -> TrainQuery:
    return TrainQuery(
        table="t",
        model="lr",
        strategy=strategy,
        max_epoch_num=EPOCHS,
        block_size=BLOCK,
        buffer_fraction=0.2,
        seed=7,
        where=parse_predicate(predicate),
        **kwargs,
    )


def _reference(dataset, predicate: str, strategy: str):
    """Plain TRAIN over a *materialised* copy of the filtered subset."""
    mask = parse_predicate(predicate).mask(dataset.X, dataset.y)
    subset = dataset.subset(np.flatnonzero(mask))
    db = MiniDB(page_bytes=1024)
    db.create_table("t", subset)
    query = TrainQuery(
        table="t",
        model="lr",
        strategy=strategy,
        max_epoch_num=EPOCHS,
        block_size=BLOCK,
        buffer_fraction=0.2,
        seed=7,
    )
    return db.train(query)


def _assert_same_model(result, reference):
    for key in reference.model.params:
        assert np.array_equal(result.model.params[key], reference.model.params[key]), key
    got = [r.train_loss for r in result.history.records]
    want = [r.train_loss for r in reference.history.records]
    assert got == want


class TestBitExactness:
    @pytest.mark.parametrize("strategy", WHERE_STRATEGIES)
    def test_index_fetch_matches_materialised_subset(self, dense_binary, strategy):
        """Clustered key, selective range -> index path; every WHERE-capable
        strategy must train bit-identically to the materialised copy."""
        dataset = ordered_by_feature(dense_binary, 0, seed=0)
        threshold = float(np.quantile(np.asarray(dataset.X[:, 0]), 0.85))
        predicate = f"f0 >= {threshold!r}"
        db = _filtered_db(dataset)
        result = db.train(_where_query(predicate, strategy))
        if strategy != "no_shuffle":
            assert result.query.extra["where"]["fetch"] == "index"
        _assert_same_model(result, _reference(dataset, predicate, strategy))

    def test_scan_fetch_matches_materialised_subset(self, dense_binary):
        """Scattered qualifying pages -> full-scan prefetch; still bit-exact."""
        predicate = "f0 >= 0"  # ~half the shuffled table, every page qualifies
        db = _filtered_db(dense_binary)
        result = db.train(_where_query(predicate))
        assert result.query.extra["where"]["fetch"] == "scan"
        _assert_same_model(result, _reference(dense_binary, predicate, "corgipile"))

    def test_no_index_matches_indexed_run(self, dense_binary):
        """The physical path must not leak into the visit order: the same
        filtered TRAIN with and without an index trains identically."""
        dataset = ordered_by_feature(dense_binary, 0, seed=0)
        threshold = float(np.quantile(np.asarray(dataset.X[:, 0]), 0.85))
        predicate = f"f0 >= {threshold!r}"
        with_ix = _filtered_db(dataset).train(_where_query(predicate))
        without_ix = _filtered_db(dataset, index=False).train(_where_query(predicate))
        assert without_ix.query.extra["where"]["index"] is None
        for key in with_ix.model.params:
            assert np.array_equal(
                with_ix.model.params[key], without_ix.model.params[key]
            ), key

    def test_sparse_table_where(self, sparse_binary):
        predicate = "label = 1"
        db = MiniDB(page_bytes=1024)
        db.create_table("t", sparse_binary)
        result = db.train(_where_query(predicate))
        _assert_same_model(result, _reference(sparse_binary, predicate, "corgipile"))


class TestPlannerAndErrors:
    def test_auto_resolves_to_corgipile(self, dense_binary):
        db = _filtered_db(dense_binary)
        result = db.train(_where_query("f0 >= 0", strategy="auto"))
        assert result.query.strategy == "corgipile"

    def test_unsupported_strategy_rejected(self, dense_binary):
        db = _filtered_db(dense_binary)
        with pytest.raises(EngineError, match="WHERE"):
            db.train(_where_query("f0 >= 0", strategy="sliding_window"))

    def test_empty_match_rejected(self, dense_binary):
        db = _filtered_db(dense_binary)
        with pytest.raises(EngineError, match="match"):
            db.train(_where_query("f0 >= 1e12"))

    def test_decision_doc_recorded(self, dense_binary):
        dataset = ordered_by_feature(dense_binary, 0, seed=0)
        threshold = float(np.quantile(np.asarray(dataset.X[:, 0]), 0.9))
        db = _filtered_db(dataset)
        result = db.train(_where_query(f"f0 >= {threshold!r}"))
        decision = result.query.extra["where"]
        assert decision["index"] == "ix_f0"
        assert decision["fetch"] == "index"
        assert 0 < decision["n_matching"] < decision["n_tuples"]
        assert decision["physical"]["device_page_reads"] <= decision["physical"]["pages_fetched"]
        assert decision["physical"]["blocks_loaded"] >= EPOCHS  # >= one per epoch

    def test_explain_renders_where_block(self, dense_binary):
        dataset = ordered_by_feature(dense_binary, 0, seed=0)
        threshold = float(np.quantile(np.asarray(dataset.X[:, 0]), 0.9))
        db = _filtered_db(dataset)
        plan = db.explain(_where_query(f"f0 >= {threshold!r}"))
        assert f"WHERE f0 >= " in plan
        assert "index: ix_f0 on f0" in plan
        assert "fetch path:" in plan
        assert "RidBlockShuffle" in plan
        no_shuffle = db.explain(_where_query(f"f0 >= {threshold!r}", "no_shuffle"))
        assert "FilteredSeqScan" in no_shuffle

    def test_select_where_uses_index(self, dense_binary):
        from repro.db.query import parse_query

        dataset = ordered_by_feature(dense_binary, 0, seed=0)
        threshold = float(np.quantile(np.asarray(dataset.X[:, 0]), 0.95))
        db = _filtered_db(dataset)
        result = db.select(parse_query(f"SELECT * FROM t WHERE f0 >= {threshold!r}"))
        assert result["via_index"] == "ix_f0"
        assert result["rows"]
        assert all(row["features"][0] >= threshold for row in result["rows"])

    def test_observed_epoch_walls_recorded(self, dense_binary):
        db = _filtered_db(dense_binary)
        result = db.train(_where_query("f0 >= 0"))
        observed = result.query.extra["advisor"]["observed"]
        assert len(observed["epoch_wall_s"]) == EPOCHS
        assert all(w >= 0 for w in observed["epoch_wall_s"])
        assert observed["total_wall_s"] >= max(observed["epoch_wall_s"])


class TestWarmStart:
    def test_warm_start_from_registered_model(self, dense_binary):
        db = _filtered_db(dense_binary)
        first = db.train(_where_query("f0 >= 0"))
        frozen = {k: v.copy() for k, v in first.model.params.items()}
        second = db.train(
            _where_query("f0 >= 0", extra={"warm_start": first.model_id})
        )
        # The source model is cloned, never trained in place.
        for key in frozen:
            assert np.array_equal(first.model.params[key], frozen[key]), key
        # And the second run actually moved off the warm parameters.
        assert any(
            not np.array_equal(second.model.params[k], frozen[k]) for k in frozen
        )

    def test_warm_start_continues_convergence(self, dense_binary):
        db = _filtered_db(dense_binary)
        first = db.train(_where_query("f0 >= 0"))
        second = db.train(_where_query("f0 >= 0", extra={"warm_start": first.model_id}))
        # Starting from trained weights, epoch 0 loss must beat the cold run's.
        assert (
            second.history.records[0].train_loss
            < first.history.records[0].train_loss
        )

    def test_warm_start_unknown_id_rejected(self, dense_binary):
        db = _filtered_db(dense_binary)
        with pytest.raises(EngineError, match="warm"):
            db.train(_where_query("f0 >= 0", extra={"warm_start": "model_404"}))

    def test_warm_start_type_mismatch_rejected(self, dense_binary):
        db = _filtered_db(dense_binary)
        svm = db.train(
            TrainQuery(
                table="t", model="svm", strategy="corgipile",
                max_epoch_num=1, block_size=BLOCK, seed=7,
            )
        )
        with pytest.raises(EngineError):
            db.train(_where_query("f0 >= 0", extra={"warm_start": svm.model_id}))

    def test_warm_start_from_npz_path(self, dense_binary, tmp_path):
        from repro.ml import save_model

        db = _filtered_db(dense_binary)
        first = db.train(_where_query("f0 >= 0"))
        path = tmp_path / "warm.npz"
        save_model(first.model, path)
        second = db.train(_where_query("f0 >= 0", extra={"warm_start": str(path)}))
        assert (
            second.history.records[0].train_loss
            < first.history.records[0].train_loss
        )
