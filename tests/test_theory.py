"""Tests for the h_D factor, convergence bounds, and order diagnostics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import BlockLayout, Dataset, clustered_by_label, make_binary_dense
from repro.ml import LogisticRegression
from repro.theory import (
    PhysicalCost,
    alpha_factor,
    block_gradient_variance,
    corgipile_physical_time,
    distribution_report,
    gradient_variance,
    hd_factor,
    label_mixing_deviation,
    label_window_counts,
    nonconvex_factors,
    per_example_gradients,
    position_rank_correlation,
    strongly_convex_factors,
    theorem1_bound,
    theorem2_bound,
    vanilla_sgd_physical_time,
)


class TestPerExampleGradients:
    def test_mean_matches_batch_gradient(self, dense_binary):
        model = LogisticRegression(dense_binary.n_features)
        grads = per_example_gradients(model, dense_binary)
        batch = model.gradient(dense_binary.X, dense_binary.y)
        np.testing.assert_allclose(
            grads[:, :-1].mean(axis=0), batch["w"], atol=1e-10
        )
        np.testing.assert_allclose(grads[:, -1].mean(), batch["b"][0], atol=1e-10)

    def test_sigma_squared_manual(self):
        # Two examples with known gradients.
        X = np.array([[1.0], [-1.0]])
        y = np.array([1.0, 1.0])
        model = LogisticRegression(1, fit_intercept=False)
        grads = per_example_gradients(model, Dataset(X, y))
        manual = grads - grads.mean(axis=0)
        expected = float(np.mean((manual**2).sum(axis=1)))
        assert gradient_variance(model, Dataset(X, y)) == pytest.approx(expected)


class TestHDFactor:
    def test_clustered_much_larger_than_shuffled(self, dense_binary):
        model = LogisticRegression(dense_binary.n_features)
        layout = BlockLayout(dense_binary.n_tuples, 20)
        shuffled_hd = hd_factor(model, dense_binary.shuffled(seed=0), layout)
        clustered_hd = hd_factor(model, clustered_by_label(dense_binary), layout)
        # Shuffled data gives h_D near 1; clustering by label inflates it.
        assert shuffled_hd == pytest.approx(1.0, abs=0.35)
        assert clustered_hd > 2 * shuffled_hd

    def test_identical_tuples_per_block_reaches_b(self):
        # Each block holds b identical tuples: h_D == b exactly.
        b = 5
        rng = np.random.default_rng(0)
        blocks = []
        labels = []
        for _ in range(8):
            row = rng.standard_normal(3)
            label = 1.0 if rng.random() < 0.5 else -1.0
            blocks.append(np.tile(row, (b, 1)))
            labels.extend([label] * b)
        ds = Dataset(np.vstack(blocks), np.array(labels))
        model = LogisticRegression(3)
        layout = BlockLayout(ds.n_tuples, b)
        assert hd_factor(model, ds, layout) == pytest.approx(b, rel=0.01)

    def test_blockvar_nonnegative(self, dense_binary):
        model = LogisticRegression(dense_binary.n_features)
        layout = BlockLayout(dense_binary.n_tuples, 25)
        assert block_gradient_variance(model, dense_binary, layout) >= 0.0


class TestBoundFactors:
    def test_alpha_edges(self):
        assert alpha_factor(1, 10) == 0.0
        assert alpha_factor(10, 10) == 1.0

    def test_alpha_requires_two_blocks(self):
        with pytest.raises(ValueError):
            alpha_factor(1, 1)

    def test_beta_at_full_buffer(self):
        f = strongly_convex_factors(10, 10, 5)
        assert f.beta == pytest.approx(1.0)  # alpha=1 => beta = 1

    def test_beta_at_single_block(self):
        f = strongly_convex_factors(1, 10, 5)
        assert f.alpha == 0.0
        assert f.beta == pytest.approx(16.0)  # (b-1)^2

    def test_theorem1_leading_term_vanishes_at_full_buffer(self):
        # alpha = 1 removes the 1/T term: bound becomes O(1/T^2 + m^3/T^3).
        full = theorem1_bound(10_000, 10, 10, 5, sigma2=1.0, hd=5.0)
        partial = theorem1_bound(10_000, 2, 10, 5, sigma2=1.0, hd=5.0)
        assert full < partial

    def test_theorem1_monotone_decreasing_in_T(self):
        values = [
            theorem1_bound(T, 3, 10, 5, sigma2=1.0, hd=2.0) for T in (1000, 5000, 50_000)
        ]
        assert values == sorted(values, reverse=True)

    def test_theorem1_grows_with_hd(self):
        low = theorem1_bound(10_000, 3, 10, 5, sigma2=1.0, hd=1.0)
        high = theorem1_bound(10_000, 3, 10, 5, sigma2=1.0, hd=5.0)
        assert high > low

    def test_theorem1_validation(self):
        with pytest.raises(ValueError):
            theorem1_bound(0, 3, 10, 5, 1.0, 1.0)
        with pytest.raises(ValueError):
            theorem1_bound(10, 11, 10, 5, 1.0, 1.0)

    def test_theorem2_case_split(self):
        partial = theorem2_bound(10_000, 3, 10, 5, sigma2=1.0, hd=2.0)
        full = theorem2_bound(10_000, 10, 10, 5, sigma2=1.0, hd=2.0)
        assert partial > 0 and full > 0

    def test_nonconvex_factors_reject_full_buffer(self):
        with pytest.raises(ValueError):
            nonconvex_factors(10, 10, 5, 1.0, 1.0)


class TestPhysicalTime:
    def test_corgipile_beats_vanilla_on_latency_bound_device(self):
        cost = PhysicalCost(t_latency_s=8e-3, t_transfer_s=1e-6)  # HDD-like
        vanilla = vanilla_sgd_physical_time(0.01, sigma2=1.0, cost=cost)
        corgi = corgipile_physical_time(
            0.01, sigma2=1.0, hd=2.0, block_size=1000, n_blocks_buffered=10,
            n_blocks_total=100, cost=cost,
        )
        assert corgi < vanilla

    def test_latency_always_amortised(self):
        # (1-alpha) * hd / b < 1 guarantees a latency win (Section 4.2).
        cost = PhysicalCost(t_latency_s=1e-2, t_transfer_s=0.0)
        vanilla = vanilla_sgd_physical_time(0.1, sigma2=1.0, cost=cost)
        corgi = corgipile_physical_time(
            0.1, 1.0, hd=50.0, block_size=100, n_blocks_buffered=2,
            n_blocks_total=100, cost=cost,
        )
        assert corgi < vanilla

    def test_validation(self):
        cost = PhysicalCost(1e-3, 1e-6)
        with pytest.raises(ValueError):
            vanilla_sgd_physical_time(0.0, 1.0, cost)


class TestDistributions:
    def test_window_counts_clustered_identity_order(self):
        labels = np.array([-1.0] * 40 + [1.0] * 40)
        counts = label_window_counts(np.arange(80), labels, window=20)
        np.testing.assert_array_equal(counts[0], [20, 0])
        np.testing.assert_array_equal(counts[-1], [0, 20])

    def test_window_counts_shape(self):
        labels = np.array([-1.0, 1.0] * 50)
        counts = label_window_counts(np.arange(100), labels, window=30)
        assert counts.shape == (3, 2)  # ragged tail dropped

    def test_rank_correlation_identity(self):
        assert position_rank_correlation(np.arange(100)) == pytest.approx(1.0)

    def test_rank_correlation_reverse(self):
        assert position_rank_correlation(np.arange(100)[::-1]) == pytest.approx(-1.0)

    def test_rank_correlation_shuffled_near_zero(self):
        order = np.random.default_rng(0).permutation(2000)
        assert abs(position_rank_correlation(order)) < 0.1

    def test_mixing_deviation_extremes(self):
        labels = np.array([-1.0] * 50 + [1.0] * 50)
        clustered_dev = label_mixing_deviation(np.arange(100), labels, window=10)
        perfect = np.ravel(np.column_stack([np.arange(50), 50 + np.arange(50)]))
        mixed_dev = label_mixing_deviation(perfect, labels, window=10)
        assert clustered_dev == pytest.approx(0.5)
        assert mixed_dev == pytest.approx(0.0)

    def test_report_fields(self):
        labels = np.array([-1.0, 1.0] * 30)
        report = distribution_report("x", np.arange(60), labels)
        assert set(report) == {"strategy", "rank_correlation", "label_mixing_deviation", "n_windows"}

    def test_validation(self):
        with pytest.raises(ValueError):
            position_rank_correlation(np.array([1]))
        with pytest.raises(ValueError):
            label_window_counts(np.arange(10), np.ones(10), window=0)
        with pytest.raises(ValueError):
            label_mixing_deviation(np.arange(5), np.ones(5), window=10)
