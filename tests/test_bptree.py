"""B+tree unit + property tests, and the ``.idx`` file round trip."""

from __future__ import annotations

import struct
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.index import (
    FORMAT_VERSION,
    MAGIC,
    BPlusTree,
    IndexFileReader,
    IndexFormatError,
    read_index_header,
    save_index,
)
from repro.storage.rid import RID, RID_BYTES, pack_rids, unpack_rids


def _pairs(n: int, *, stride: int = 1):
    """``n`` (key, RID) pairs with deterministic distinct addresses."""
    return [(float(i * stride), RID(i // 50, i % 50)) for i in range(n)]


class TestBPlusTree:
    def test_bulk_load_round_trip(self):
        pairs = _pairs(500)
        tree = BPlusTree.bulk_load(pairs, order=8)
        tree.check_invariants()
        assert tree.n_entries == 500
        assert list(tree.items()) == sorted(pairs)
        assert tree.height >= 2  # 500 entries at order 8 must actually split

    def test_insert_matches_bulk_load(self):
        pairs = _pairs(300)
        incremental = BPlusTree(order=6)
        for key, rid in reversed(pairs):
            incremental.insert(key, rid)
        incremental.check_invariants()
        assert list(incremental.items()) == list(
            BPlusTree.bulk_load(pairs, order=6).items()
        )

    def test_duplicate_keys_keep_distinct_rids(self):
        tree = BPlusTree(order=4)
        rids = [RID(p, 0) for p in range(20)]
        for rid in rids:
            tree.insert(1.5, rid)
        tree.check_invariants()
        assert sorted(tree.search(1.5)) == sorted(rids)
        assert tree.delete(1.5, rids[7])
        assert rids[7] not in tree.search(1.5)
        assert len(tree.search(1.5)) == 19

    def test_range_bounds(self):
        tree = BPlusTree.bulk_load(_pairs(100), order=8)
        keys = [k for k, _ in tree.range(10.0, 20.0)]
        assert keys == [float(k) for k in range(10, 21)]
        keys = [k for k, _ in tree.range(10.0, 20.0, lo_inclusive=False, hi_inclusive=False)]
        assert keys == [float(k) for k in range(11, 20)]
        assert [k for k, _ in tree.range(None, 3.0)] == [0.0, 1.0, 2.0, 3.0]
        assert [k for k, _ in tree.range(97.0, None)] == [97.0, 98.0, 99.0]
        assert list(tree.range(50.5, 50.9)) == []

    def test_delete_missing_returns_false(self):
        tree = BPlusTree.bulk_load(_pairs(10), order=4)
        assert not tree.delete(4.0, RID(99, 99))
        assert not tree.delete(123.0, RID(0, 0))
        assert tree.n_entries == 10

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(st.booleans(), st.integers(min_value=0, max_value=40)),
            min_size=1,
            max_size=120,
        )
    )
    def test_matches_reference_under_random_ops(self, ops):
        """Insert/delete streams agree with a plain sorted-list reference."""
        tree = BPlusTree(order=4)
        reference: list[tuple[float, RID]] = []
        for i, (is_insert, key) in enumerate(ops):
            rid = RID(0, i)
            if is_insert:
                tree.insert(float(key), rid)
                reference.append((float(key), rid))
            else:
                matches = [r for k, r in reference if k == float(key)]
                expected = bool(matches)
                victim = min(matches) if matches else RID(0, 0)
                assert tree.delete(float(key), victim) == expected
                if expected:
                    reference.remove((float(key), victim))
            tree.check_invariants()
        assert list(tree.items()) == sorted(reference)
        assert tree.n_entries == len(reference)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=-50, max_value=50), min_size=1, max_size=80))
    def test_range_is_sorted_slice(self, keys):
        pairs = [(float(k), RID(0, i)) for i, k in enumerate(keys)]
        tree = BPlusTree.bulk_load(pairs, order=4)
        got = list(tree.range(-10.0, 10.0))
        assert got == sorted(p for p in pairs if -10.0 <= p[0] <= 10.0)


class TestRidPacking:
    def test_round_trip(self):
        rids = [RID(0, 0), RID(1, 65535), RID(2**32 - 1, 7)]
        packed = pack_rids(rids)
        assert len(packed) == RID_BYTES * len(rids)
        assert unpack_rids(packed, len(rids)) == rids

    def test_single_rid_pack(self):
        rid = RID(123456, 42)
        assert RID.unpack(rid.pack()) == rid


class TestIdxFile:
    def test_save_load_round_trip(self, tmp_path):
        pairs = _pairs(400, stride=3)
        tree = BPlusTree.bulk_load(pairs, order=8)
        path = save_index(tree, "f2", tmp_path / "t.f2.idx")
        header = read_index_header(path)
        assert header["column"] == "f2"
        assert header["n_entries"] == 400
        assert header["version"] == FORMAT_VERSION
        reader = IndexFileReader(path)
        assert list(reader.items()) == sorted(pairs)
        assert reader.validate()["entries"] == 400
        rebuilt = reader.to_tree()
        rebuilt.check_invariants()
        assert list(rebuilt.items()) == sorted(pairs)

    def test_range_rids_match_tree(self, tmp_path):
        pairs = _pairs(200)
        tree = BPlusTree.bulk_load(pairs, order=8)
        path = save_index(tree, "f0", tmp_path / "t.idx")
        reader = IndexFileReader(path)
        want = list(tree.range(40.0, 90.0))
        assert list(reader.range_rids(40.0, 90.0)) == want
        assert list(reader.range_rids(40.0, 90.0, lo_inclusive=False)) == want[1:]

    def test_bad_magic_rejected(self, tmp_path):
        path = save_index(BPlusTree.bulk_load(_pairs(20)), "f0", tmp_path / "t.idx")
        blob = bytearray(path.read_bytes())
        blob[:4] = b"JUNK"
        path.write_bytes(bytes(blob))
        with pytest.raises(IndexFormatError):
            read_index_header(path)

    def test_future_version_rejected(self, tmp_path):
        path = save_index(BPlusTree.bulk_load(_pairs(20)), "f0", tmp_path / "t.idx")
        blob = bytearray(path.read_bytes())
        # Preamble: 4s magic + >H version; bump the version field.
        struct.pack_into(">H", blob, len(MAGIC), FORMAT_VERSION + 1)
        path.write_bytes(bytes(blob))
        with pytest.raises(IndexFormatError):
            read_index_header(path)

    def test_corrupt_header_crc_rejected(self, tmp_path):
        path = save_index(BPlusTree.bulk_load(_pairs(20)), "f0", tmp_path / "t.idx")
        blob = bytearray(path.read_bytes())
        # Flip a byte inside the JSON header (starts right after the preamble).
        blob[12] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(IndexFormatError):
            read_index_header(path)

    def test_torn_node_detected_by_crc(self, tmp_path):
        pairs = _pairs(300)
        path = save_index(BPlusTree.bulk_load(pairs, order=8), "f0", tmp_path / "t.idx")
        blob = bytearray(path.read_bytes())
        blob[-3] ^= 0x55  # land inside the last node's payload
        path.write_bytes(bytes(blob))
        with pytest.raises(Exception) as excinfo:
            IndexFileReader(path).validate()
        assert type(excinfo.value).__name__ in (
            "ChecksumError", "ReadExhaustedError", "IndexFormatError"
        )

    def test_crc32_directory_matches_payloads(self, tmp_path):
        """The node directory's CRCs actually cover the stored payloads."""
        path = save_index(BPlusTree.bulk_load(_pairs(150), order=8), "f0", tmp_path / "t.idx")
        header = read_index_header(path)
        reader = IndexFileReader(path)
        for node_id in range(header["n_nodes"]):
            raw = reader._read_node_raw(node_id)
            assert zlib.crc32(raw) == reader._directory[node_id][2]
