"""Tests for the threaded prefetch loader and the in-DB window/MRS operators."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.prefetch import PrefetchLoader
from repro.data import clustered_by_label, make_binary_dense
from repro.db import Catalog, MiniDB
from repro.db.engine import ENGINE_PROFILE
from repro.db.operators import (
    MultiplexedReservoirOperator,
    SeqScanOperator,
    SlidingWindowOperator,
)
from repro.db.timing import RuntimeContext
from repro.storage import SSD
from repro.theory import position_rank_correlation


class TestPrefetchLoader:
    def test_preserves_items_and_order(self):
        items = list(range(100))
        assert list(PrefetchLoader(items, depth=4)) == items

    def test_restartable(self):
        loader = PrefetchLoader([1, 2, 3], depth=2)
        assert list(loader) == [1, 2, 3]
        assert list(loader) == [1, 2, 3]

    def test_generator_source_per_epoch(self):
        class EpochSource:
            def __init__(self):
                self.epoch = 0

            def __iter__(self):
                self.epoch += 1
                return iter(range(self.epoch))

        source = EpochSource()
        loader = PrefetchLoader(source, depth=2)
        assert list(loader) == [0]
        assert list(loader) == [0, 1]

    def test_producer_exception_propagates(self):
        def broken():
            yield 1
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError, match="boom"):
            list(PrefetchLoader(broken(), depth=2))

    def test_overlaps_slow_producer_with_slow_consumer(self):
        delay = 0.01
        n = 12

        def slow_source():
            for i in range(n):
                time.sleep(delay)
                yield i

        # Serial: n*(delay_produce + delay_consume); overlapped: ~n*delay.
        start = time.perf_counter()
        for _ in PrefetchLoader(slow_source(), depth=2):
            time.sleep(delay)
        overlapped = time.perf_counter() - start
        assert overlapped < 1.7 * n * delay

    def test_abandoned_iteration_stops_producer(self):
        produced = []

        def source():
            for i in range(10_000):
                produced.append(i)
                yield i

        iterator = iter(PrefetchLoader(source(), depth=2))
        next(iterator)
        iterator.close()
        time.sleep(0.05)
        assert len(produced) < 10_000

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            PrefetchLoader([], depth=0)


@pytest.fixture()
def engine_table():
    ds = clustered_by_label(make_binary_dense(800, 8, separation=1.0, seed=0), seed=0)
    table = Catalog(page_bytes=512).create_table("t", ds)
    ctx = RuntimeContext(device=SSD, compute=ENGINE_PROFILE)
    return table, ctx, ds


class TestSlidingWindowOperator:
    def test_emits_permutation(self, engine_table):
        table, ctx, _ = engine_table
        op = SlidingWindowOperator(SeqScanOperator(table, ctx), 80, seed=0)
        op.open()
        ids = [r.tuple_id for r in op]
        assert sorted(ids) == list(range(table.n_tuples))

    def test_keeps_locality(self, engine_table):
        table, ctx, _ = engine_table
        op = SlidingWindowOperator(SeqScanOperator(table, ctx), 80, seed=0)
        op.open()
        ids = np.array([r.tuple_id for r in op])
        assert position_rank_correlation(ids) > 0.85

    def test_rescan_differs(self, engine_table):
        table, ctx, _ = engine_table
        op = SlidingWindowOperator(SeqScanOperator(table, ctx), 80, seed=0)
        op.open()
        first = [r.tuple_id for r in op]
        op.rescan()
        second = [r.tuple_id for r in op]
        assert first != second

    def test_invalid_window(self, engine_table):
        table, ctx, _ = engine_table
        with pytest.raises(ValueError):
            SlidingWindowOperator(SeqScanOperator(table, ctx), 0)


class TestMultiplexedReservoirOperator:
    def test_emits_one_per_scanned_tuple(self, engine_table):
        table, ctx, _ = engine_table
        op = MultiplexedReservoirOperator(SeqScanOperator(table, ctx), 80, seed=0)
        op.open()
        ids = [r.tuple_id for r in op]
        assert len(ids) == table.n_tuples
        assert min(ids) >= 0 and max(ids) < table.n_tuples

    def test_repeats_buffered_tuples(self, engine_table):
        table, ctx, _ = engine_table
        op = MultiplexedReservoirOperator(SeqScanOperator(table, ctx), 80, seed=0)
        op.open()
        ids = [r.tuple_id for r in op]
        assert len(set(ids)) < len(ids)

    def test_partial_shuffle_between_window_and_full(self, engine_table):
        table, ctx, _ = engine_table
        op = MultiplexedReservoirOperator(SeqScanOperator(table, ctx), 80, seed=0)
        op.open()
        corr = position_rank_correlation(np.array([r.tuple_id for r in op]))
        assert 0.2 < corr < 0.95

    def test_validation(self, engine_table):
        table, ctx, _ = engine_table
        with pytest.raises(ValueError):
            MultiplexedReservoirOperator(SeqScanOperator(table, ctx), 0)
        with pytest.raises(ValueError):
            MultiplexedReservoirOperator(SeqScanOperator(table, ctx), 2, mix_interval=0)


class TestEngineWindowStrategies:
    def test_window_and_mrs_strategies_run(self, engine_table):
        _, _, ds = engine_table
        db = MiniDB(page_bytes=512)
        db.create_table("t", ds)
        for strategy in ("sliding_window", "mrs"):
            result = db.execute(
                f"SELECT * FROM t TRAIN BY lr WITH strategy = {strategy}, "
                "max_epoch_num = 3, block_size = 4KB"
            )
            assert result.history.epochs == 3

    def test_explain_window_strategies(self, engine_table):
        _, _, ds = engine_table
        db = MiniDB(page_bytes=512)
        db.create_table("t", ds)
        assert "SlidingWindow" in db.execute(
            "EXPLAIN SELECT * FROM t TRAIN BY lr WITH strategy = sliding_window"
        )
        assert "MultiplexedReservoir" in db.execute(
            "EXPLAIN SELECT * FROM t TRAIN BY lr WITH strategy = mrs"
        )
