"""Quickstart: CorgiPile vs the baseline shuffles on clustered data.

Builds a clustered binary dataset (all negative tuples stored before all
positive ones — the paper's worst case), trains logistic regression with
each shuffling strategy under identical hyper-parameters, and prints the
per-strategy convergence.  Expected outcome: CorgiPile matches Shuffle Once
while No Shuffle and Sliding Window fall behind.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.bench import format_curve, format_table, run_convergence_sweep
from repro.data import clustered_by_label, make_binary_dense
from repro.ml import LogisticRegression

STRATEGIES = ("shuffle_once", "corgipile", "mrs", "sliding_window", "no_shuffle")


def main() -> None:
    dataset = make_binary_dense(6000, 20, separation=0.8, seed=0, name="demo")
    train, test = dataset.split(0.9, seed=1)
    clustered = clustered_by_label(train, seed=0)
    print(f"training on {clustered!r} (physically clustered by label)")

    sweep = run_convergence_sweep(
        clustered,
        test,
        lambda: LogisticRegression(train.n_features),
        STRATEGIES,
        epochs=12,
        learning_rate=0.05,
        tuples_per_block=40,  # block-addressable layout: 40 tuples per block
        buffer_fraction=0.1,  # every buffered strategy gets 10% of the data
        seed=0,
    )

    print()
    for name, history in sweep.histories.items():
        print(format_curve(name, history.test_scores))
    print()
    print(format_table(sweep.rows(), title="final metrics"))

    scores = sweep.converged_scores()
    gap = abs(scores["corgipile"] - scores["shuffle_once"])
    print(
        f"\nCorgiPile vs Shuffle Once gap: {gap:.4f} "
        f"(No Shuffle trails by {scores['shuffle_once'] - scores['no_shuffle']:.4f})"
    )


if __name__ == "__main__":
    main()
