"""In-database ML: the paper's SQL workflow on the mini engine.

Loads the (scaled) clustered higgs dataset into a heap table, trains an SVM
with the paper's query template::

    SELECT * FROM higgs TRAIN BY svm WITH learning_rate = ..., ...

under three access paths (CorgiPile, No Shuffle, Shuffle Once), prints the
accuracy-versus-simulated-time trajectories on the HDD model, and runs a
``PREDICT BY`` query with the trained model.

Run:  python examples/in_database_training.py
"""

from __future__ import annotations

from repro.bench import format_table
from repro.data import DATASETS, clustered_by_label
from repro.db import MiniDB
from repro.storage import HDD_SCALED


def main() -> None:
    train, test = DATASETS["higgs"].build_split(seed=0)
    clustered = clustered_by_label(train, seed=0)

    db = MiniDB(device=HDD_SCALED, page_bytes=1024)
    db.create_table("higgs", clustered)
    print(f"created table 'higgs' with {clustered.n_tuples} tuples "
          f"({db.catalog.get('higgs').heap.n_pages} pages)")

    rows = []
    model_id = None
    for strategy in ("corgipile", "no_shuffle", "shuffle_once"):
        result = db.execute(
            "SELECT * FROM higgs TRAIN BY svm WITH "
            "learning_rate = 0.1, max_epoch_num = 6, block_size = 8KB, "
            f"buffer_fraction = 0.1, strategy = {strategy}",
            test=test,
        )
        if strategy == "corgipile":
            model_id = result.model_id
        rows.append(
            {
                "strategy": strategy,
                "shuffle_setup_s": round(result.timeline.setup_s, 5),
                "total_time_s": round(result.timeline.total_time_s, 5),
                "final_test_acc": round(result.history.final.test_score, 4),
                "extra_disk_KB": round(result.resources.extra_disk_bytes / 1024, 1),
                "cpu_util": round(result.resources.cpu_utilisation, 2),
            }
        )

    print()
    print(format_table(rows, title="end-to-end on the HDD model"))

    predictions = db.execute(f"SELECT * FROM higgs PREDICT BY {model_id}")
    positive = float((predictions == 1.0).mean())
    print(f"\nPREDICT BY {model_id}: {predictions.size} predictions, "
          f"{positive:.1%} positive")


if __name__ == "__main__":
    main()
