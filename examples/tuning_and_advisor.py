"""Physical-design advisor + hyper-parameter tuning.

1. Ask the advisor for the block/buffer sizes a table needs on HDD vs SSD
   (the Section 7.3.4 guidance, computed from the device models);
2. grid-search the learning rate the paper's way ({0.1, 0.01, 0.001});
3. quantify run-to-run noise with multi-seed statistics and check that
   CorgiPile and Shuffle Once are statistically indistinguishable while
   No Shuffle is significantly below both.

Run:  python examples/tuning_and_advisor.py
"""

from __future__ import annotations

from repro.bench import format_table
from repro.data import clustered_by_label, make_binary_dense
from repro.db import advise
from repro.ml import ExponentialDecay, LogisticRegression, Trainer, grid_search, multi_seed
from repro.shuffle import make_strategy
from repro.storage import HDD, SSD


def main() -> None:
    # ---- 1. physical design ------------------------------------------
    table_bytes = 50 * 1024**3  # the paper's criteo: 50 GB
    rows = []
    for device in (HDD, SSD):
        design = advise(device, table_bytes, page_bytes=8192)
        rows.append(
            {
                "device": device.name,
                "recommended block": f"{design.block_bytes / 1024**2:.1f}MB",
                "random throughput": f"{design.expected_random_throughput_fraction:.0%}",
                "buffer": f"{design.buffer_bytes / 1024**2:.0f}MB "
                f"({design.blocks_per_buffer} blocks)",
            }
        )
    print(format_table(rows, title="advisor: 50GB table (criteo-sized)"))

    # ---- 2. learning-rate grid search --------------------------------
    dataset = make_binary_dense(4000, 16, separation=0.9, seed=0)
    train, test = dataset.split(0.85, seed=1)
    clustered = clustered_by_label(train, seed=0)
    layout = clustered.layout(40)

    result = grid_search(
        lambda: LogisticRegression(train.n_features),
        clustered,
        test,
        lambda trial: make_strategy("corgipile", layout, seed=trial),
        {"learning_rate": [0.1, 0.01, 0.001]},
        epochs=8,
    )
    print()
    print(format_table(result.trials, title="grid search (the paper's lr grid)"))
    print(f"best: lr={result.best_params['learning_rate']}  score={result.best_score:.4f}")

    # ---- 3. multi-seed comparison ------------------------------------
    def run(strategy_name):
        def runner(seed: int):
            return Trainer(
                LogisticRegression(train.n_features),
                clustered,
                make_strategy(strategy_name, layout, buffer_fraction=0.1, seed=seed),
                epochs=10,
                schedule=ExponentialDecay(result.best_params["learning_rate"]),
                test=test,
            ).run()

        return multi_seed(runner, seeds=[0, 1, 2, 3])

    stats = {name: run(name) for name in ("corgipile", "shuffle_once", "no_shuffle")}
    print()
    print(
        format_table(
            [
                {
                    "strategy": name,
                    "mean": round(s.mean, 4),
                    "std": round(s.std, 4),
                    "min": round(s.min, 4),
                    "max": round(s.max, 4),
                }
                for name, s in stats.items()
            ],
            title="converged accuracy across 4 seeds",
        )
    )
    overlap = stats["corgipile"].overlaps(stats["shuffle_once"])
    below = not stats["no_shuffle"].overlaps(stats["corgipile"])
    print(f"\ncorgipile ~ shuffle_once (2-sigma overlap): {overlap}")
    print(f"no_shuffle significantly below: {below}")


if __name__ == "__main__":
    main()
