"""Distributed in-DB training on the segmented engine.

Distributes a clustered table across four Greenplum-style segments
(block-granular round-robin), trains logistic regression with per-segment
CorgiPile pipelines and coordinator-side gradient averaging, and compares
the result against the single-engine run — the Section 8 "scalable ML for
distributed data systems" direction, built out.

Run:  python examples/distributed_in_db.py
"""

from __future__ import annotations

from repro.bench import format_table
from repro.data import clustered_by_label, make_binary_dense
from repro.db import MiniDB, SegmentedMiniDB, TrainQuery
from repro.storage import SSD_SCALED


def main() -> None:
    dataset = make_binary_dense(4800, 16, separation=1.0, seed=0)
    train, test = dataset.split(0.9, seed=1)
    clustered = clustered_by_label(train, seed=0)

    query = TrainQuery(
        table="t",
        model="lr",
        learning_rate=0.5,
        max_epoch_num=8,
        block_size=4096,
        batch_size=64,
        strategy="corgipile",
    )

    rows = []
    single = MiniDB(device=SSD_SCALED, page_bytes=1024)
    single.create_table("t", clustered)
    local = single.train(query, test=test)
    rows.append(
        {
            "engine": "single",
            "segments": 1,
            "final_test_acc": round(local.history.final.test_score, 4),
            "wall_s": round(local.timeline.total_time_s, 5),
        }
    )

    for n_segments in (2, 4, 8):
        db = SegmentedMiniDB(n_segments, device=SSD_SCALED)
        db.create_table("t", clustered, distribution_block=40)
        result = db.train(query, test=test)
        rows.append(
            {
                "engine": "segmented",
                "segments": n_segments,
                "final_test_acc": round(result.history.final.test_score, 4),
                "wall_s": round(result.timeline.total_time_s, 5),
            }
        )

    print(format_table(rows, title="distributed CorgiPile: accuracy and simulated time"))
    print(
        "\nSegments hold disjoint random block sets; gradient averaging per "
        "batch keeps the\neffective data order equivalent to single-engine "
        "CorgiPile with a larger buffer."
    )


if __name__ == "__main__":
    main()
