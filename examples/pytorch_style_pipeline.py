"""The PyTorch-style pipeline: block files, CorgiPileDataset, DataLoader.

Mirrors the paper's Section 5 listing::

    train_dataset = CorgiPileDataset(dataset_path, block_index_path, ...)
    train_loader  = DataLoader(train_dataset, ...)
    train(train_loader, model, ...)

Materialises a clustered multiclass dataset as an on-disk block file with a
sidecar index, streams it through the two-level shuffle with a small buffer,
and trains an MLP from the loader batches — including a simulated 4-worker
data-parallel epoch where each worker reads its own random block slice.

Run:  python examples/pytorch_style_pipeline.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.core import CorgiPileDataset, DataLoader
from repro.data import clustered_by_label, make_multiclass_dense
from repro.ml import MLPClassifier, SGD
from repro.storage import write_block_file


def train_epochs(loader_factory, model, epochs: int, lr: float) -> None:
    optimizer = SGD(model)
    for epoch in range(epochs):
        for batch in loader_factory(epoch):
            grads = model.gradient(batch.X, batch.y.astype(np.int64))
            optimizer.step(grads, lr * 0.95**epoch)


def main() -> None:
    dataset = make_multiclass_dense(4000, 32, 8, separation=2.5, seed=0)
    train, test = dataset.split(0.9, seed=1)
    clustered = clustered_by_label(train, seed=0)

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "train.blocks"
        entries = write_block_file(clustered, path, tuples_per_block=40)
        print(f"wrote {len(entries)} blocks to {path.name} "
              f"({sum(e.length for e in entries)} bytes + index)")

        # ---- single-process CorgiPile --------------------------------
        model = MLPClassifier(32, 24, 8, seed=0)
        with CorgiPileDataset(path, buffer_blocks=9, seed=0) as ds:

            def loader(epoch: int) -> DataLoader:
                ds.set_epoch(epoch)
                return DataLoader(ds, batch_size=32)

            train_epochs(loader, model, epochs=8, lr=0.1)
        acc = model.score(test.X, test.y)
        print(f"single-process CorgiPile:  test accuracy {acc:.4f}")

        # ---- simulated 4-worker data-parallel epoch ------------------
        model_mp = MLPClassifier(32, 24, 8, seed=0)
        workers = [
            CorgiPileDataset(path, buffer_blocks=2, seed=0, worker_id=w, n_workers=4)
            for w in range(4)
        ]
        optimizer = SGD(model_mp)
        for epoch in range(8):
            loaders = []
            for ds in workers:
                ds.set_epoch(epoch)
                loaders.append(iter(DataLoader(ds, batch_size=8)))
            # Each step: every worker contributes bs/PN tuples; gradients
            # are averaged — the AllReduce of Section 5.1 step 4.
            while True:
                batches = []
                for it in loaders:
                    batch = next(it, None)
                    if batch is not None and len(batch) == 8:
                        batches.append(batch)
                if len(batches) < 4:
                    break
                grads_sum = None
                for batch in batches:
                    grads = model_mp.gradient(batch.X, batch.y.astype(np.int64))
                    if grads_sum is None:
                        grads_sum = grads
                    else:
                        for key in grads_sum:
                            grads_sum[key] += grads[key]
                for key in grads_sum:
                    grads_sum[key] /= len(batches)
                optimizer.step(grads_sum, 0.1 * 0.95**epoch)
        for ds in workers:
            ds.close()
        acc_mp = model_mp.score(test.X, test.y)
        print(f"4-worker CorgiPile (DDP):  test accuracy {acc_mp:.4f}")
        print(f"order-equivalence gap:     {abs(acc - acc_mp):.4f}")


if __name__ == "__main__":
    main()
