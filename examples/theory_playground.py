"""Theory playground: h_D, the Theorem 1 bound, and physical time.

Measures the block-variance factor h_D of Section 4.2 on progressively more
clustered layouts of the same data (fully shuffled → run-length interleaved
→ fully clustered), evaluates the Theorem 1 bound across buffer sizes, and
prints the Section 4.2 physical-time comparison against vanilla SGD.

Run:  python examples/theory_playground.py
"""

from __future__ import annotations

from repro.bench import format_table
from repro.data import (
    BlockLayout,
    clustered_by_label,
    interleaved_by_label,
    make_binary_dense,
)
from repro.ml import LogisticRegression
from repro.theory import (
    PhysicalCost,
    corgipile_physical_time,
    hd_factor,
    theorem1_bound,
    vanilla_sgd_physical_time,
)


def main() -> None:
    dataset = make_binary_dense(4000, 16, separation=0.8, seed=0)
    layout = BlockLayout(dataset.n_tuples, 40)
    model = LogisticRegression(dataset.n_features)

    layouts = {
        "fully shuffled": dataset.shuffled(seed=1),
        "runs of 10": interleaved_by_label(dataset, run_length=10, seed=1),
        "runs of 40 (= block)": interleaved_by_label(dataset, run_length=40, seed=1),
        "fully clustered": clustered_by_label(dataset, seed=1),
    }
    hd_rows = [
        {"layout": name, "h_D": round(hd_factor(model, ds, layout), 3)}
        for name, ds in layouts.items()
    ]
    print(format_table(hd_rows, title=f"h_D vs clustering (b = {layout.tuples_per_block})"))

    hd = hd_factor(model, layouts["fully clustered"], layout)
    bound_rows = [
        {
            "buffered_blocks": n,
            "alpha": round((n - 1) / (layout.n_blocks - 1), 3),
            "theorem1_bound": theorem1_bound(
                10**12, n, layout.n_blocks, layout.tuples_per_block, 1.0, hd
            ),
        }
        for n in (1, 5, 10, 25, 50, 100)
    ]
    print()
    print(format_table(bound_rows, title="Theorem 1 bound vs buffer size (clustered h_D)"))

    print()
    cost = PhysicalCost(t_latency_s=8e-3, t_transfer_s=2e-6)  # HDD-like
    vanilla = vanilla_sgd_physical_time(1e-3, sigma2=1.0, cost=cost)
    corgi = corgipile_physical_time(
        1e-3, sigma2=1.0, hd=hd, block_size=layout.tuples_per_block,
        n_blocks_buffered=10, n_blocks_total=layout.n_blocks, cost=cost,
    )
    print(f"physical time to epsilon=1e-3 on HDD-like device:")
    print(f"  vanilla SGD (random tuple reads): {vanilla:10.2f} s")
    print(f"  CorgiPile (random block reads):   {corgi:10.2f} s")
    print(f"  speedup: {vanilla / corgi:.1f}x")


if __name__ == "__main__":
    main()
